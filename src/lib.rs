//! Umbrella crate for the NetDiagnoser reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See the individual crates for documentation.
pub use netdiag_bgp as bgp;
pub use netdiag_experiments as experiments;
pub use netdiag_igp as igp;
pub use netdiag_netsim as netsim;
pub use netdiag_topology as topology;
pub use netdiagnoser as diagnoser;
