#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== xtask lint (workspace invariants) =="
# Prebuild so the timed run below measures the linter, not the compiler.
cargo build -q -p netdiag-xtask
lint_start_ms="$(date +%s%3N)"
scripts/lint.sh
lint_elapsed_ms="$(( $(date +%s%3N) - lint_start_ms ))"
echo "lint wall time: ${lint_elapsed_ms}ms"
# The full lint — token passes plus the item-graph passes — must stay
# interactive: under 5 seconds on a warm build.
if [ "$lint_elapsed_ms" -ge 5000 ]; then
    echo "xtask lint took ${lint_elapsed_ms}ms (budget: 5000ms)" >&2
    exit 1
fi

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== bench + perf gates (full budget) =="
# scripts/bench.sh runs the perf bench, rewrites BENCH_PR6.json and applies
# the regression / incremental / pool / trace-overhead guards. The gate
# uses the full measurement budget (~1 extra minute): the quick-mode
# 10-sample minima swing by ±30% on a busy box, which a 1.25x regression
# budget cannot tolerate.
BENCH_QUICK=0 scripts/bench.sh

echo "== trial pool smoke (netdiag trials --threads) =="
cargo run -q --release -p netdiag-experiments --bin netdiag -- \
    trials --placements 2 --failures 2 --threads 2

echo "== internet-scale smoke (netdiag gen -> parallel converge, 1k ASes) =="
# Exercises the generator, the parallel-IGP construction and the sharded
# BGP message plane end to end, and asserts the RIB is full (every
# router holds a route to every AS's prefix).
gen_json="$(cargo run -q --release -p netdiag-experiments --bin netdiag -- \
    gen --ases 1000 --seed 1 --converge --threads 2 --json)"
python3 - "$gen_json" <<'PY'
import json, sys
r = json.loads(sys.argv[1])
assert r["rib_routes"] == r["routers"] * r["ases"], f"partial RIB: {r}"
print(f"full RIB: {r['rib_routes']} routes in {r['converge_ms']:.0f}ms")
PY

echo "== trace smoke (simulate -> diagnose --trace -> explain) =="
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
# cargo run (not ./target/release/netdiag): the tier-1 build above only
# covers the root package, not the experiments bins.
netdiag() { cargo run -q --release -p netdiag-experiments --bin netdiag -- "$@"; }
netdiag simulate --out "$tracedir/scn" --seed 3
netdiag diagnose --dir "$tracedir/scn" --algo nd-bgpigp \
    --trace "$tracedir/diag.jsonl" --trace-chrome "$tracedir/diag.chrome.json"
test -s "$tracedir/diag.jsonl"
test -s "$tracedir/diag.chrome.json"
netdiag explain "$tracedir/diag.jsonl" | head -n 20

echo "== serve smoke (daemon round-trip + batch parity) =="
servedir="$tracedir/serve"
mkdir -p "$servedir"
serve() { cargo run -q --release -p netdiag-serve --bin netdiag-serve -- "$@"; }
# Build up front so the background `run` is listening, not compiling.
cargo build -q --release -p netdiag-serve
serve_pid=""
trap 'if [ -n "$serve_pid" ]; then kill "$serve_pid" 2>/dev/null || true; fi; rm -rf "$tracedir"' EXIT
serve run --listen 127.0.0.1:0 --seed 3 --sensors 8 > "$servedir/run.out" &
serve_pid=$!
addr=""
for _ in $(seq 1 150); do
    addr="$(sed -n 's/^listening //p' "$servedir/run.out")"
    [ -n "$addr" ] && break
    sleep 0.2
done
test -n "$addr"
# Structured response: a current-schema DiagnosticReport comes back.
serve request --connect "$addr" --dir "$tracedir/scn" --algo nd-bgpigp --json \
    | grep -q '"schema":1'
# Parity: the daemon's text rendering is byte-identical to the batch CLI
# on the same scenario files (ground-truth appendix stripped).
serve request --connect "$addr" --dir "$tracedir/scn" --algo nd-bgpigp \
    > "$servedir/daemon.txt"
netdiag diagnose --dir "$tracedir/scn" --algo nd-bgpigp \
    | sed '/^--- ground truth/,$d' > "$servedir/batch.txt"
diff -u "$servedir/batch.txt" "$servedir/daemon.txt"
# Live telemetry plane: the stats verb reports a ready daemon whose
# request counter advanced past the diagnoses above, and the Prometheus
# rendering exposes the same registry.
serve stats --connect "$addr" > "$servedir/stats.txt"
cat "$servedir/stats.txt"
grep -q 'health ready' "$servedir/stats.txt"
grep -Eq '[1-9][0-9]* total' "$servedir/stats.txt"
serve stats --connect "$addr" --prom | grep -q '^netdiag_serve_requests_total'
# Clean remote shutdown.
serve stop --connect "$addr" | grep -q '"stopping":true'
wait "$serve_pid"
serve_pid=""

echo "all checks passed"
