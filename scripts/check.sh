#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== xtask lint (workspace invariants) =="
cargo run -q -p netdiag-xtask -- lint

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== bench smoke (quick mode) =="
CRITERION_QUICK=1 cargo bench -q -p netdiag-bench --bench perf

echo "all checks passed"
