#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== xtask lint (workspace invariants) =="
cargo run -q -p netdiag-xtask -- lint

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== bench + perf gates (full budget) =="
# scripts/bench.sh runs the perf bench, rewrites BENCH_PR6.json and applies
# the regression / incremental / pool / trace-overhead guards. The gate
# uses the full measurement budget (~1 extra minute): the quick-mode
# 10-sample minima swing by ±30% on a busy box, which a 1.25x regression
# budget cannot tolerate.
BENCH_QUICK=0 scripts/bench.sh

echo "== trial pool smoke (netdiag trials --threads) =="
cargo run -q --release -p netdiag-experiments --bin netdiag -- \
    trials --placements 2 --failures 2 --threads 2

echo "== trace smoke (simulate -> diagnose --trace -> explain) =="
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
# cargo run (not ./target/release/netdiag): the tier-1 build above only
# covers the root package, not the experiments bins.
netdiag() { cargo run -q --release -p netdiag-experiments --bin netdiag -- "$@"; }
netdiag simulate --out "$tracedir/scn" --seed 3
netdiag diagnose --dir "$tracedir/scn" --algo nd-bgpigp \
    --trace "$tracedir/diag.jsonl" --trace-chrome "$tracedir/diag.chrome.json"
test -s "$tracedir/diag.jsonl"
test -s "$tracedir/diag.chrome.json"
netdiag explain "$tracedir/diag.jsonl" | head -n 20

echo "all checks passed"
