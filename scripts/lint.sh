#!/usr/bin/env bash
# Standalone invariant gate: runs the netdiag-xtask linter on the
# workspace. Extra arguments are forwarded, e.g.
#
#   scripts/lint.sh --deny slice-index   # promote the advisory lint
#   scripts/lint.sh --warn unwrap        # triage mode, never gates
#
# `cargo run -p netdiag-xtask -- list` prints the lint catalog.
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run -q -p netdiag-xtask -- lint "$@"
