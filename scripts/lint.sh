#!/usr/bin/env bash
# Standalone invariant gate: runs the netdiag-xtask linter on the
# workspace. Extra arguments are forwarded, e.g.
#
#   scripts/lint.sh --deny slice-index   # promote the advisory lint
#   scripts/lint.sh --warn unwrap        # triage mode, never gates
#
# The graph passes (lock-order, lock-across-blocking, hot-alloc,
# layering) and the stale-allow audit are pinned to --deny here so a
# future default-level change can never silently demote the concurrency
# and layering gates; forwarded arguments come last and still win for
# triage runs.
#
# `cargo run -p netdiag-xtask -- list` prints the lint catalog.
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run -q -p netdiag-xtask -- lint \
  --deny lock-order \
  --deny lock-across-blocking \
  --deny hot-alloc \
  --deny layering \
  --deny stale-allow \
  "$@"
