#!/usr/bin/env bash
# Runs the perf benchmark suite in quick mode and distils the medians into
# BENCH_PR3.json at the repo root:
#
#   { "<bench id>": { "samples": N, "min_ns": ..., "median_ns": ..., "mean_ns": ... }, ... }
#
# Full-budget run (no quick caps): BENCH_QUICK=0 scripts/bench.sh
# Extra benches (figures/micro/ablations too): BENCH_ALL=1 scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

jsonl="$(mktemp)"
trap 'rm -f "$jsonl"' EXIT

quick="${BENCH_QUICK:-1}"
export CRITERION_JSON="$jsonl"
if [ "$quick" != "0" ]; then
  export CRITERION_QUICK=1
fi

benches=(perf)
if [ "${BENCH_ALL:-0}" != "0" ]; then
  benches+=(micro ablations figures)
fi
for b in "${benches[@]}"; do
  cargo bench -q -p netdiag-bench --bench "$b"
done

python3 - "$jsonl" BENCH_PR3.json <<'EOF'
import json, sys

out = {}
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        out[rec.pop("id")] = rec
with open(sys.argv[2], "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {sys.argv[2]} ({len(out)} benchmarks)")

# Overhead guard: compiled-in trace hooks behind a NoopRecorder must stay
# within noise of the hook-free replica of the same greedy.
base = out.get("trace_overhead/untraced")
noop = out.get("trace_overhead/noop")
if base and noop:
    ratio = noop["median_ns"] / base["median_ns"]
    print(f"trace overhead guard: noop/untraced median ratio = {ratio:.3f}")
    if ratio > 1.35:
        sys.exit(f"noop tracing overhead {ratio:.3f}x exceeds the 1.35x noise budget")
else:
    sys.exit("trace_overhead benchmarks missing from the run")
EOF
