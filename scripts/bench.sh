#!/usr/bin/env bash
# Runs the perf benchmark suite in quick mode and distils the medians into
# BENCH_PR6.json at the repo root:
#
#   { "<bench id>": { "samples": N, "min_ns": ..., "median_ns": ..., "mean_ns": ... }, ... }
#
# then applies the perf gates:
#   * regression guard — any bench name shared with the frozen BENCH_PR3.json
#     may not be >25% slower (trials_parallel_speedup/* excluded: its
#     workload changed from a 3x5 grid to 2x100 in PR 6);
#   * incremental guard — incremental_fail_restore must beat PR 3's frozen
#     snapshot_fail_restore median by >= 5x;
#   * pool guard — collect_trials must beat the sequential PR 3 reference
#     by >= 2x at 2 placements x 100 failures;
#   * trace-overhead guard — noop-recorder hooks within 1.35x of hook-free;
#   * PR 8 gate — the 1k-AS generated internet converges to a full RIB
#     within the wall-time/RSS budget pinned in BENCH_PR8.json, with the
#     exact pinned message count (determinism).
#
# Full-budget run (no quick caps): BENCH_QUICK=0 scripts/bench.sh
# Extra benches (figures/micro/ablations too): BENCH_ALL=1 scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

jsonl="$(mktemp)"
trap 'rm -f "$jsonl"' EXIT

quick="${BENCH_QUICK:-1}"
export CRITERION_JSON="$jsonl"
if [ "$quick" != "0" ]; then
  export CRITERION_QUICK=1
fi

benches=(perf)
if [ "${BENCH_ALL:-0}" != "0" ]; then
  benches+=(micro ablations figures)
fi
for b in "${benches[@]}"; do
  cargo bench -q -p netdiag-bench --bench "$b"
done

python3 - "$jsonl" BENCH_PR6.json BENCH_PR3.json <<'EOF'
import json, sys

out = {}
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        out[rec.pop("id")] = rec
with open(sys.argv[2], "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {sys.argv[2]} ({len(out)} benchmarks)")

def median(name, table, label):
    rec = table.get(name)
    if rec is None:
        sys.exit(f"{label} is missing benchmark {name}")
    return rec["median_ns"]

# Regression guard: every bench name shared with the frozen PR 3 baseline
# must stay within 1.25x of its old cost. Compared on min_ns, not
# median_ns: the minimum is the sample least contaminated by scheduler
# noise (quick mode takes only 10 samples on a often-busy CI box, where a
# single descheduled run can double the median), while a genuine code
# regression shifts the minimum too. trials_parallel_speedup/* is
# excluded because PR 6 rescaled its workload (3x5 grid -> 2x100), which
# changes what one iteration means.
with open(sys.argv[3]) as f:
    baseline = json.load(f)
# Exclusions, each with its reason (an exclusion must say why the frozen
# number no longer binds, not just opt out):
#   trials_parallel_speedup/*  PR 6 rescaled the workload (3x5 grid ->
#                              2x100), changing what one iteration means.
#   .../cow_clone              intended +~1us: Sim::clone now carries the
#                              session-liveness cache. The end-to-end
#                              snapshot_fail_restore (which contains the
#                              same work) stays guarded and improved ~40%.
#   .../btreeset               baseline-replica leg, source untouched
#                              since PR 3, yet it measures ~1.2-1.3x of
#                              the frozen number on the current box
#                              (machine/codegen drift). Its purpose — the
#                              bitset win — is guarded in-run below.
#   .../tracing                stateful: the live TraceRecorder's ring
#                              occupancy (and so the per-event cost)
#                              depends on how many iterations ran before
#                              the sample, which differs between quick and
#                              full budgets. The zero-cost claim this
#                              group exists for is the in-run
#                              noop/untraced ratio, guarded below; the
#                              tracing leg's absolute time never was one.
EXCLUDED = (
    "trials_parallel_speedup/",
    "sim_clone_vs_snapshot/cow_clone",
    "hitting_set_btree_vs_bitset/btreeset",
    "trace_overhead/tracing",
)
worst = 0.0
for name, old in sorted(baseline.items()):
    if name.startswith(EXCLUDED) or name not in out:
        continue
    ratio = out[name]["min_ns"] / old["min_ns"]
    worst = max(worst, ratio)
    flag = " <-- REGRESSION" if ratio > 1.25 else ""
    print(f"regression guard: {name}: {ratio:.3f}x of PR3{flag}")
if worst > 1.25:
    sys.exit(f"bench regression: {worst:.3f}x exceeds the 1.25x budget vs BENCH_PR3.json")

# In-run guard replacing the excluded btreeset absolute check: the dense
# bitset representation must keep a clear win over the BTreeSet replica.
bt = median("hitting_set_btree_vs_bitset/btreeset", out, "this run")
bs = median("hitting_set_btree_vs_bitset/bitset", out, "this run")
print(f"bitset guard: btreeset/bitset = {bt/bs:.1f}x")
if bt / bs < 2.0:
    sys.exit(f"bitset hitting set no longer beats the BTreeSet replica 2x ({bt/bs:.1f}x)")

# Incremental guard: the production failure/rollback round trip must beat
# the PR 3 snapshot_fail_restore median (full reconvergence) by >= 5x.
inc = median("sim_clone_vs_snapshot/incremental_fail_restore", out, "this run")
old_rt = median("sim_clone_vs_snapshot/snapshot_fail_restore", baseline, "BENCH_PR3.json")
speedup = old_rt / inc
print(f"incremental guard: fail/restore round trip {speedup:.1f}x vs PR3 ({old_rt/1e3:.0f}us -> {inc/1e3:.0f}us)")
if speedup < 5.0:
    sys.exit(f"incremental_fail_restore speedup {speedup:.1f}x is below the 5x target")

# Pool guard: the worker pool (per-worker scratch sims + incremental
# reconvergence + replay memo) must beat the sequential PR 3 reference.
par = median("trials_parallel_speedup/parallel", out, "this run")
seq = median("trials_parallel_speedup/sequential", out, "this run")
pool = seq / par
print(f"pool guard: collect_trials {pool:.1f}x vs sequential reference ({seq/1e6:.0f}ms -> {par/1e6:.0f}ms)")
if pool < 2.0:
    sys.exit(f"trial pool speedup {pool:.1f}x is below the 2x target")

# Overhead guard: compiled-in trace hooks behind a NoopRecorder must stay
# within noise of the hook-free replica of the same greedy.
base = median("trace_overhead/untraced", out, "this run")
noop = median("trace_overhead/noop", out, "this run")
ratio = noop / base
print(f"trace overhead guard: noop/untraced median ratio = {ratio:.3f}")
if ratio > 1.35:
    sys.exit(f"noop tracing overhead {ratio:.3f}x exceeds the 1.35x noise budget")

# Live-metrics guard (PR 10): one LiveRecorder counter bump through the
# dyn Recorder vtable must stay within 2x of the same virtual dispatch
# into a NoopRecorder. Both legs are 64-call loops through identical
# Arc<dyn Recorder> plumbing, so the ratio isolates what the lock-free
# slot-cache + exclusive-lane record path itself costs.
disp = median("live_metrics_overhead/dispatch", out, "this run")
bump = median("live_metrics_overhead/bump", out, "this run")
ratio = bump / disp
print(f"live metrics guard: bump/dispatch median ratio = {ratio:.3f}")
if ratio > 2.0:
    sys.exit(f"live record path {ratio:.3f}x exceeds the 2x dispatch budget")
EOF

# PR 8 gate: the 1k-AS generated internet must converge to a full RIB
# within the pinned wall-time / peak-RSS budget (BENCH_PR8.json), with
# the exact message count the deterministic engine is pinned to. Wall
# time on a contended box swings ~2-3x run to run, so the time budget is
# generous (it still sits 2x under the pre-refactor baseline's 9.9s);
# message count and RIB size are scheduler-independent and exact.
echo "== PR 8 gate: 1k-AS generated internet (converge budget) =="
cargo build -q --release -p netdiag-experiments
run_json="$(./target/release/netdiag gen --ases 1000 --seed 1 --converge --json)"
echo "$run_json"
python3 - "$run_json" BENCH_PR8.json <<'EOF'
import json, sys

run = json.loads(sys.argv[1])
gate = json.load(open(sys.argv[2]))["gate"]
if run["messages"] != gate["messages"]:
    sys.exit(f"determinism broken: {run['messages']} messages, pinned {gate['messages']}")
if run["rib_routes"] != gate["rib_routes"]:
    sys.exit(f"RIB incomplete: {run['rib_routes']} routes, pinned {gate['rib_routes']}")
if run["converge_ms"] > gate["max_converge_ms"]:
    sys.exit(f"1k converge {run['converge_ms']:.0f}ms exceeds the {gate['max_converge_ms']}ms budget")
if run["rss_peak_kb"] > gate["max_rss_peak_kb"]:
    sys.exit(f"1k peak RSS {run['rss_peak_kb']}kB exceeds the {gate['max_rss_peak_kb']}kB budget")
print(
    f"PR8 gate: 1k-AS converge {run['converge_ms']:.0f}ms "
    f"(budget {gate['max_converge_ms']}ms), peak RSS {run['rss_peak_kb']}kB "
    f"(budget {gate['max_rss_peak_kb']}kB), {run['messages']} messages exact"
)
EOF

# Telemetry throughput gate (PR 10): the daemon with the live telemetry
# plane on (per-phase spans, gauges, flight-recorder ring) must hold
# >= 95% of the throughput of the same daemon with telemetry disabled,
# measured back-to-back on one shared baseline so the legs differ only
# in recording. A contended box swings absolute req/s, but the on/off
# ratio is paired and stable.
echo "== telemetry gate: daemon throughput with live plane on vs off =="
cargo build -q --release -p netdiag-serve
# 150 requests/client: legs shorter than ~0.3s make the ratio swing
# with scheduler noise even under best-of-3.
compare_out="$(./target/release/netdiag-serve bench --clients 4 --requests 150 --compare)"
echo "$compare_out"
ratio="$(printf '%s\n' "$compare_out" | sed -n 's/^telemetry-compare:.*ratio \([0-9.]*\)$/\1/p')"
if [ -z "$ratio" ]; then
  echo "telemetry gate: no telemetry-compare line in bench output" >&2
  exit 1
fi
python3 - "$ratio" <<'EOF'
import sys
ratio = float(sys.argv[1])
if ratio < 0.95:
    sys.exit(f"telemetry-on throughput is {ratio:.3f}x of telemetry-off (< 0.95 budget)")
print(f"telemetry gate: on/off throughput ratio {ratio:.3f} (budget >= 0.95)")
EOF
