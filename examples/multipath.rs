//! Load balancing and Paris traceroute — the paper's footnote 2 made
//! concrete: classic traceroute sees one of several equal-cost paths;
//! a Paris-traceroute sweep enumerates all of them, so rerouted paths can
//! be told apart from load-balanced path changes.
//!
//! ```text
//! cargo run --release --example multipath
//! ```

// A runnable demo talks to its user on stdout.
#![allow(clippy::print_stdout)]
use std::collections::BTreeSet;
use std::sync::Arc;

use netdiagnoser_repro::netsim::{paris_traceroute, SensorSet, Sim};
use netdiagnoser_repro::topology::builders::{build_internet, InternetConfig};

fn main() {
    let net = build_internet(&InternetConfig::default());
    let topology = Arc::new(net.topology.clone());

    // Sensors across many stubs; tier-2 transit offers ECMP (a dual-homed
    // spoke reaches another spoke via either hub at equal cost).
    let spec: Vec<_> = net.stubs[..20]
        .iter()
        .map(|s| (s.as_id, s.routers[0]))
        .collect();
    let sensors = SensorSet::place(&topology, &spec);
    let mut sim = Sim::new(Arc::clone(&topology));
    sensors.register(&mut sim);
    sim.converge_for(&sensors.as_ids());

    let blocked = BTreeSet::new();
    let mut multipath_pairs = 0;
    let mut example_shown = false;
    for src in sensors.sensors() {
        for dst in sensors.sensors() {
            if src.id == dst.id {
                continue;
            }
            let paths = paris_traceroute(&sim, src, dst, &blocked, 8);
            if paths.len() > 1 {
                multipath_pairs += 1;
                if !example_shown {
                    example_shown = true;
                    println!(
                        "sensor pair {} -> {}: {} equal-cost paths discovered",
                        src.id,
                        dst.id,
                        paths.len()
                    );
                    for (i, tr) in paths.iter().enumerate() {
                        let hops: Vec<String> = tr
                            .hops
                            .iter()
                            .map(|h| {
                                h.addr()
                                    .map(|a| a.to_string())
                                    .unwrap_or_else(|| "*".into())
                            })
                            .collect();
                        println!("  path {}: {}", i + 1, hops.join(" -> "));
                    }
                    // Per-flow consistency: the same flow id always rides
                    // the same path.
                    let f0 = sim.forward_flow(src.router, dst.addr, 7);
                    let f1 = sim.forward_flow(src.router, dst.addr, 7);
                    assert_eq!(f0, f1);
                    println!("  (flow 7 deterministically takes one of them)");
                }
            }
        }
    }
    println!(
        "\n{multipath_pairs} of {} sensor pairs are load-balanced across \
         multiple equal-cost paths.",
        sensors.len() * (sensors.len() - 1)
    );
    println!(
        "Classic traceroute sees only one path per pair; NetDiagnoser's \
         evaluation follows the paper in using the single-path view, but the \
         simulator models the full ECMP structure (`Sim::all_paths`, \
         `paris_traceroute`)."
    );
}
