//! Link flaps vs hard failures (§6 of the paper): the persistence filter
//! keeps transient events from waking the troubleshooter, while a
//! non-transient failure raises an alarm and gets diagnosed.
//!
//! ```text
//! cargo run --release --example link_flap
//! ```

// A runnable demo talks to its user on stdout.
#![allow(clippy::print_stdout)]
use std::collections::BTreeSet;
use std::sync::Arc;

use netdiagnoser_repro::diagnoser::{nd_edge, PersistenceFilter, Weights};
use netdiagnoser_repro::experiments::bridge::{observations, to_snapshot, TruthIpToAs};
use netdiagnoser_repro::experiments::truth::TruthMap;
use netdiagnoser_repro::netsim::{probe_mesh, SensorSet, Sim};
use netdiagnoser_repro::topology::builders::{build_internet, InternetConfig};

fn main() {
    let net = build_internet(&InternetConfig::default());
    let topology = Arc::new(net.topology.clone());
    let spec: Vec<_> = net.stubs[..8]
        .iter()
        .map(|s| (s.as_id, s.routers[0]))
        .collect();
    let sensors = SensorSet::place(&topology, &spec);
    let mut sim = Sim::new(Arc::clone(&topology));
    sensors.register(&mut sim);
    sim.converge_for(&sensors.as_ids());

    let blocked = BTreeSet::new();
    let baseline = probe_mesh(&sim, &sensors, &blocked);
    // Alarm only after 3 consecutive broken measurement rounds.
    let mut filter = PersistenceFilter::new(3);
    filter.observe(&to_snapshot(&baseline));

    // Pick a single-homed sensor's uplink to play with.
    let victim = sensors
        .sensors()
        .iter()
        .find(|s| topology.router(s.router).links.len() == 1)
        .expect("a single-homed stub");
    let uplink = topology.router(victim.router).links[0];

    // --- Scenario 1: a link flap (down for one round, then repaired). ---
    println!("scenario 1: link {uplink} flaps (one bad measurement round)");
    sim.fail_link(uplink);
    let round = probe_mesh(&sim, &sensors, &blocked);
    println!(
        "  round 1: {} failed paths -> alarm? {}",
        round.failed_count(),
        filter.observe(&to_snapshot(&round)).is_some()
    );
    sim.repair_link(uplink);
    for n in 2..=3 {
        let round = probe_mesh(&sim, &sensors, &blocked);
        println!(
            "  round {n}: {} failed paths -> alarm? {}",
            round.failed_count(),
            filter.observe(&to_snapshot(&round)).is_some()
        );
    }
    println!("  transient event correctly suppressed\n");

    // --- Scenario 2: a hard (non-transient) failure. ---
    println!("scenario 2: link {uplink} fails for good");
    sim.fail_link(uplink);
    let mut alarm = None;
    let mut last_mesh = None;
    for n in 1..=3 {
        let round = probe_mesh(&sim, &sensors, &blocked);
        alarm = filter.observe(&to_snapshot(&round));
        println!(
            "  round {n}: {} failed paths -> alarm? {}",
            round.failed_count(),
            alarm.is_some()
        );
        last_mesh = Some(round);
    }
    let alarm = alarm.expect("persistent failure must alarm");
    println!(
        "  alarm raised for {} persistent pair(s); invoking NetDiagnoser...",
        alarm.persistent_pairs.len()
    );

    let after = last_mesh.expect("the flap loop ran at least one round");
    let obs = observations(&sensors, &baseline, &after);
    let ip2as = TruthIpToAs {
        topology: &topology,
    };
    let d = nd_edge(&obs, &ip2as, Weights::default());
    let truth = TruthMap::build(&topology, &baseline, &after);
    let hyp = truth.hypothesis_links(&d);
    println!("  hypothesis: {hyp:?}");
    assert!(hyp.contains(&uplink));
    println!("  the flapped-then-dead link is localized ✓");
}
