//! Quickstart: build the paper's 165-AS research Internet, break a link,
//! and let NetDiagnoser find it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

// A runnable demo talks to its user on stdout.
#![allow(clippy::print_stdout)]
use std::collections::BTreeSet;
use std::sync::Arc;

use netdiagnoser_repro::diagnoser::{Algorithm, NetDiagnoser, RecorderHandle};
use netdiagnoser_repro::experiments::bridge::{observations, TruthIpToAs};
use netdiagnoser_repro::experiments::truth::{evaluate, TruthMap};
use netdiagnoser_repro::netsim::{probe_mesh, SensorSet, Sim};
use netdiagnoser_repro::topology::builders::{build_internet, InternetConfig};

fn main() {
    // 1. The evaluation topology: Abilene + GEANT + WIDE cores, 22 tier-2
    //    ASes, 140 stubs — deterministic for a given seed.
    let net = build_internet(&InternetConfig::default());
    let topology = Arc::new(net.topology.clone());
    println!(
        "topology: {} ASes, {} routers, {} links",
        topology.as_count(),
        topology.router_count(),
        topology.link_count()
    );

    // 2. Ten sensors in the first ten stub ASes; converge routing for
    //    their prefixes.
    let spec: Vec<_> = net.stubs[..10]
        .iter()
        .map(|s| (s.as_id, s.routers[0]))
        .collect();
    let sensors = SensorSet::place(&topology, &spec);
    let mut sim = Sim::new(Arc::clone(&topology));
    sensors.register(&mut sim);
    sim.converge_for(&sensors.as_ids());

    // 3. Probe the full mesh before the failure.
    let blocked = BTreeSet::new();
    let before = probe_mesh(&sim, &sensors, &blocked);
    println!(
        "T-: {} traceroutes, all reachable",
        before.traceroutes.len()
    );

    // 4. Break the uplink of the first sensor's stub AS and re-probe.
    let victim = sensors.sensors()[0];
    let uplink = topology.router(victim.router).links[0];
    let mut broken = sim.clone();
    broken.fail_link(uplink);
    let after = probe_mesh(&broken, &sensors, &blocked);
    println!(
        "T+: link {uplink} down, {} of {} paths now fail",
        after.failed_count(),
        after.traceroutes.len()
    );

    // 5. Diagnose from the probes alone, collecting instrumentation as we
    //    go. Tomo and ND-edge need no routing feed, so the builder needs
    //    no optional inputs.
    let obs = observations(&sensors, &before, &after);
    let ip2as = TruthIpToAs {
        topology: &topology,
    };
    let (recorder, profile) = RecorderHandle::in_memory();
    let diagnose = |algorithm| {
        NetDiagnoser::builder()
            .algorithm(algorithm)
            .recorder(recorder.clone())
            .build()
            .diagnose(&obs, &ip2as)
            .expect("tomo/nd-edge need no optional inputs")
    };
    let d_tomo = diagnose(Algorithm::Tomo);
    let d_edge = diagnose(Algorithm::NdEdge);

    // 6. Score against ground truth.
    let truth = TruthMap::build(&topology, &before, &after);
    let failed = BTreeSet::from([uplink]);
    let e_tomo = evaluate(&topology, &truth, &d_tomo, &failed);
    let e_edge = evaluate(&topology, &truth, &d_edge, &failed);
    println!(
        "Tomo:    sensitivity {:.2}, specificity {:.3}, |H| = {}",
        e_tomo.sensitivity, e_tomo.specificity, e_tomo.hypothesis_size
    );
    println!(
        "ND-edge: sensitivity {:.2}, specificity {:.3}, |H| = {}",
        e_edge.sensitivity, e_edge.specificity, e_edge.hypothesis_size
    );
    println!(
        "ND-edge hypothesis links: {:?}",
        truth.hypothesis_links(&d_edge)
    );
    assert!(truth.hypothesis_links(&d_edge).contains(&uplink));
    println!("the failed link is in the hypothesis ✓");

    // 7. The recorder saw both diagnoses.
    let report = profile.report();
    println!(
        "instrumentation: {} diagnoses, {} greedy iterations",
        report.counter("diag.runs"),
        report.counter("hs.greedy_iters")
    );
}
