//! Troubleshooting when ASes block traceroute — the paper's §3.4 / §5.4
//! scenario: unidentified hops are mapped to candidate ASes with Looking
//! Glass queries (ND-LG), where ND-bgpigp can only shrug.
//!
//! ```text
//! cargo run --release --example blocked_traceroutes
//! ```

// A runnable demo talks to its user on stdout.
#![allow(clippy::print_stdout)]
use netdiagnoser_repro::experiments::placement::Placement;
use netdiagnoser_repro::experiments::runner::{prepare, run_trial, RunConfig};
use netdiagnoser_repro::experiments::sampling::FailureSpec;
use netdiagnoser_repro::topology::builders::{build_internet, InternetConfig};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let net = build_internet(&InternetConfig::default());
    // Half the probed ASes block traceroute; every AS offers a Looking
    // Glass (Figure 11's middle regime).
    let cfg = RunConfig {
        n_sensors: 10,
        placement: Placement::Random,
        failure: FailureSpec::Links(1),
        blocked_frac: 0.5,
        lg_frac: 1.0,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(99);
    let ctx = prepare(&net, &cfg, &mut rng);
    println!(
        "{} probed ASes block traceroute; sensors see stars through them",
        ctx.blocked.len()
    );
    let stars: usize = ctx
        .mesh_before
        .traceroutes
        .iter()
        .flat_map(|t| &t.hops)
        .filter(|h| h.addr().is_none())
        .count();
    println!("pre-failure mesh contains {stars} unidentified hops\n");

    // Sample failures until several land where it hurts: links owned by a
    // traceroute-blocking AS, where ND-bgpigp is blind.
    let topology = ctx.sim.topology();
    let mut frng = StdRng::seed_from_u64(17);
    let mut shown = 0;
    let mut attempts = 0;
    while shown < 5 && attempts < 400 {
        attempts += 1;
        let Some(tr) = run_trial(&ctx, &cfg, &mut frng) else {
            break;
        };
        let in_blocked = tr.failed_sites.iter().any(|&l| {
            let link = topology.link(l);
            ctx.blocked.contains(&topology.as_of_router(link.a))
        });
        if !in_blocked {
            continue;
        }
        let lg = tr.nd_lg.expect("blocking is on");
        println!(
            "failure {:?} (inside a blocked AS): AS-sensitivity  ND-bgpigp {:.2} vs ND-LG {:.2}   \
             (AS-specificity {:.2} vs {:.2})",
            tr.failed_sites,
            tr.nd_bgpigp.as_sensitivity,
            lg.as_sensitivity,
            tr.nd_bgpigp.as_specificity,
            lg.as_specificity,
        );
        shown += 1;
    }
    println!(
        "\nND-LG keeps locating the responsible AS even when the failed link \
         hides behind stars, by mapping unidentified hops to ASes with \
         Looking Glass AS-path queries and clustering same-link candidates."
    );
}
