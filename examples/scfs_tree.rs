//! The classical single-source baseline (Figure 1 of the paper): Duffield's
//! SCFS on a tree topology, and why it stops short in the multi-AS world.
//!
//! ```text
//! cargo run --release --example scfs_tree
//! ```

// A runnable demo talks to its user on stdout.
#![allow(clippy::print_stdout)]
use netdiagnoser_repro::diagnoser::scfs;

fn main() {
    // Figure 1's single-source tree, rooted at sensor s1:
    //
    //        s1 - r6 - r7 - r9 - r11 - s2     (the probed branch)
    //                    \
    //                     r8 - s3             (a healthy branch)
    //
    // Link r9-r11 fails: path s1->s2 breaks, s1->s3 keeps working.
    let paths = vec![
        (vec!["s1", "r6", "r7", "r9", "r11", "s2"], false),
        (vec!["s1", "r6", "r7", "r8", "s3"], true),
    ];
    let hypothesis = scfs(&"s1", &paths);
    println!("observations:");
    for (p, good) in &paths {
        println!(
            "  {} ... {}",
            p.join(" - "),
            if *good { "working" } else { "BROKEN" }
        );
    }
    println!("\nSCFS hypothesis (links nearest the source consistent with the evidence):");
    for (a, b) in &hypothesis {
        println!("  {a} - {b}");
    }
    // SCFS can only name the highest all-bad subtree edge: r7-r9. The
    // truth (r9-r11) lies below it — end-to-end evidence alone cannot
    // separate r7-r9, r9-r11 and r11-s2, which is exactly the ambiguity
    // the paper's NetDiagnoser attacks with rerouted paths, control-plane
    // messages and Looking Glass data.
    assert_eq!(hypothesis.len(), 1);
    assert!(hypothesis.contains(&("r7", "r9")));
    println!(
        "\nThe actual failure (r9 - r11) is downstream of the hypothesis: every\n\
         link on the suffix is equally guilty under Boolean tomography alone.\n\
         NetDiagnoser's extensions (reroute sets, BGP/IGP feeds, Looking\n\
         Glasses) exist precisely to break such ties — see the other examples."
    );
}
