//! Bring your own network: load a topology from the plain-text format,
//! simulate it, and diagnose a failure — no generated research Internet
//! involved.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

// A runnable demo talks to its user on stdout.
#![allow(clippy::print_stdout)]
use std::collections::BTreeSet;
use std::sync::Arc;

use netdiagnoser_repro::diagnoser::{nd_edge, Weights};
use netdiagnoser_repro::experiments::bridge::{observations, TruthIpToAs};
use netdiagnoser_repro::experiments::truth::TruthMap;
use netdiagnoser_repro::netsim::{probe_mesh, SensorSet, Sim};
use netdiagnoser_repro::topology::text::parse_topology;
use netdiagnoser_repro::topology::AsKind;

/// A small dual-homed enterprise: two regional ISPs peering at two points,
/// three customer sites.
const NETWORK: &str = "\
as WestISP tier2
as EastISP tier2
as SiteA stub
as SiteB stub
as SiteC stub
router WestISP w-sea
router WestISP w-sfo
router WestISP w-lax
router EastISP e-nyc
router EastISP e-iad
router EastISP e-bos
link w-sea w-sfo 10
link w-sfo w-lax 10
link w-sea w-lax 25
link e-nyc e-iad 10
link e-iad e-bos 10
link e-nyc e-bos 25
peer w-sea e-nyc
peer w-lax e-iad
router SiteA a1
router SiteB b1
router SiteC c1
provider w-sfo a1
provider e-bos b1
provider w-lax c1
provider e-iad c1
";

fn main() {
    let topology = Arc::new(parse_topology(NETWORK).expect("valid topology"));
    println!(
        "loaded custom network: {} ASes, {} routers, {} links",
        topology.as_count(),
        topology.router_count(),
        topology.link_count()
    );

    // One sensor per stub site.
    let spec: Vec<_> = topology
        .ases()
        .iter()
        .filter(|a| a.kind == AsKind::Stub)
        .map(|a| (a.id, a.routers[0]))
        .collect();
    let sensors = SensorSet::place(&topology, &spec);
    let mut sim = Sim::new(Arc::clone(&topology));
    sensors.register(&mut sim);
    sim.converge_all();

    let before = probe_mesh(&sim, &sensors, &BTreeSet::new());
    assert_eq!(before.failed_count(), 0);
    println!(
        "healthy mesh: {} paths, all reachable",
        before.traceroutes.len()
    );

    // Site A is single-homed behind w-sfo: cut its access link.
    let a1 = spec[0].1;
    let access = topology.router(a1).links[0];
    let mut broken = sim.clone();
    broken.fail_link(access);
    let after = probe_mesh(&broken, &sensors, &BTreeSet::new());
    println!(
        "cut {} (SiteA's uplink): {} paths failed",
        access,
        after.failed_count()
    );

    let obs = observations(&sensors, &before, &after);
    let ip2as = TruthIpToAs {
        topology: &topology,
    };
    let d = nd_edge(&obs, &ip2as, Weights::default());
    let truth = TruthMap::build(&topology, &before, &after);
    let hyp = truth.hypothesis_links(&d);
    println!("ND-edge hypothesis: {hyp:?}");
    assert!(hyp.contains(&access));
    println!("the cut uplink is localized on a hand-written topology ✓");
}
