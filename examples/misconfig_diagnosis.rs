//! Diagnosing a BGP export-filter misconfiguration — the paper's §3.1
//! scenario: a link that "partially fails" (works for some destinations,
//! silently drops others) is invisible to plain Boolean tomography but
//! localized by ND-edge's logical links.
//!
//! ```text
//! cargo run --release --example misconfig_diagnosis
//! ```

// A runnable demo talks to its user on stdout.
#![allow(clippy::print_stdout)]
use std::collections::BTreeSet;
use std::sync::Arc;

use netdiagnoser_repro::diagnoser::{nd_edge, tomo, Weights};
use netdiagnoser_repro::experiments::bridge::{observations, TruthIpToAs};
use netdiagnoser_repro::experiments::runner::{prepare, RunConfig};
use netdiagnoser_repro::experiments::sampling::{sample_failure, FailureSpec};
use netdiagnoser_repro::experiments::truth::{evaluate, TruthMap};
use netdiagnoser_repro::netsim::{apply_failure, probe_mesh, Failure};
use netdiagnoser_repro::topology::builders::{build_internet, InternetConfig};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let net = build_internet(&InternetConfig::default());
    let cfg = RunConfig::default();
    let mut rng = StdRng::seed_from_u64(2024);
    let ctx = prepare(&net, &cfg, &mut rng);
    let topology = Arc::new(net.topology.clone());

    // Sample a per-neighbor export misconfiguration that actually breaks
    // reachability (redrawing recoverable ones, as the evaluation does).
    let mut frng = StdRng::seed_from_u64(5);
    let (failure, after, broken_sites) = loop {
        let failure = sample_failure(
            &ctx.sim,
            &ctx.mesh_before,
            &ctx.sensors,
            FailureSpec::Misconfig,
            &mut frng,
        )
        .expect("a misconfiguration is sampleable");
        let mut broken = ctx.sim.clone();
        apply_failure(&mut broken, &failure);
        let after = probe_mesh(&broken, &ctx.sensors, &BTreeSet::new());
        if after.failed_count() > 0 {
            let sites = failure.all_failure_sites(&ctx.sim);
            break (failure, after, sites);
        }
    };
    let Failure::Misconfig(rules) = &failure else {
        unreachable!()
    };
    println!(
        "misconfiguration: router {} stops announcing {} prefix(es) to {}",
        rules[0].at,
        rules.len(),
        rules[0].peer
    );
    println!(
        "the physical link {} stays up, yet {} sensor pair(s) lost reachability",
        broken_sites[0],
        after.failed_count()
    );

    let obs = observations(&ctx.sensors, &ctx.mesh_before, &after);
    let ip2as = TruthIpToAs {
        topology: &topology,
    };
    let truth = TruthMap::build(&topology, &ctx.mesh_before, &after);
    let failed: BTreeSet<_> = broken_sites.iter().copied().collect();

    let e_tomo = evaluate(&topology, &truth, &tomo(&obs, &ip2as), &failed);
    let d_edge = nd_edge(&obs, &ip2as, Weights::default());
    let e_edge = evaluate(&topology, &truth, &d_edge, &failed);

    println!("\n              sensitivity  specificity  |H|");
    println!(
        "Tomo             {:>6.2}      {:>6.3}     {}",
        e_tomo.sensitivity, e_tomo.specificity, e_tomo.hypothesis_size
    );
    println!(
        "ND-edge          {:>6.2}      {:>6.3}     {}",
        e_edge.sensitivity, e_edge.specificity, e_edge.hypothesis_size
    );

    // The logical links in ND-edge's hypothesis localize the
    // misconfiguration on the physical link.
    println!("\nND-edge hypothesis (logical annotations included):");
    for &e in &d_edge.hypothesis {
        let data = d_edge.graph().edge(e);
        let (from, to) = d_edge.graph().endpoints(e);
        println!("  {from:?} -> {to:?}  [{:?}]", data.logical);
    }
    assert_eq!(e_edge.sensitivity, 1.0);
    println!("\nthe misconfigured link is localized ✓");
}
