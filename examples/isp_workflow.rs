//! An ISP operator's troubleshooting workflow (the paper's deployment
//! story): AS-X runs the troubleshooter at its NOC, combining the sensor
//! mesh with its own IGP/BGP feeds (ND-bgpigp).
//!
//! Two incidents are replayed: a failure *inside* AS-X (the IGP names the
//! exact link) and a remote failure (BGP withdrawals prune the upstream
//! suspects).
//!
//! ```text
//! cargo run --release --example isp_workflow
//! ```

// A runnable demo talks to its user on stdout.
#![allow(clippy::print_stdout)]
use std::collections::BTreeSet;
use std::sync::Arc;

use netdiagnoser_repro::diagnoser::{Algorithm, NetDiagnoser};
use netdiagnoser_repro::experiments::bridge::{observations, routing_feed, TruthIpToAs};
use netdiagnoser_repro::experiments::runner::{prepare, RunConfig};
use netdiagnoser_repro::experiments::truth::{evaluate, TruthMap};
use netdiagnoser_repro::netsim::probe_mesh;
use netdiagnoser_repro::topology::builders::{build_internet, InternetConfig};
use netdiagnoser_repro::topology::{LinkId, LinkKind};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let net = build_internet(&InternetConfig::default());
    let cfg = RunConfig::default();
    let mut rng = StdRng::seed_from_u64(7);
    let ctx = prepare(&net, &cfg, &mut rng);
    let topology = Arc::new(net.topology.clone());
    println!("AS-X (the troubleshooter) is {}\n", ctx.observer);

    // Probed links inside AS-X and outside it.
    let probed: BTreeSet<LinkId> = ctx
        .mesh_before
        .traceroutes
        .iter()
        .flat_map(|t| t.links())
        .collect();
    // For each incident class, find a probed link whose failure actually
    // breaks reachability (cleanly-rerouted failures never page the NOC).
    let breaking = |candidates: Vec<LinkId>| -> Option<LinkId> {
        candidates.into_iter().find(|&l| {
            let mut trial = ctx.sim.clone();
            trial.fail_link(l);
            probe_mesh(&trial, &ctx.sensors, &ctx.blocked).failed_count() > 0
        })
    };
    let inside = breaking(
        probed
            .iter()
            .copied()
            .filter(|&l| {
                let link = topology.link(l);
                link.kind == LinkKind::Intra && topology.as_of_router(link.a) == ctx.observer
            })
            .collect(),
    );
    let outside = breaking(
        probed
            .iter()
            .copied()
            .filter(|&l| {
                let link = topology.link(l);
                topology.as_of_router(link.a) != ctx.observer
                    && topology.as_of_router(link.b) != ctx.observer
            })
            .collect(),
    );

    for (label, link) in [("inside AS-X", inside), ("outside AS-X", outside)] {
        let Some(link) = link else {
            println!("({label}: no unreachability-causing probed link this placement)");
            continue;
        };
        let mut broken = ctx.sim.clone();
        broken.fail_link(link);
        let after = probe_mesh(&broken, &ctx.sensors, &ctx.blocked);
        let observed = broken.take_observed();
        let igp_events = broken.take_igp_events();
        println!(
            "incident {label}: link {link} down, {} paths broken",
            after.failed_count()
        );
        println!(
            "  NOC feeds: {} BGP messages observed at AS-X, {} IGP link-down events",
            observed.len(),
            igp_events
                .iter()
                .filter(|e| e.as_id == ctx.observer)
                .count()
        );

        let obs = observations(&ctx.sensors, &ctx.mesh_before, &after);
        // The builder owns its feed (Arc), so the algorithms share one
        // allocation instead of each cloning the NOC's view.
        let feed = std::sync::Arc::new(routing_feed(
            &topology,
            ctx.observer,
            &observed,
            &igp_events,
        ));
        let ip2as = TruthIpToAs {
            topology: &topology,
        };
        let truth = TruthMap::build(&topology, &ctx.mesh_before, &after);
        let failed = BTreeSet::from([link]);

        // One diagnoser per algorithm, sharing the NOC's routing feed.
        let diagnose = |algorithm| {
            NetDiagnoser::builder()
                .algorithm(algorithm)
                .routing_feed(std::sync::Arc::clone(&feed))
                .build()
                .diagnose(&obs, &ip2as)
                .expect("the feed is attached")
        };
        let e_edge = evaluate(&topology, &truth, &diagnose(Algorithm::NdEdge), &failed);
        let d_bgpigp = diagnose(Algorithm::NdBgpIgp);
        let e_bgpigp = evaluate(&topology, &truth, &d_bgpigp, &failed);
        println!(
            "  ND-edge   : sensitivity {:.2}, |H| = {:>2} links",
            e_edge.sensitivity, e_edge.hypothesis_size
        );
        println!(
            "  ND-bgpigp : sensitivity {:.2}, |H| = {:>2} links  (control plane pruned {})",
            e_bgpigp.sensitivity,
            e_bgpigp.hypothesis_size,
            e_edge
                .hypothesis_size
                .saturating_sub(e_bgpigp.hypothesis_size)
        );
        println!(
            "  suspect links handed to the operator: {:?}\n",
            truth.hypothesis_links(&d_bgpigp)
        );
    }
}
