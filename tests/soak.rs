//! Long-running soak test (ignored by default): hammer the whole stack
//! across many topology seeds and failure classes, asserting the
//! invariants that must never break. Run with:
//!
//! ```text
//! cargo test --release --test soak -- --ignored --nocapture
//! ```

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use rand::rngs::StdRng;
use rand::SeedableRng;

use netdiagnoser_repro::experiments::placement::Placement;
use netdiagnoser_repro::experiments::runner::{prepare, run_trial, RunConfig};
use netdiagnoser_repro::experiments::sampling::FailureSpec;
use netdiagnoser_repro::topology::builders::{build_internet, InternetConfig};

#[test]
#[ignore = "soak test: ~2 minutes"]
fn soak_all_failure_classes_many_seeds() {
    let mut trials = 0usize;
    for topo_seed in 1..=3u64 {
        let net = build_internet(&InternetConfig {
            seed: topo_seed,
            ..Default::default()
        });
        for spec in [
            FailureSpec::Links(1),
            FailureSpec::Links(2),
            FailureSpec::Links(3),
            FailureSpec::Router,
            FailureSpec::Misconfig,
            FailureSpec::MisconfigPlusLink,
        ] {
            for placement in [
                Placement::Random,
                Placement::SameAs,
                Placement::DistantAsSplit,
            ] {
                for blocked in [0.0, 0.4] {
                    let cfg = RunConfig {
                        failure: spec,
                        placement,
                        blocked_frac: blocked,
                        ..Default::default()
                    };
                    let mut prng = StdRng::seed_from_u64(topo_seed * 1000 + blocked as u64);
                    let ctx = prepare(&net, &cfg, &mut prng);
                    let mut frng = StdRng::seed_from_u64(topo_seed ^ 0xDEAD);
                    for _ in 0..4 {
                        let Some(tr) = run_trial(&ctx, &cfg, &mut frng) else {
                            continue;
                        };
                        trials += 1;
                        for (name, e) in [
                            ("tomo", &tr.tomo),
                            ("nd_edge", &tr.nd_edge),
                            ("nd_bgpigp", &tr.nd_bgpigp),
                        ] {
                            assert!(
                                (0.0..=1.0).contains(&e.sensitivity),
                                "{name} sensitivity out of range"
                            );
                            assert!(
                                (0.0..=1.0).contains(&e.specificity),
                                "{name} specificity out of range"
                            );
                            assert!((0.0..=1.0).contains(&e.as_sensitivity));
                            assert!((0.0..=1.0).contains(&e.as_specificity));
                        }
                        // ND-edge sensitivity dominates Tomo's on average;
                        // per-trial it must at least never be beaten on the
                        // failure classes Tomo handles poorly by more than
                        // the tie margin... keep the hard invariant only:
                        assert!(tr.failed_paths > 0);
                        assert!(
                            !tr.failed_sites.is_empty()
                                || tr.failure.all_failure_sites(&ctx.sim).is_empty()
                        );
                        if blocked > 0.0 {
                            assert!(tr.nd_lg.is_some());
                        }
                    }
                }
            }
        }
    }
    eprintln!("soak: {trials} trials across 3 topologies x 6 failure classes x 3 placements x 2 blocking modes");
    assert!(trials > 200, "got {trials}");
}
