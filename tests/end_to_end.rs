//! End-to-end workspace tests: the full pipeline from topology generation
//! through diagnosis, plus determinism across the whole stack.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::collections::BTreeSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use netdiagnoser_repro::diagnoser::{nd_bgpigp, nd_edge, tomo, Weights};
use netdiagnoser_repro::experiments::bridge::{observations, routing_feed, TruthIpToAs};
use netdiagnoser_repro::experiments::placement::Placement;
use netdiagnoser_repro::experiments::runner::{prepare, run_trial, RunConfig};
use netdiagnoser_repro::experiments::sampling::FailureSpec;
use netdiagnoser_repro::experiments::truth::{evaluate, mesh_diagnosability, TruthMap};
use netdiagnoser_repro::netsim::{probe_mesh, SensorSet, Sim};
use netdiagnoser_repro::topology::builders::{build_internet, InternetConfig};

#[test]
fn single_uplink_failure_localized_by_every_algorithm() {
    let net = build_internet(&InternetConfig::default());
    let topology = Arc::new(net.topology.clone());
    let spec: Vec<_> = net.stubs[..8]
        .iter()
        .map(|s| (s.as_id, s.routers[0]))
        .collect();
    let sensors = SensorSet::place(&topology, &spec);
    let mut sim = Sim::new(Arc::clone(&topology));
    sim.set_observer(net.cores[0].as_id);
    sensors.register(&mut sim);
    sim.converge_for(&sensors.as_ids());
    sim.take_observed();

    let before = probe_mesh(&sim, &sensors, &BTreeSet::new());
    // A single-homed sensor: its lone uplink is non-recoverable.
    let victim = sensors
        .sensors()
        .iter()
        .find(|s| topology.router(s.router).links.len() == 1)
        .expect("some stub is single-homed");
    let uplink = topology.router(victim.router).links[0];
    let mut broken = sim.clone();
    broken.fail_link(uplink);
    let after = probe_mesh(&broken, &sensors, &BTreeSet::new());
    assert!(after.failed_count() > 0);

    let obs = observations(&sensors, &before, &after);
    let feed = routing_feed(
        &topology,
        net.cores[0].as_id,
        &broken.take_observed(),
        &broken.take_igp_events(),
    );
    let ip2as = TruthIpToAs {
        topology: &topology,
    };
    let truth = TruthMap::build(&topology, &before, &after);
    let failed = BTreeSet::from([uplink]);

    for (name, d) in [
        ("tomo", tomo(&obs, &ip2as)),
        ("nd_edge", nd_edge(&obs, &ip2as, Weights::default())),
        (
            "nd_bgpigp",
            nd_bgpigp(&obs, &ip2as, &feed, Weights::default()),
        ),
    ] {
        let e = evaluate(&topology, &truth, &d, &failed);
        assert_eq!(e.sensitivity, 1.0, "{name} must find the uplink");
        assert!(e.specificity > 0.9, "{name} specificity {}", e.specificity);
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let net = build_internet(&InternetConfig::default());
        let cfg = RunConfig {
            failure: FailureSpec::Links(2),
            placement: Placement::Random,
            blocked_frac: 0.3,
            ..Default::default()
        };
        let mut prng = StdRng::seed_from_u64(4242);
        let ctx = prepare(&net, &cfg, &mut prng);
        let mut frng = StdRng::seed_from_u64(17);
        let mut out = Vec::new();
        for _ in 0..5 {
            if let Some(tr) = run_trial(&ctx, &cfg, &mut frng) {
                out.push((
                    tr.failed_sites.clone(),
                    tr.tomo.sensitivity,
                    tr.nd_edge.sensitivity,
                    tr.nd_edge.specificity,
                    tr.nd_bgpigp.hypothesis_size,
                    tr.nd_lg.map(|e| e.as_sensitivity),
                ));
            }
        }
        out
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "two identical runs must agree bit for bit");
}

#[test]
fn diagnosability_in_papers_range_for_ten_random_sensors() {
    // Paper §4: for N=10 random sensors, diagnosability spans ~0.25-0.6
    // (PlanetLab reality check: 0.41). Allow a wider band but require the
    // same order of magnitude.
    let net = build_internet(&InternetConfig::default());
    let topology = Arc::new(net.topology.clone());
    let mut values = Vec::new();
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = netdiagnoser_repro::experiments::placement::place_sensors(
            &net,
            Placement::Random,
            10,
            &mut rng,
        );
        let sensors = SensorSet::place(&topology, &spec);
        let mut sim = Sim::new(Arc::clone(&topology));
        sensors.register(&mut sim);
        sim.converge_for(&sensors.as_ids());
        let mesh = probe_mesh(&sim, &sensors, &BTreeSet::new());
        values.push(mesh_diagnosability(&mesh));
    }
    for v in &values {
        assert!((0.2..=0.8).contains(v), "diagnosability {v} out of range");
    }
}

#[test]
fn blocked_run_produces_nd_lg_results() {
    let net = build_internet(&InternetConfig::default());
    let cfg = RunConfig {
        blocked_frac: 0.4,
        lg_frac: 1.0,
        ..Default::default()
    };
    let mut prng = StdRng::seed_from_u64(5);
    let ctx = prepare(&net, &cfg, &mut prng);
    assert!(!ctx.blocked.is_empty());
    let mut frng = StdRng::seed_from_u64(6);
    let tr = run_trial(&ctx, &cfg, &mut frng).expect("trial");
    let lg = tr.nd_lg.expect("ND-LG runs when blocking is on");
    assert!((0.0..=1.0).contains(&lg.as_sensitivity));
    assert!((0.0..=1.0).contains(&lg.as_specificity));
    // ND-LG never does worse than ND-bgpigp on AS-sensitivity.
    assert!(lg.as_sensitivity >= tr.nd_bgpigp.as_sensitivity - 1e-9);
}
