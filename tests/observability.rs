//! End-to-end instrumentation: a full trial on a small topology must leave
//! nonzero counters in every layer of the run report.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use netdiag_experiments::runner::{prepare_with, run_trial, RunConfig};
use netdiag_obs::{names, RecorderHandle};
use netdiag_topology::builders::{build_internet, InternetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn trial_populates_every_layer_of_the_run_report() {
    let net = build_internet(&InternetConfig::small(3));
    let cfg = RunConfig::default();
    let (recorder, sink) = RecorderHandle::in_memory();

    let mut rng = StdRng::seed_from_u64(11);
    let ctx = prepare_with(&net, &cfg, &mut rng, recorder);
    let mut frng = StdRng::seed_from_u64(12);
    let trial = run_trial(&ctx, &cfg, &mut frng).expect("a failure trial runs");
    assert!(!trial.failed_sites.is_empty() || trial.failed_paths > 0);

    let report = sink.report();
    assert!(report.counter(names::IGP_SPF_RUNS) > 0, "SPF ran");
    assert!(
        report.counter(names::IGP_SETTLED_NODES) > 0,
        "SPF settled nodes"
    );
    assert!(
        report.counter(names::BGP_MSGS) > 0,
        "BGP exchanged messages"
    );
    assert!(report.counter(names::BGP_DECISIONS) > 0, "BGP decided");
    assert!(report.counter(names::PROBE_TRACEROUTES) > 0, "probes ran");
    assert!(report.counter(names::PROBE_HOPS) > 0, "probes saw hops");
    assert!(
        report.counter(names::HS_GREEDY_ITERS) > 0,
        "greedy iterated"
    );
    assert_eq!(
        report.counter(names::DIAG_RUNS),
        3,
        "tomo + nd-edge + nd-bgpigp"
    );
    assert!(report.histogram(names::HS_CANDIDATES).is_some());
    assert!(report.histogram(names::DIAG_HYPOTHESIS_SIZE).is_some());

    // All four trial phases were timed.
    for phase in [
        names::TRIAL_SETUP,
        names::TRIAL_INJECT,
        names::TRIAL_MEASURE,
        names::TRIAL_DIAGNOSE,
    ] {
        let span = report
            .span(phase)
            .unwrap_or_else(|| panic!("{phase} span missing"));
        assert!(span.count > 0, "{phase} recorded");
    }

    // The JSON serialization carries the same numbers.
    let json = report.to_json();
    assert!(json.contains("\"version\": 3"), "{json}");
    assert!(json.contains("\"igp.spf_runs\""), "{json}");
    assert!(json.contains("\"trial.diagnose\""), "{json}");
    assert!(
        json.contains("\"p99\""),
        "histograms carry percentiles: {json}"
    );
}

#[test]
fn traced_trial_replays_into_an_explanation() {
    let net = build_internet(&InternetConfig::small(3));
    let cfg = RunConfig::default();
    let (recorder, tracer) = RecorderHandle::tracing();

    let _scope = netdiag_obs::trial_scope(0, 0);
    let mut rng = StdRng::seed_from_u64(11);
    let ctx = prepare_with(&net, &cfg, &mut rng, recorder);
    let mut frng = StdRng::seed_from_u64(12);
    run_trial(&ctx, &cfg, &mut frng).expect("a failure trial runs");

    let narrative = netdiag_experiments::explain::explain(
        &tracer.to_jsonl(),
        &netdiag_experiments::explain::ExplainFilter {
            algo: Some("nd-edge".into()),
            ..Default::default()
        },
    )
    .expect("trace explains");
    assert!(narrative.contains("--- nd-edge ---"), "{narrative}");
    assert!(narrative.contains("hypothesis"), "{narrative}");
}

#[test]
fn noop_recorder_leaves_no_trace_and_changes_no_results() {
    let net = build_internet(&InternetConfig::small(3));
    let cfg = RunConfig::default();

    let run = |recorder: RecorderHandle| {
        let mut rng = StdRng::seed_from_u64(11);
        let ctx = prepare_with(&net, &cfg, &mut rng, recorder);
        let mut frng = StdRng::seed_from_u64(12);
        run_trial(&ctx, &cfg, &mut frng).expect("a failure trial runs")
    };

    let (handle, sink) = RecorderHandle::in_memory();
    let recorded = run(handle);
    let plain = run(RecorderHandle::noop());

    // Instrumentation must not perturb the diagnosis.
    assert_eq!(recorded.failed_sites, plain.failed_sites);
    assert_eq!(recorded.failed_paths, plain.failed_paths);
    assert_eq!(
        recorded.nd_edge.hypothesis_size,
        plain.nd_edge.hypothesis_size
    );
    assert!(sink.report().counter(names::IGP_SPF_RUNS) > 0);
}
