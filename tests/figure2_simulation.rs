//! The paper's running example, end to end *through the simulator*: the
//! Figure 2 network is built, routed, misconfigured exactly as §3.1
//! narrates, and the diagnoser must reach the paper's conclusions.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::collections::BTreeSet;
use std::sync::Arc;

use netdiagnoser_repro::bgp::ExportDeny;
use netdiagnoser_repro::diagnoser::{nd_bgpigp, nd_edge, tomo, LogicalPart, Weights};
use netdiagnoser_repro::experiments::bridge::{observations, routing_feed, TruthIpToAs};
use netdiagnoser_repro::experiments::truth::{evaluate, TruthMap};
use netdiagnoser_repro::netsim::{probe_mesh, SensorSet, Sim};
use netdiagnoser_repro::topology::builders::paper_figure2;

struct Fixture {
    sim: Sim,
    sensors: SensorSet,
    fig: netdiagnoser_repro::topology::builders::Figure2,
}

fn fixture() -> Fixture {
    let fig = paper_figure2();
    let topology = Arc::new(fig.topology.clone());
    let [a, _, _, b, c] = fig.as_ids();
    // Sensors: s1 at a1, s2 at b2, s3 at c1.
    let sensors = SensorSet::place(&topology, &[(a, fig.a[0]), (b, fig.b[1]), (c, fig.c[0])]);
    let mut sim = Sim::new(topology);
    sensors.register(&mut sim);
    let [_, x, ..] = fig.as_ids();
    sim.set_observer(x);
    sim.converge_all();
    sim.take_observed();
    Fixture { sim, sensors, fig }
}

#[test]
fn healthy_paths_follow_the_papers_hop_sequences() {
    let f = fixture();
    let mesh = probe_mesh(&f.sim, &f.sensors, &BTreeSet::new());
    assert_eq!(mesh.failed_count(), 0);
    // s1 -> s2 routers: a1 a2 x1 x2 y1 y4 b1 b2.
    let tr = mesh
        .between(
            netdiagnoser_repro::topology::SensorId(0),
            netdiagnoser_repro::topology::SensorId(1),
        )
        .unwrap();
    let routers: Vec<_> = tr.hops.iter().filter_map(|h| h.router()).collect();
    assert_eq!(
        routers,
        vec![
            f.fig.a[0], f.fig.a[1], f.fig.x[0], f.fig.x[1], f.fig.y[0], f.fig.y[3], f.fig.b[0],
            f.fig.b[1]
        ],
        "the paper's narrated path"
    );
    // s1 -> s3 goes through y3 toward C.
    let tr = mesh
        .between(
            netdiagnoser_repro::topology::SensorId(0),
            netdiagnoser_repro::topology::SensorId(2),
        )
        .unwrap();
    let routers: Vec<_> = tr.hops.iter().filter_map(|h| h.router()).collect();
    assert_eq!(
        routers,
        vec![f.fig.a[0], f.fig.a[1], f.fig.x[0], f.fig.x[1], f.fig.y[0], f.fig.y[2], f.fig.c[0]]
    );
}

#[test]
fn section31_misconfiguration_reproduced_through_the_simulator() {
    // "a misconfiguration at the outbound route filter of y1 causes it to
    //  announce to x2 only the route towards B, while it does not announce
    //  the route towards C. As a result, the path s1-s2 works, while s1-s3
    //  fails."
    let f = fixture();
    let before = probe_mesh(&f.sim, &f.sensors, &BTreeSet::new());
    let [.., c_as] = f.fig.as_ids();
    let c_prefix = f.sim.topology().as_node(c_as).prefix;
    let mut broken = f.sim.clone();
    broken.misconfigure(&[ExportDeny {
        at: f.fig.y[0],   // y1
        peer: f.fig.x[1], // x2
        prefix: c_prefix,
    }]);
    let after = probe_mesh(&broken, &f.sensors, &BTreeSet::new());

    let s = |i| netdiagnoser_repro::topology::SensorId(i);
    assert!(after.between(s(0), s(1)).unwrap().reached, "s1-s2 works");
    assert!(!after.between(s(0), s(2)).unwrap().reached, "s1-s3 fails");

    // Diagnose.
    let topology = f.sim.topology();
    let obs = observations(&f.sensors, &before, &after);
    let ip2as = TruthIpToAs { topology };
    let truth = TruthMap::build(topology, &before, &after);
    let misconfigured_link = topology.link_between(f.fig.x[1], f.fig.y[0]).unwrap();
    let failed = BTreeSet::from([misconfigured_link]);

    // Tomo misses it (the link carries the working s1-s2 path)...
    let e_tomo = evaluate(topology, &truth, &tomo(&obs, &ip2as), &failed);
    assert_eq!(e_tomo.sensitivity, 0.0, "Tomo must exonerate x2-y1");

    // ...ND-edge pins it through the C-annotated logical links.
    let d = nd_edge(&obs, &ip2as, Weights::default());
    let e_edge = evaluate(topology, &truth, &d, &failed);
    assert_eq!(e_edge.sensitivity, 1.0);
    let logical_cs: Vec<_> = d
        .hypothesis
        .iter()
        .filter_map(|&e| d.graph().edge(e).logical)
        .filter(|l| matches!(l, LogicalPart::First(a) | LogicalPart::Second(a) if *a == c_as))
        .collect();
    assert_eq!(
        logical_cs.len(),
        2,
        "exactly the two C-annotated halves x2-y1(C), y1(C)-y1"
    );

    // With AS-X's control plane: x2 received y1's withdrawal for C's
    // prefix, which prunes the upstream links from the failed path.
    let observed = broken.take_observed();
    let feed = routing_feed(topology, f.fig.as_ids()[1], &observed, &[]);
    assert!(
        feed.withdrawals.iter().any(|w| w.prefix == c_prefix),
        "x2 must observe y1's withdrawal: {observed:?}"
    );
    let d2 = nd_bgpigp(&obs, &ip2as, &feed, Weights::default());
    let e2 = evaluate(topology, &truth, &d2, &failed);
    assert_eq!(e2.sensitivity, 1.0);
    assert!(e2.specificity >= e_edge.specificity);
}

#[test]
fn figure2_b1_b2_failure_is_found_exactly() {
    // §2.2's opening example: "the link b1-b2 fails, causing some pairs of
    // sensors to become unreachable. The goal of AS-X is to determine that
    // the link b1-b2 failed."
    let f = fixture();
    let before = probe_mesh(&f.sim, &f.sensors, &BTreeSet::new());
    let link = f
        .sim
        .topology()
        .link_between(f.fig.b[0], f.fig.b[1])
        .unwrap();
    let mut broken = f.sim.clone();
    broken.fail_link(link);
    let after = probe_mesh(&broken, &f.sensors, &BTreeSet::new());
    assert!(after.failed_count() > 0, "s2 became unreachable");

    let topology = f.sim.topology();
    let obs = observations(&f.sensors, &before, &after);
    let ip2as = TruthIpToAs { topology };
    let truth = TruthMap::build(topology, &before, &after);
    let d = nd_edge(&obs, &ip2as, Weights::default());
    let hyp = truth.hypothesis_links(&d);
    assert!(hyp.contains(&link), "b1-b2 must be hypothesized: {hyp:?}");
}
