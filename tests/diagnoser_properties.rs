//! Property-based tests of the diagnoser against randomized simulated
//! networks: structural invariants that must hold for every topology,
//! placement and failure.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use netdiagnoser_repro::diagnoser::{nd_edge, tomo, Weights};
use netdiagnoser_repro::experiments::bridge::{observations, TruthIpToAs};
use netdiagnoser_repro::experiments::sampling::{sample_failure, FailureSpec};
use netdiagnoser_repro::experiments::truth::TruthMap;
use netdiagnoser_repro::netsim::{apply_failure, probe_mesh, SensorSet, Sim};
use netdiagnoser_repro::topology::builders::{build_internet, InternetConfig};

/// Builds a small random internet with sensors and a converged simulator.
fn small_world(seed: u64, n_sensors: usize) -> (Sim, SensorSet) {
    let net = build_internet(&InternetConfig::small(seed));
    let topology = Arc::new(net.topology.clone());
    let spec: Vec<_> = net.stubs[..n_sensors]
        .iter()
        .map(|s| (s.as_id, s.routers[0]))
        .collect();
    let sensors = SensorSet::place(&topology, &spec);
    let mut sim = Sim::new(topology);
    sensors.register(&mut sim);
    sim.converge_for(&sensors.as_ids());
    (sim, sensors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The healthy mesh is always fully reachable, whatever the seed.
    #[test]
    fn healthy_mesh_fully_reachable(seed in 0u64..500, n in 3usize..7) {
        let (sim, sensors) = small_world(seed, n);
        let mesh = probe_mesh(&sim, &sensors, &BTreeSet::new());
        prop_assert_eq!(mesh.failed_count(), 0);
        prop_assert_eq!(mesh.traceroutes.len(), n * (n - 1));
    }

    /// For any single/multi link failure: the hypothesis only contains
    /// probed links; metrics are within range; every failure set the
    /// greedy reports explained really is hit by the hypothesis.
    #[test]
    fn diagnosis_structural_invariants(
        seed in 0u64..200,
        fseed in 0u64..50,
        n_fail in 1usize..4,
    ) {
        let (sim, sensors) = small_world(seed, 5);
        let before = probe_mesh(&sim, &sensors, &BTreeSet::new());
        let mut rng = StdRng::seed_from_u64(fseed);
        let Some(failure) = sample_failure(
            &sim, &before, &sensors, FailureSpec::Links(n_fail), &mut rng,
        ) else {
            return Ok(());
        };
        let mut broken = sim.clone();
        apply_failure(&mut broken, &failure);
        let after = probe_mesh(&broken, &sensors, &BTreeSet::new());
        if after.failed_count() == 0 {
            return Ok(()); // fully rerouted: troubleshooter not invoked
        }
        let topology = sim.topology();
        let obs = observations(&sensors, &before, &after);
        let ip2as = TruthIpToAs { topology };
        let truth = TruthMap::build(topology, &before, &after);

        for d in [tomo(&obs, &ip2as), nd_edge(&obs, &ip2as, Weights::default())] {
            // Hypothesis edges come from candidates/forced only.
            for &e in &d.hypothesis {
                prop_assert!(
                    d.problem.candidates.contains(e)
                        || d.problem.forced.contains(&e)
                        || !d.problem.working_edges.contains(e),
                    "hypothesis edge on a working path"
                );
            }
            // Every hypothesis edge maps to a probed link or a host edge.
            let mapped = truth.hypothesis_links(&d);
            for l in &mapped {
                prop_assert!(truth.probed_links().contains(l));
            }
            // Explained sets really are hit.
            let h: BTreeSet<_> = d.hypothesis.iter().copied().collect();
            for (i, set) in d.problem.failure_sets.iter().enumerate() {
                let explained = !d.greedy.unexplained_failures.contains(&i);
                if explained {
                    prop_assert!(
                        set.edges.iter().any(|e| h.contains(&e)),
                        "explained set not hit"
                    );
                }
            }
        }
    }

    /// A single failed link is never *exonerated*: its edges stay in the
    /// candidate set (no working path can cross a dead link), so the
    /// evidence always permits the correct diagnosis. (Whether the greedy
    /// actually selects it is statistical — ~98% of trials at paper scale,
    /// the "almost always" of §5.2 — so that part is asserted on averages
    /// in the calibration tests, not per-instance here.)
    #[test]
    fn ndedge_never_exonerates_single_failures(seed in 0u64..200, fseed in 0u64..20) {
        let (sim, sensors) = small_world(seed, 5);
        let before = probe_mesh(&sim, &sensors, &BTreeSet::new());
        let mut rng = StdRng::seed_from_u64(fseed);
        let Some(failure) = sample_failure(
            &sim, &before, &sensors, FailureSpec::Links(1), &mut rng,
        ) else {
            return Ok(());
        };
        let mut broken = sim.clone();
        apply_failure(&mut broken, &failure);
        let after = probe_mesh(&broken, &sensors, &BTreeSet::new());
        if after.failed_count() == 0 {
            return Ok(());
        }
        let topology = sim.topology();
        let obs = observations(&sensors, &before, &after);
        let ip2as = TruthIpToAs { topology };
        let truth = TruthMap::build(topology, &before, &after);
        let d = nd_edge(&obs, &ip2as, Weights::default());
        let failed = failure.all_failure_sites(&sim)[0];
        // Some candidate edge maps to the failed link (it was probed at T-
        // and cannot be cleared by any T+ working path).
        let mut in_candidates = false;
        for e in d.problem.candidates.iter() {
            let (from, to) = d.graph().endpoints(e);
            if truth.link_of(from, to) == Some(failed) {
                in_candidates = true;
                break;
            }
        }
        prop_assert!(
            in_candidates,
            "failed link {failed:?} was exonerated from the candidate set"
        );
        // And the greedy left no explainable failure set unexplained.
        prop_assert!(d.greedy.unexplained_failures.is_empty());
    }

    /// Tomo and ND-edge are deterministic functions of the observations.
    #[test]
    fn diagnosis_deterministic(seed in 0u64..100) {
        let (sim, sensors) = small_world(seed, 4);
        let before = probe_mesh(&sim, &sensors, &BTreeSet::new());
        let mut rng = StdRng::seed_from_u64(1);
        let Some(failure) = sample_failure(
            &sim, &before, &sensors, FailureSpec::Links(1), &mut rng,
        ) else {
            return Ok(());
        };
        let mut broken = sim.clone();
        apply_failure(&mut broken, &failure);
        let after = probe_mesh(&broken, &sensors, &BTreeSet::new());
        let obs = observations(&sensors, &before, &after);
        let ip2as = TruthIpToAs { topology: sim.topology() };
        let d1 = nd_edge(&obs, &ip2as, Weights::default());
        let d2 = nd_edge(&obs, &ip2as, Weights::default());
        prop_assert_eq!(d1.hypothesis, d2.hypothesis);
    }
}
