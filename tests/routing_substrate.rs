//! Cross-crate invariants of the routing substrate on the full 165-AS
//! evaluation topology: reachability, valley-freeness, loop-freedom, and
//! traceroute/BGP consistency.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::collections::BTreeSet;
use std::sync::Arc;

use netdiagnoser_repro::netsim::{probe_mesh, SensorSet, Sim};
use netdiagnoser_repro::topology::builders::{build_internet, InternetConfig};
use netdiagnoser_repro::topology::{AsId, PeerKind};

fn fixture() -> (Sim, SensorSet) {
    let net = build_internet(&InternetConfig::default());
    let topology = Arc::new(net.topology.clone());
    let spec: Vec<_> = net.stubs[..10]
        .iter()
        .map(|s| (s.as_id, s.routers[0]))
        .collect();
    let sensors = SensorSet::place(&topology, &spec);
    let mut sim = Sim::new(topology);
    sensors.register(&mut sim);
    sim.converge_for(&sensors.as_ids());
    (sim, sensors)
}

#[test]
fn healthy_network_has_full_reachability() {
    let (sim, sensors) = fixture();
    let mesh = probe_mesh(&sim, &sensors, &BTreeSet::new());
    assert_eq!(mesh.traceroutes.len(), 90);
    assert_eq!(mesh.failed_count(), 0);
}

#[test]
fn all_as_paths_are_valley_free() {
    let (sim, sensors) = fixture();
    let topology = sim.topology();
    for sensor in sensors.sensors() {
        let prefix = topology.as_node(sensor.as_id).prefix;
        for router in topology.routers() {
            let Some(route) = sim.bgp().best_route(router.id, &prefix) else {
                continue;
            };
            // Valley-free: up* (peer)? down* — once the path steps
            // sideways (peer) or down (provider->customer), it may only
            // continue downhill.
            let mut path = vec![router.as_id];
            path.extend(route.as_path.iter().copied());
            let mut downhill_only = false;
            for w in path.windows(2) {
                // rel = role of w[1] from w[0]'s perspective:
                // Provider = "up" step, Peer = "flat", Customer = "down".
                let rel = topology
                    .relationship(w[0], w[1])
                    .expect("consecutive path ASes are neighbors");
                match rel {
                    PeerKind::Provider | PeerKind::Peer => {
                        assert!(
                            !downhill_only,
                            "valley in AS path {path:?} at {:?}->{:?}",
                            w[0], w[1]
                        );
                        if rel == PeerKind::Peer {
                            downhill_only = true;
                        }
                    }
                    PeerKind::Customer => downhill_only = true,
                }
            }
        }
    }
}

#[test]
fn traceroute_as_sequence_matches_bgp_as_path() {
    let (sim, sensors) = fixture();
    let topology = sim.topology();
    let mesh = probe_mesh(&sim, &sensors, &BTreeSet::new());
    for tr in &mesh.traceroutes {
        let src = sensors.get(tr.src);
        let dst = sensors.get(tr.dst);
        // AS sequence actually traversed.
        let mut traversed: Vec<AsId> = Vec::new();
        for hop in &tr.hops {
            if let Some(r) = hop.router() {
                let a = topology.as_of_router(r);
                if traversed.last() != Some(&a) {
                    traversed.push(a);
                }
            }
        }
        // BGP's promised AS path from the source router.
        let prefix = topology.as_node(dst.as_id).prefix;
        let route = sim
            .bgp()
            .best_route(src.router, &prefix)
            .expect("healthy network");
        let mut promised = vec![src.as_id];
        promised.extend(route.as_path.iter().copied());
        assert_eq!(
            traversed, promised,
            "data plane disagrees with control plane for {}->{}",
            tr.src, tr.dst
        );
    }
}

#[test]
fn no_forwarding_loops_anywhere() {
    let (sim, sensors) = fixture();
    // Forward from every router toward every sensor: the walk must always
    // terminate by delivery or blackhole, never a loop (checked inside
    // `forward`, which reports Loop as an outcome).
    let topology = sim.topology();
    for router in topology.routers() {
        for sensor in sensors.sensors() {
            let path = sim.forward(router.id, sensor.addr);
            assert!(
                !matches!(
                    path.outcome,
                    netdiagnoser_repro::netsim::ForwardOutcome::Loop(_)
                ),
                "forwarding loop from {} to {}",
                router.id,
                sensor.id
            );
        }
    }
}

#[test]
fn probed_link_counts_match_paper_scale() {
    // The paper reports ~150-200 probed links for 10 sensors.
    let (sim, sensors) = fixture();
    let mesh = probe_mesh(&sim, &sensors, &BTreeSet::new());
    let probed: BTreeSet<_> = mesh.traceroutes.iter().flat_map(|t| t.links()).collect();
    assert!(
        (60..=400).contains(&probed.len()),
        "probed links: {}",
        probed.len()
    );
    let _ = sim;
}
