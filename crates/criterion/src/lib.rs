//! Minimal in-tree stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of criterion its benches use: [`Criterion::benchmark_group`]
//! with `sample_size` / `warm_up_time` / `measurement_time`,
//! [`BenchmarkGroup::bench_function`] with [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Differences from upstream: no statistical analysis, no HTML reports, no
//! baseline comparison. Each benchmark runs a warm-up phase, then
//! `sample_size` timed samples, and prints min/median/mean wall-clock per
//! iteration — enough to eyeball regressions and to keep `cargo bench`
//! compiling and running offline.
//!
//! Two environment variables drive `scripts/bench.sh`:
//!
//! * `CRITERION_QUICK=1` caps every benchmark at 10 samples with short
//!   warm-up/measurement budgets (a smoke-level run);
//! * `CRITERION_JSON=<path>` appends one JSON line per benchmark
//!   (`{"id", "samples", "min_ns", "median_ns", "mean_ns"}`) to `<path>`
//!   in addition to the human-readable stdout line.

#![forbid(unsafe_code)]
// A benchmark harness reports to stdout; that is its interface.
#![allow(clippy::print_stdout)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// work (forwards to [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmark ids, like upstream.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(String::new());
        group.bench_function(id, f);
        group.finish();
        self
    }

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// How long to run untimed before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total wall-clock budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark: warm-up, then `sample_size` timed samples.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full_id = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self.criterion.matches(&full_id) {
            return self;
        }

        // CRITERION_QUICK caps the budgets for smoke runs (bench.sh).
        let quick = std::env::var_os("CRITERION_QUICK").is_some_and(|v| v != "0" && !v.is_empty());
        let (sample_size, warm_up_time, measurement_time) = if quick {
            (
                self.sample_size.min(10),
                self.warm_up_time.min(Duration::from_millis(200)),
                self.measurement_time.min(Duration::from_millis(800)),
            )
        } else {
            (self.sample_size, self.warm_up_time, self.measurement_time)
        };

        // Warm-up: run until the budget elapses (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        while warm_iters == 0 || warm_start.elapsed() < warm_up_time {
            bencher.reset();
            f(&mut bencher);
            warm_iters += bencher.iters.max(1);
        }

        // Sampling: `sample_size` samples, stopping early only if the
        // measurement budget is exhausted (every benchmark gets >= 1).
        let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
        let sample_start = Instant::now();
        for i in 0..sample_size {
            if i > 0 && sample_start.elapsed() > measurement_time {
                break;
            }
            bencher.reset();
            f(&mut bencher);
            per_iter.push(bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter.first().copied().unwrap_or(0.0);
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{full_id:<40} samples={:<4} min={} median={} mean={}",
            per_iter.len(),
            format_time(min),
            format_time(median),
            format_time(mean),
        );
        if let Some(path) = std::env::var_os("CRITERION_JSON") {
            use std::io::Write as _;
            if let Ok(mut out) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(
                    out,
                    "{{\"id\":\"{}\",\"samples\":{},\"min_ns\":{:.0},\"median_ns\":{:.0},\"mean_ns\":{:.0}}}",
                    full_id,
                    per_iter.len(),
                    min * 1e9,
                    median * 1e9,
                    mean * 1e9,
                );
            }
        }
        self
    }

    /// Ends the group (upstream flushes reports here; we print per-bench).
    pub fn finish(&mut self) {}
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn reset(&mut self) {
        self.elapsed = Duration::ZERO;
        self.iters = 0;
    }

    /// Runs `routine` once and records its wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }

    /// Runs `setup` untimed, then times `routine` on its output — for
    /// benchmarks whose per-iteration state preparation must stay out of
    /// the measurement (upstream `iter_batched`).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }
}

/// Upstream-compatible batch-size hint. The in-tree harness runs one
/// setup + one routine per measured call either way, so this only keeps
/// call sites source-compatible with real criterion.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Setup output is cheap to hold many of (upstream batches these).
    SmallInput,
    /// Setup output is expensive; upstream runs one at a time.
    LargeInput,
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3}us", secs * 1e6)
    } else {
        format!("{:.1}ns", secs * 1e9)
    }
}

/// Declares a benchmark group runner, mirroring upstream's macro shape.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50))
            .bench_function("noop", |b| {
                b.iter(|| {
                    runs += 1;
                });
            });
        group.finish();
        assert!(runs >= 3, "warm-up + 3 samples should run the body");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("other".into()),
        };
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.sample_size(2).bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        assert_eq!(runs, 0, "filtered-out benchmark must not run");
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(41) + 1, 42);
    }
}
