//! Property-based tests of the BGP engine over randomized internets:
//! convergence, valley-freeness, reachability, determinism, and failover
//! consistency.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use netdiag_bgp::{Bgp, Ctx};
use netdiag_igp::{Igp, LinkState};
use netdiag_topology::builders::{build_internet, InternetConfig};
use netdiag_topology::{AsId, LinkId, PeerKind, Topology};

struct World {
    topology: Arc<Topology>,
    links: LinkState,
    igp: Igp,
    bgp: Bgp,
}

fn converge_world(seed: u64) -> World {
    let net = build_internet(&InternetConfig::small(seed));
    let topology = Arc::new(net.topology.clone());
    let links = LinkState::all_up(&topology);
    let igp = Igp::compute(&topology, &links);
    let mut bgp = Bgp::new(&topology);
    let ctx = Ctx {
        topology: &topology,
        igp: &igp,
        links: &links,
    };
    bgp.originate_all(ctx);
    bgp.run(ctx);
    World {
        topology,
        links,
        igp,
        bgp,
    }
}

/// Is the AS path valley-free from the vantage AS? (up* peer? down*)
fn valley_free(t: &Topology, vantage: AsId, as_path: &[AsId]) -> bool {
    let mut path = vec![vantage];
    path.extend(as_path.iter().copied());
    let mut downhill_only = false;
    for w in path.windows(2) {
        match t.relationship(w[0], w[1]) {
            Some(PeerKind::Provider) | Some(PeerKind::Peer) => {
                if downhill_only {
                    return false;
                }
                if t.relationship(w[0], w[1]) == Some(PeerKind::Peer) {
                    downhill_only = true;
                }
            }
            Some(PeerKind::Customer) => downhill_only = true,
            None => return false, // consecutive ASes must be neighbors
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every converged route has a loop-free, valley-free AS path whose
    /// origin matches the destination prefix.
    #[test]
    fn routes_are_policy_safe(seed in 0u64..3000) {
        let w = converge_world(seed);
        let t = &w.topology;
        for router in t.routers() {
            for (prefix, route) in w.bgp.loc_rib(router.id) {
                // No loops.
                let mut seen = BTreeSet::new();
                prop_assert!(route.as_path.iter().all(|a| seen.insert(*a)));
                prop_assert!(!route.as_path.contains(&router.as_id));
                // Valley-free from this AS.
                prop_assert!(
                    valley_free(t, router.as_id, &route.as_path),
                    "valley: {:?} via {:?}",
                    router.as_id,
                    route.as_path
                );
                // The origin AS owns the prefix.
                let origin = route.as_path.last().copied().unwrap_or(router.as_id);
                prop_assert_eq!(t.as_node(origin).prefix, prefix);
            }
        }
    }

    /// Full reachability: customer trees hang off peered cores, so every
    /// router reaches every AS prefix in the healthy network.
    #[test]
    fn healthy_full_reachability(seed in 0u64..3000) {
        let w = converge_world(seed);
        let t = &w.topology;
        for router in t.routers() {
            for asn in t.ases() {
                if asn.id == router.as_id {
                    continue;
                }
                prop_assert!(
                    w.bgp.best_route(router.id, &asn.prefix).is_some(),
                    "{} cannot reach {:?}",
                    router.id,
                    asn.id
                );
            }
        }
    }

    /// Two independent convergences of the same world agree exactly.
    #[test]
    fn convergence_deterministic(seed in 0u64..1000) {
        let a = converge_world(seed);
        let b = converge_world(seed);
        for router in a.topology.routers() {
            let ra: Vec<_> = a.bgp.loc_rib(router.id).map(|(p, r)| (p, r.clone())).collect();
            let rb: Vec<_> = b.bgp.loc_rib(router.id).map(|(p, r)| (p, r.clone())).collect();
            prop_assert_eq!(ra, rb);
        }
    }

    /// After any single link failure the network reconverges to a state
    /// that is again policy-safe, and routes never traverse the dead link.
    #[test]
    fn reconvergence_policy_safe(seed in 0u64..1000, fail in 0usize..200) {
        let mut w = converge_world(seed);
        let link = LinkId((fail % w.topology.link_count()) as u32);
        w.links.set_down(link);
        let l = w.topology.link(link);
        let as_a = w.topology.as_of_router(l.a);
        if as_a == w.topology.as_of_router(l.b) {
            w.igp.recompute_as(&w.topology, as_a, &w.links);
        }
        let ctx = Ctx { topology: &w.topology, igp: &w.igp, links: &w.links };
        w.bgp.handle_link_down(ctx, link);
        w.bgp.run(ctx);

        for router in w.topology.routers() {
            for (_, route) in w.bgp.loc_rib(router.id) {
                prop_assert!(valley_free(&w.topology, router.as_id, &route.as_path));
                if let Some(el) = route.ebgp_link {
                    prop_assert!(w.links.is_up(el), "route uses the dead link");
                }
                if !route.ebgp_learned && route.egress != router.id {
                    // iBGP routes must still have a live IGP path to the
                    // egress.
                    prop_assert!(
                        w.igp.of(router.as_id).reachable(router.id, route.egress)
                    );
                }
            }
        }
    }
}
