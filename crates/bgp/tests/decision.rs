//! Decision-process tests: each rung of the BGP preference ladder is
//! exercised in isolation on purpose-built topologies.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::sync::Arc;

use netdiag_bgp::{Bgp, Ctx, RouteSource};
use netdiag_igp::{Igp, LinkState};
use netdiag_topology::{
    AsId, AsKind, LinkRelationship, Prefix, RouterId, Topology, TopologyBuilder,
};

fn converge(topology: &Arc<Topology>) -> (LinkState, Igp, Bgp) {
    let links = LinkState::all_up(topology);
    let igp = Igp::compute(topology, &links);
    let mut bgp = Bgp::new(topology);
    let ctx = Ctx {
        topology,
        igp: &igp,
        links: &links,
    };
    bgp.originate_all(ctx);
    bgp.run(ctx);
    (links, igp, bgp)
}

fn dst_prefix(t: &Topology, a: AsId) -> Prefix {
    t.as_node(a).prefix
}

/// Rung 1 — local preference: a customer route beats a shorter peer (or
/// provider) route.
#[test]
fn customer_route_beats_shorter_peer_route() {
    // X has: customer path X<-C1<-C2<-D (long, via customers) and a direct
    // peer P who also reaches D as P<-D (short).
    //
    //   X --peer-- P --prov--> D
    //   X --prov-> C1 --prov-> C2 --prov-> D2? — build D reachable both ways:
    // Simpler: D is customer of both P and C2; C2 customer of C1; C1
    // customer of X. X hears D via P (path [P, D]) and via C1
    // ([C1, C2, D]). Customer route must win despite being longer.
    let mut b = TopologyBuilder::new();
    let x = b.add_as(AsKind::Core, "X");
    let p = b.add_as(AsKind::Core, "P");
    let c1 = b.add_as(AsKind::Tier2, "C1");
    let c2 = b.add_as(AsKind::Tier2, "C2");
    let d = b.add_as(AsKind::Stub, "D");
    let xr = b.add_router(x, "xr");
    let pr = b.add_router(p, "pr");
    let c1r = b.add_router(c1, "c1r");
    let c2r = b.add_router(c2, "c2r");
    let dr = b.add_router(d, "dr");
    b.add_inter_link(xr, pr, LinkRelationship::PeerPeer);
    b.add_inter_link(xr, c1r, LinkRelationship::ProviderCustomer);
    b.add_inter_link(c1r, c2r, LinkRelationship::ProviderCustomer);
    b.add_inter_link(pr, dr, LinkRelationship::ProviderCustomer);
    b.add_inter_link(c2r, dr, LinkRelationship::ProviderCustomer);
    let t = Arc::new(b.build().unwrap());
    let (_, _, bgp) = converge(&t);
    let route = bgp.best_route(xr, &dst_prefix(&t, d)).unwrap();
    assert_eq!(
        route.as_path.to_vec(),
        vec![c1, c2, d],
        "longer customer route must beat shorter peer route"
    );
    assert_eq!(
        route.source,
        RouteSource::External(netdiag_topology::PeerKind::Customer)
    );
}

/// Rung 2 — AS-path length: among equal-preference routes the shorter
/// path wins.
#[test]
fn shorter_as_path_wins_among_equals() {
    // D is X's customer twice over: directly, and via intermediate C.
    let mut b = TopologyBuilder::new();
    let x = b.add_as(AsKind::Core, "X");
    let c = b.add_as(AsKind::Tier2, "C");
    let d = b.add_as(AsKind::Stub, "D");
    let x1 = b.add_router(x, "x1");
    let x2 = b.add_router(x, "x2");
    b.add_intra_link(x1, x2, 1);
    let cr = b.add_router(c, "cr");
    let dr = b.add_router(d, "dr");
    b.add_inter_link(x1, cr, LinkRelationship::ProviderCustomer);
    b.add_inter_link(cr, dr, LinkRelationship::ProviderCustomer);
    b.add_inter_link(x2, dr, LinkRelationship::ProviderCustomer);
    let t = Arc::new(b.build().unwrap());
    let (_, _, bgp) = converge(&t);
    for r in [x1, x2] {
        let route = bgp.best_route(r, &dst_prefix(&t, d)).unwrap();
        assert_eq!(
            route.as_path.to_vec(),
            vec![d],
            "direct path is shorter at {r}"
        );
    }
}

/// Rung 3 — eBGP over iBGP: a border router prefers its own exit over a
/// peer's equally good one.
#[test]
fn ebgp_beats_ibgp() {
    // X has two borders x1, x2, both with a direct customer link to D.
    let mut b = TopologyBuilder::new();
    let x = b.add_as(AsKind::Core, "X");
    let d = b.add_as(AsKind::Stub, "D");
    let x1 = b.add_router(x, "x1");
    let x2 = b.add_router(x, "x2");
    b.add_intra_link(x1, x2, 1);
    let d1 = b.add_router(d, "d1");
    let d2 = b.add_router(d, "d2");
    b.add_intra_link(d1, d2, 1);
    b.add_inter_link(x1, d1, LinkRelationship::ProviderCustomer);
    b.add_inter_link(x2, d2, LinkRelationship::ProviderCustomer);
    let t = Arc::new(b.build().unwrap());
    let (_, _, bgp) = converge(&t);
    for r in [x1, x2] {
        let route = bgp.best_route(r, &dst_prefix(&t, d)).unwrap();
        assert!(route.ebgp_learned, "{r} must use its own exit");
        assert_eq!(route.egress, r);
    }
}

/// Rung 4 — hot potato: an interior router with no exit of its own picks
/// the IGP-closest egress.
#[test]
fn hot_potato_picks_closest_egress() {
    let mut b = TopologyBuilder::new();
    let x = b.add_as(AsKind::Core, "X");
    let d = b.add_as(AsKind::Stub, "D");
    // Interior m: 1 hop from x1, 10 from x2.
    let x1 = b.add_router(x, "x1");
    let x2 = b.add_router(x, "x2");
    let m = b.add_router(x, "m");
    b.add_intra_link(m, x1, 1);
    b.add_intra_link(m, x2, 10);
    b.add_intra_link(x1, x2, 20);
    let d1 = b.add_router(d, "d1");
    let d2 = b.add_router(d, "d2");
    b.add_intra_link(d1, d2, 1);
    b.add_inter_link(x1, d1, LinkRelationship::ProviderCustomer);
    b.add_inter_link(x2, d2, LinkRelationship::ProviderCustomer);
    let t = Arc::new(b.build().unwrap());
    let (_, _, bgp) = converge(&t);
    let route = bgp.best_route(m, &dst_prefix(&t, d)).unwrap();
    assert_eq!(route.egress, x1, "m is IGP-closer to x1");
    assert!(!route.ebgp_learned);
}

/// Rung 5 — deterministic tie-break: all else equal, the lowest neighbor
/// router id wins, and repeated convergence agrees.
#[test]
fn final_tie_break_is_deterministic() {
    // Interior m equidistant from both egresses.
    let mut b = TopologyBuilder::new();
    let x = b.add_as(AsKind::Core, "X");
    let d = b.add_as(AsKind::Stub, "D");
    let x1 = b.add_router(x, "x1");
    let x2 = b.add_router(x, "x2");
    let m = b.add_router(x, "m");
    b.add_intra_link(m, x1, 5);
    b.add_intra_link(m, x2, 5);
    b.add_intra_link(x1, x2, 5);
    let d1 = b.add_router(d, "d1");
    let d2 = b.add_router(d, "d2");
    b.add_intra_link(d1, d2, 1);
    b.add_inter_link(x1, d1, LinkRelationship::ProviderCustomer);
    b.add_inter_link(x2, d2, LinkRelationship::ProviderCustomer);
    let t = Arc::new(b.build().unwrap());
    let (_, _, bgp1) = converge(&t);
    let (_, _, bgp2) = converge(&t);
    let r1 = bgp1.best_route(m, &dst_prefix(&t, d)).unwrap();
    let r2 = bgp2.best_route(m, &dst_prefix(&t, d)).unwrap();
    assert_eq!(r1, r2);
    // Lowest neighbor router id: x1 < x2.
    assert_eq!(r1.egress, x1);
}

/// Withdrawing the best route falls back to the next-best, not to nothing.
#[test]
fn withdrawal_falls_back_to_next_best() {
    let mut b = TopologyBuilder::new();
    let x = b.add_as(AsKind::Core, "X");
    let p = b.add_as(AsKind::Core, "P");
    let d = b.add_as(AsKind::Stub, "D");
    let xr = b.add_router(x, "xr");
    let pr = b.add_router(p, "pr");
    let dr = b.add_router(d, "dr");
    b.add_inter_link(xr, pr, LinkRelationship::PeerPeer);
    b.add_inter_link(xr, dr, LinkRelationship::ProviderCustomer);
    b.add_inter_link(pr, dr, LinkRelationship::ProviderCustomer);
    let t = Arc::new(b.build().unwrap());
    let (mut links, igp, mut bgp) = converge(&t);
    let prefix = dst_prefix(&t, d);
    assert_eq!(
        bgp.best_route(xr, &prefix).unwrap().as_path.to_vec(),
        vec![d]
    );

    // Fail X's direct customer link; X falls back to the peer route.
    let l = t.link_between(xr, dr).unwrap();
    links.set_down(l);
    let ctx = Ctx {
        topology: &t,
        igp: &igp,
        links: &links,
    };
    bgp.handle_link_down(ctx, l);
    bgp.run(ctx);
    let fallback = bgp.best_route(xr, &prefix).unwrap();
    assert_eq!(fallback.as_path.to_vec(), vec![p, d]);
    let _ = RouterId(0);
}
