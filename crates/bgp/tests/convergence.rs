//! End-to-end convergence tests for the BGP engine on small hand-built
//! topologies: policy correctness, failover, withdrawals, misconfigurations.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use netdiag_bgp::{Bgp, Ctx, ExportDeny, ObservedKind};
use netdiag_igp::{Igp, LinkState};
use netdiag_topology::{AsId, AsKind, LinkRelationship, RouterId, Topology, TopologyBuilder};

/// Full simulator bundle for tests.
struct Net {
    topology: Topology,
    links: LinkState,
    igp: Igp,
    bgp: Bgp,
}

impl Net {
    fn converge(topology: Topology) -> Net {
        let links = LinkState::all_up(&topology);
        let igp = Igp::compute(&topology, &links);
        let mut bgp = Bgp::new(&topology);
        let ctx = Ctx {
            topology: &topology,
            igp: &igp,
            links: &links,
        };
        bgp.originate_all(ctx);
        bgp.run(ctx);
        Net {
            topology,
            links,
            igp,
            bgp,
        }
    }

    /// Fails a link: updates link state, IGP, and reconverges BGP.
    fn fail_link(&mut self, a: RouterId, b: RouterId) {
        let l = self.topology.link_between(a, b).expect("link exists");
        self.links.set_down(l);
        let as_a = self.topology.as_of_router(a);
        let as_b = self.topology.as_of_router(b);
        if as_a == as_b {
            self.igp.recompute_as(&self.topology, as_a, &self.links);
        }
        let ctx = Ctx {
            topology: &self.topology,
            igp: &self.igp,
            links: &self.links,
        };
        self.bgp.handle_link_down(ctx, l);
        self.bgp.run(ctx);
    }

    fn as_path(&self, r: RouterId, dst_as: AsId) -> Option<Vec<AsId>> {
        let prefix = self.topology.as_node(dst_as).prefix;
        self.bgp
            .best_route(r, &prefix)
            .map(|rt| rt.as_path.to_vec())
    }
}

/// chain: AS-A (a1) -- AS-B (b1) -- AS-C (c1), B customer of A and of C.
/// A and C must NOT reach each other through their shared customer B.
fn valley_topology() -> (Topology, [RouterId; 3]) {
    let mut b = TopologyBuilder::new();
    let a = b.add_as(AsKind::Core, "A");
    let bb = b.add_as(AsKind::Tier2, "B");
    let c = b.add_as(AsKind::Core, "C");
    let a1 = b.add_router(a, "a1");
    let b1 = b.add_router(bb, "b1");
    let c1 = b.add_router(c, "c1");
    b.add_inter_link(a1, b1, LinkRelationship::ProviderCustomer);
    b.add_inter_link(c1, b1, LinkRelationship::ProviderCustomer);
    (b.build().unwrap(), [a1, b1, c1])
}

#[test]
fn customer_and_provider_learn_each_other() {
    let (t, [a1, b1, _]) = valley_topology();
    let net = Net::converge(t);
    // B reaches A's prefix with path [A]; A reaches B with [B].
    assert_eq!(net.as_path(b1, AsId(0)), Some(vec![AsId(0)]));
    assert_eq!(net.as_path(a1, AsId(1)), Some(vec![AsId(1)]));
}

#[test]
fn no_valley_through_shared_customer() {
    let (t, [a1, _, c1]) = valley_topology();
    let net = Net::converge(t);
    // The only physical path A-B-C is a valley; Gao-Rexford forbids it.
    assert_eq!(net.as_path(a1, AsId(2)), None);
    assert_eq!(net.as_path(c1, AsId(0)), None);
}

/// Two stubs under two peered cores: reachability crosses the peering link.
fn peering_topology() -> (Topology, [RouterId; 4]) {
    let mut b = TopologyBuilder::new();
    let core1 = b.add_as(AsKind::Core, "C1");
    let core2 = b.add_as(AsKind::Core, "C2");
    let s1 = b.add_as(AsKind::Stub, "S1");
    let s2 = b.add_as(AsKind::Stub, "S2");
    let x1 = b.add_router(core1, "x1");
    let y1 = b.add_router(core2, "y1");
    let sr1 = b.add_router(s1, "sr1");
    let sr2 = b.add_router(s2, "sr2");
    b.add_inter_link(x1, y1, LinkRelationship::PeerPeer);
    b.add_inter_link(x1, sr1, LinkRelationship::ProviderCustomer);
    b.add_inter_link(y1, sr2, LinkRelationship::ProviderCustomer);
    (b.build().unwrap(), [x1, y1, sr1, sr2])
}

#[test]
fn stubs_reach_across_peering() {
    let (t, [x1, _, sr1, sr2]) = peering_topology();
    let net = Net::converge(t);
    // sr1 -> S2: path S1's provider chain [C1, C2, S2].
    assert_eq!(
        net.as_path(sr1, AsId(3)),
        Some(vec![AsId(0), AsId(1), AsId(3)])
    );
    assert_eq!(
        net.as_path(sr2, AsId(2)),
        Some(vec![AsId(1), AsId(0), AsId(2)])
    );
    // A core does not give its peer transit to the other peer's customers...
    // but it does export its own customers to the peer:
    assert_eq!(net.as_path(x1, AsId(3)), Some(vec![AsId(1), AsId(3)]));
}

/// Multihomed stub: S attached to providers P1 and P2, both attached to core.
fn multihomed_topology() -> (Topology, [RouterId; 5]) {
    let mut b = TopologyBuilder::new();
    let core = b.add_as(AsKind::Core, "Core");
    let p1 = b.add_as(AsKind::Tier2, "P1");
    let p2 = b.add_as(AsKind::Tier2, "P2");
    let s = b.add_as(AsKind::Stub, "S");
    let c1 = b.add_router(core, "c1");
    let p1r = b.add_router(p1, "p1r");
    let p2r = b.add_router(p2, "p2r");
    let sr = b.add_router(s, "sr");
    let c2 = b.add_router(core, "c2");
    b.add_intra_link(c1, c2, 10);
    b.add_inter_link(c1, p1r, LinkRelationship::ProviderCustomer);
    b.add_inter_link(c2, p2r, LinkRelationship::ProviderCustomer);
    b.add_inter_link(p1r, sr, LinkRelationship::ProviderCustomer);
    b.add_inter_link(p2r, sr, LinkRelationship::ProviderCustomer);
    (b.build().unwrap(), [c1, p1r, p2r, sr, c2])
}

#[test]
fn multihomed_failover_reroutes() {
    let (t, [c1, p1r, _, sr, _]) = multihomed_topology();
    let mut net = Net::converge(t);
    // Core reaches S via one of the two providers (deterministic choice).
    let before = net.as_path(c1, AsId(3)).expect("reachable");
    assert_eq!(before.len(), 2);
    let via_p1 = before[0] == AsId(1);

    // Fail the link S uses; core must fail over to the other provider.
    if via_p1 {
        net.fail_link(p1r, sr);
    } else {
        net.fail_link(RouterId(2), sr); // p2r
    }
    let after = net.as_path(c1, AsId(3)).expect("still reachable");
    assert_eq!(after.len(), 2);
    assert_ne!(after[0], before[0], "failover must switch providers");
}

#[test]
fn single_homed_failure_withdraws_everywhere() {
    let (t, [c1, p1r, p2r, sr, _]) = multihomed_topology();
    let mut net = Net::converge(t);
    net.fail_link(p1r, sr);
    net.fail_link(p2r, sr);
    assert_eq!(
        net.as_path(c1, AsId(3)),
        None,
        "S unreachable after both uplinks die"
    );
    assert_eq!(net.as_path(sr, AsId(0)), None, "S lost all routes too");
}

#[test]
fn observer_sees_withdrawal() {
    let (t, [_, p1r, _, sr, _]) = multihomed_topology();
    let links = LinkState::all_up(&t);
    let igp = Igp::compute(&t, &links);
    let mut bgp = Bgp::new(&t);
    bgp.set_observer(AsId(0)); // the core is AS-X
    let ctx = Ctx {
        topology: &t,
        igp: &igp,
        links: &links,
    };
    bgp.originate_all(ctx);
    bgp.run(ctx);
    bgp.take_observed(); // discard the initial convergence chatter

    let mut net = Net {
        topology: t,
        links,
        igp,
        bgp,
    };
    net.fail_link(p1r, sr);
    let observed = net.bgp.take_observed();
    let s_prefix = net.topology.as_node(AsId(3)).prefix;
    // The core either saw an explicit withdrawal for S's prefix or an
    // implicit replacement (update) via the other provider.
    assert!(
        observed.iter().any(|m| m.prefix == s_prefix),
        "core observed no message about S's prefix: {observed:?}"
    );
}

#[test]
fn misconfiguration_blackholes_one_prefix_only() {
    let (t, [c1, p1r, p2r, sr, _]) = multihomed_topology();
    let mut net = Net::converge(t);

    // Make S single-homed through P1 first, so the filter is decisive.
    net.fail_link(p2r, sr);
    assert!(net.as_path(c1, AsId(3)).is_some());

    // P1's router stops announcing S's prefix to the core (export filter).
    let s_prefix = net.topology.as_node(AsId(3)).prefix;
    let rule = ExportDeny {
        at: p1r,
        peer: c1,
        prefix: s_prefix,
    };
    let ctx = Ctx {
        topology: &net.topology,
        igp: &net.igp,
        links: &net.links,
    };
    net.bgp.install_filter(ctx, rule);
    net.bgp.run(ctx);

    // Core lost S...
    assert_eq!(net.as_path(c1, AsId(3)), None);
    // ...but still has P1 itself, and P1 still has everything.
    assert!(net.as_path(c1, AsId(1)).is_some());
    assert!(net.as_path(p1r, AsId(3)).is_some());
    // S still reaches the core through P1 (filter was one prefix, one way).
    assert!(net.as_path(sr, AsId(0)).is_some());
}

#[test]
fn misconfiguration_observed_as_withdrawal() {
    let (t, [c1, p1r, p2r, sr, _]) = multihomed_topology();
    let links = LinkState::all_up(&t);
    let igp = Igp::compute(&t, &links);
    let mut bgp = Bgp::new(&t);
    bgp.set_observer(AsId(0));
    let ctx = Ctx {
        topology: &t,
        igp: &igp,
        links: &links,
    };
    bgp.originate_all(ctx);
    bgp.run(ctx);
    let mut net = Net {
        topology: t,
        links,
        igp,
        bgp,
    };
    net.fail_link(p2r, sr);
    net.bgp.take_observed();

    let s_prefix = net.topology.as_node(AsId(3)).prefix;
    let ctx = Ctx {
        topology: &net.topology,
        igp: &net.igp,
        links: &net.links,
    };
    net.bgp.install_filter(
        ctx,
        ExportDeny {
            at: p1r,
            peer: c1,
            prefix: s_prefix,
        },
    );
    net.bgp.run(ctx);
    let observed = net.bgp.take_observed();
    assert!(
        observed
            .iter()
            .any(|m| m.prefix == s_prefix && m.kind == ObservedKind::Withdraw && m.at == c1),
        "core should observe a withdrawal from the misconfigured neighbor: {observed:?}"
    );
}

#[test]
fn igp_partition_tears_down_ibgp() {
    // Core AS with two routers; cut the only intra link. Each half keeps
    // only what it learns over its own eBGP sessions.
    let (t, [c1, p1r, p2r, sr, c2]) = multihomed_topology();
    let mut net = Net::converge(t);
    // Before: c1 reaches P2 (via c2's eBGP session, over iBGP).
    assert!(net.as_path(c1, AsId(2)).is_some());
    net.fail_link(c1, c2);
    // After the partition c1 can only use its own eBGP session to P1.
    let path = net.as_path(c1, AsId(2));
    // P2 is still reachable via P1 -> S -> P2? No: S is a stub customer and
    // does not provide transit, so c1 must have lost P2 entirely.
    assert_eq!(path, None);
    // c1 still reaches P1 and S (through P1).
    assert!(net.as_path(c1, AsId(1)).is_some());
    assert!(net.as_path(c1, AsId(3)).is_some());
    // Unused bindings silence.
    let _ = (p1r, p2r, sr);
}

#[test]
fn deterministic_convergence() {
    let (t, _) = multihomed_topology();
    let net1 = Net::converge(t.clone());
    let net2 = Net::converge(t);
    for r in 0..net1.topology.router_count() {
        let r = RouterId(r as u32);
        let rib1: Vec<_> = net1.bgp.loc_rib(r).map(|(p, rt)| (p, rt.clone())).collect();
        let rib2: Vec<_> = net2.bgp.loc_rib(r).map(|(p, rt)| (p, rt.clone())).collect();
        assert_eq!(rib1, rib2);
    }
}

#[test]
fn lpm_lookup_matches_most_specific() {
    let (t, [c1, ..]) = multihomed_topology();
    let net = Net::converge(t);
    let s_prefix = net.topology.as_node(AsId(3)).prefix;
    let host = s_prefix.host(0x1234);
    let rt = net.bgp.lookup(c1, host).expect("covered by S's prefix");
    assert_eq!(rt.prefix, s_prefix);
    assert_eq!(
        net.bgp.lookup(c1, std::net::Ipv4Addr::new(192, 0, 2, 1)),
        None
    );
}

#[test]
fn originate_subset_matches_full_origination() {
    // Routing toward a prefix is unaffected by whether other prefixes are
    // originated (no aggregation/deflection cross-talk) — the property the
    // experiment harness relies on to originate only sensor prefixes.
    let (t, routers) = multihomed_topology();
    let full = Net::converge(t.clone());

    let links = LinkState::all_up(&t);
    let igp = Igp::compute(&t, &links);
    let mut bgp = Bgp::new(&t);
    let ctx = Ctx {
        topology: &t,
        igp: &igp,
        links: &links,
    };
    bgp.originate_as(ctx, AsId(3)); // only S's prefix
    bgp.run(ctx);

    let s_prefix = t.as_node(AsId(3)).prefix;
    for r in routers {
        assert_eq!(
            full.bgp.best_route(r, &s_prefix).map(|x| x.as_path),
            bgp.best_route(r, &s_prefix).map(|x| x.as_path),
            "paths toward S differ at {r}"
        );
    }
}

#[test]
fn link_repair_restores_routes() {
    let (t, [c1, p1r, p2r, sr, _]) = multihomed_topology();
    let mut net = Net::converge(t);
    // Kill both of S's uplinks: S vanishes everywhere.
    net.fail_link(p1r, sr);
    net.fail_link(p2r, sr);
    assert_eq!(net.as_path(c1, AsId(3)), None);

    // Repair one uplink: reachability returns via that provider.
    let l = net.topology.link_between(p1r, sr).unwrap();
    net.links.set_up(l);
    let ctx = Ctx {
        topology: &net.topology,
        igp: &net.igp,
        links: &net.links,
    };
    net.bgp.handle_link_up(ctx, l);
    net.bgp.run(ctx);
    assert_eq!(net.as_path(c1, AsId(3)), Some(vec![AsId(1), AsId(3)]));
    assert!(net.as_path(sr, AsId(0)).is_some(), "S sees the world again");
}

#[test]
fn fail_repair_roundtrip_restores_original_ribs() {
    let (t, [_, p1r, _, sr, _]) = multihomed_topology();
    let mut net = Net::converge(t.clone());
    let pristine: Vec<Vec<_>> = (0..t.router_count())
        .map(|r| {
            net.bgp
                .loc_rib(RouterId(r as u32))
                .map(|(p, rt)| (p, rt.clone()))
                .collect()
        })
        .collect();
    net.fail_link(p1r, sr);
    let l = net.topology.link_between(p1r, sr).unwrap();
    net.links.set_up(l);
    let ctx = Ctx {
        topology: &net.topology,
        igp: &net.igp,
        links: &net.links,
    };
    net.bgp.handle_link_up(ctx, l);
    net.bgp.run(ctx);
    for (r, pristine_rib) in pristine.iter().enumerate().take(t.router_count()) {
        let now: Vec<_> = net
            .bgp
            .loc_rib(RouterId(r as u32))
            .map(|(p, rt)| (p, rt.clone()))
            .collect();
        assert_eq!(&now, pristine_rib, "RIB of r{r} differs after flap");
    }
}

#[test]
fn intra_partition_heal_restores_routes() {
    let (t, [c1, _, _, _, c2]) = multihomed_topology();
    let mut net = Net::converge(t);
    net.fail_link(c1, c2);
    assert_eq!(net.as_path(c1, AsId(2)), None, "partitioned");
    let l = net.topology.link_between(c1, c2).unwrap();
    net.links.set_up(l);
    net.igp.recompute_as(&net.topology, AsId(0), &net.links);
    let ctx = Ctx {
        topology: &net.topology,
        igp: &net.igp,
        links: &net.links,
    };
    net.bgp.handle_link_up(ctx, l);
    net.bgp.run(ctx);
    assert!(net.as_path(c1, AsId(2)).is_some(), "healed");
}

#[test]
fn removing_the_filter_heals_the_misconfiguration() {
    let (t, [c1, p1r, p2r, sr, _]) = multihomed_topology();
    let mut net = Net::converge(t);
    net.fail_link(p2r, sr); // single-home S through P1
    let s_prefix = net.topology.as_node(AsId(3)).prefix;
    let rule = ExportDeny {
        at: p1r,
        peer: c1,
        prefix: s_prefix,
    };
    let ctx = Ctx {
        topology: &net.topology,
        igp: &net.igp,
        links: &net.links,
    };
    net.bgp.install_filter(ctx, rule);
    net.bgp.run(ctx);
    assert_eq!(net.as_path(c1, AsId(3)), None, "misconfigured");

    // Fix it: the route comes back.
    assert!(net.bgp.remove_filter(ctx, &rule));
    net.bgp.run(ctx);
    assert_eq!(net.as_path(c1, AsId(3)), Some(vec![AsId(1), AsId(3)]));
    // Removing a non-installed rule reports false.
    assert!(!net.bgp.remove_filter(ctx, &rule) || net.bgp.filters().is_empty());
}
