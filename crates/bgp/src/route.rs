//! BGP route representation.

use std::fmt;
use std::ops::Deref;

use netdiag_topology::{AsId, LinkId, PeerKind, Prefix, RouterId};

use crate::session::SessionId;

/// An AS-level path stored inline, nearest neighbor first.
///
/// Valley-free (Gao-Rexford) routes over an internet-like hierarchy stay
/// far below [`AsPath::MAX`] hops, so the path lives in a fixed-size array
/// rather than an `Arc<[AsId]>`: cloning a route — which the message loop
/// and every copy-on-write RIB clone do constantly — becomes a plain
/// memcpy with no refcount traffic, and prepending on eBGP export
/// allocates nothing.
///
/// Equality and ordering-relevant reads go through [`Deref`] to
/// `[AsId]`, so only the first `len` slots ever participate; the unused
/// tail is zero-filled padding.
#[derive(Clone, Copy)]
pub struct AsPath {
    len: u8,
    ids: [AsId; AsPath::MAX],
}

impl AsPath {
    /// Inline capacity, comfortably above the AS-graph diameter.
    pub const MAX: usize = 16;

    /// The empty path (originated routes).
    pub const EMPTY: AsPath = AsPath {
        len: 0,
        ids: [AsId(0); AsPath::MAX],
    };

    /// The path with `head` prepended (eBGP export).
    ///
    /// Paths longer than [`AsPath::MAX`] cannot arise from valley-free
    /// routing at our scales; hitting the capacity means the topology
    /// generator or decision process is broken, so we stop hard.
    pub fn prepended(&self, head: AsId) -> AsPath {
        let len = self.len as usize;
        assert!(len < AsPath::MAX, "AS path exceeds inline capacity");
        let mut out = AsPath::EMPTY;
        out.len = self.len + 1;
        out.ids[0] = head;
        out.ids[1..=len].copy_from_slice(self.as_slice());
        out
    }

    /// The populated prefix of the path as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[AsId] {
        &self.ids[..self.len as usize]
    }
}

impl Deref for AsPath {
    type Target = [AsId];

    #[inline]
    fn deref(&self) -> &[AsId] {
        self.as_slice()
    }
}

impl PartialEq for AsPath {
    fn eq(&self, other: &AsPath) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for AsPath {}

impl std::hash::Hash for AsPath {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Must agree with `PartialEq`: only the populated slots hash, the
        // zero-filled tail stays out.
        self.as_slice().hash(state);
    }
}

impl Default for AsPath {
    fn default() -> Self {
        AsPath::EMPTY
    }
}

impl fmt::Debug for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<&[AsId]> for AsPath {
    fn from(ids: &[AsId]) -> Self {
        assert!(ids.len() <= AsPath::MAX, "AS path exceeds inline capacity");
        let mut out = AsPath::EMPTY;
        out.len = ids.len() as u8;
        out.ids[..ids.len()].copy_from_slice(ids);
        out
    }
}

impl From<Vec<AsId>> for AsPath {
    fn from(ids: Vec<AsId>) -> Self {
        AsPath::from(ids.as_slice())
    }
}

/// How a route entered the local AS.
///
/// This class travels with the route over iBGP so that border routers can
/// apply Gao-Rexford export rules ("was this learned from a customer?").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteSource {
    /// The local AS originates the prefix.
    Originated,
    /// Learned over eBGP from a neighbor with the given relationship
    /// (from the local AS's perspective).
    External(PeerKind),
}

impl RouteSource {
    /// May a route from this source be exported to a neighbor of kind
    /// `to`? (Gao-Rexford: customer routes and own prefixes go to everyone;
    /// peer/provider routes go only to customers.)
    pub fn exportable_to(self, to: PeerKind) -> bool {
        match self {
            RouteSource::Originated | RouteSource::External(PeerKind::Customer) => true,
            RouteSource::External(PeerKind::Peer) | RouteSource::External(PeerKind::Provider) => {
                to == PeerKind::Customer
            }
        }
    }
}

/// Local preference values assigned on eBGP import, by relationship.
pub fn local_pref_for(rel: PeerKind) -> u32 {
    match rel {
        PeerKind::Customer => 100,
        PeerKind::Peer => 90,
        PeerKind::Provider => 80,
    }
}

/// Local preference of an originated route (always wins).
pub const LOCAL_PREF_ORIGINATED: u32 = u32::MAX;

/// A BGP route as stored in a router's RIBs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Prefix,
    /// AS path; front = nearest neighbor AS, back = origin AS. Empty for
    /// routes originated by the local AS. Stored inline ([`AsPath`]) so
    /// route clone/drop is a memcpy and eBGP-export prepends allocate
    /// nothing.
    pub as_path: AsPath,
    /// Border router of the local AS where traffic exits. Equal to the
    /// storing router for eBGP-learned and originated routes.
    pub egress: RouterId,
    /// The inter-domain link traffic exits on (set only at the egress router
    /// itself, for eBGP-learned routes).
    pub ebgp_link: Option<LinkId>,
    /// Local preference (relationship-derived, or max for originated).
    pub local_pref: u32,
    /// How the route entered the local AS.
    pub source: RouteSource,
    /// Session and peer router this route was learned from (`None` for
    /// originated routes).
    pub learned_from: Option<(SessionId, RouterId)>,
    /// True when learned over eBGP at this router.
    pub ebgp_learned: bool,
}

impl Route {
    /// Creates a locally-originated route at border router `at`.
    pub fn originated(prefix: Prefix, at: RouterId) -> Self {
        Route {
            prefix,
            as_path: AsPath::EMPTY,
            egress: at,
            ebgp_link: None,
            local_pref: LOCAL_PREF_ORIGINATED,
            source: RouteSource::Originated,
            learned_from: None,
            ebgp_learned: false,
        }
    }

    /// True if `as_id` appears in the AS path (loop detection).
    pub fn path_contains(&self, as_id: AsId) -> bool {
        self.as_path.contains(&as_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn gao_rexford_export_matrix() {
        use PeerKind::*;
        use RouteSource::*;
        // (source, to, allowed)
        let cases = [
            (Originated, Customer, true),
            (Originated, Peer, true),
            (Originated, Provider, true),
            (External(Customer), Customer, true),
            (External(Customer), Peer, true),
            (External(Customer), Provider, true),
            (External(Peer), Customer, true),
            (External(Peer), Peer, false),
            (External(Peer), Provider, false),
            (External(Provider), Customer, true),
            (External(Provider), Peer, false),
            (External(Provider), Provider, false),
        ];
        for (src, to, want) in cases {
            assert_eq!(src.exportable_to(to), want, "{src:?} -> {to:?}");
        }
    }

    #[test]
    fn local_pref_ordering_prefers_customers() {
        assert!(local_pref_for(PeerKind::Customer) > local_pref_for(PeerKind::Peer));
        assert!(local_pref_for(PeerKind::Peer) > local_pref_for(PeerKind::Provider));
        assert!(LOCAL_PREF_ORIGINATED > local_pref_for(PeerKind::Customer));
    }

    #[test]
    fn as_path_inline_semantics() {
        let base = AsPath::from(vec![AsId(7), AsId(9)]);
        assert_eq!(base.len(), 2);
        assert_eq!(base.first(), Some(&AsId(7)));
        let longer = base.prepended(AsId(3));
        assert_eq!(&longer[..], &[AsId(3), AsId(7), AsId(9)]);
        // The zero-filled tail never leaks into equality.
        assert_eq!(AsPath::from(vec![AsId(3), AsId(7), AsId(9)]), longer);
        assert_ne!(base, longer);
        assert!(AsPath::EMPTY.is_empty());
        assert_eq!(format!("{longer:?}"), "[AS3, AS7, AS9]");
    }

    #[test]
    fn originated_route_shape() {
        let p = Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16);
        let r = Route::originated(p, RouterId(3));
        assert!(r.as_path.is_empty());
        assert_eq!(r.egress, RouterId(3));
        assert!(!r.ebgp_learned);
        assert!(!r.path_contains(AsId(0)));
    }
}
