//! The message-driven BGP convergence engine.
//!
//! Routers exchange `Update`/`Withdraw` messages over the session table;
//! messages are processed strictly FIFO, so every run is deterministic.
//! The engine supports incremental reconvergence after link failures and
//! export-filter (misconfiguration) changes, and can record every eBGP
//! message *received by one designated observer AS* — the control-plane feed
//! the paper's ND-bgpigp algorithm consumes.
//!
//! # Flat substrate
//!
//! All hot-path state is indexed by a dense *prefix id* (pid): the engine
//! interns every AS prefix into one sorted table at construction, so
//! per-router RIBs are flat arrays indexed by pid instead of sorted maps
//! keyed by [`Prefix`] (whose inserts memmove O(prefixes) entries). AS
//! paths are interned into a shared [`PathPool`] — messages and stored
//! routes carry a `u32` path id — and per-session policy inputs (AS
//! membership, business relationship) are precomputed once, so the
//! message loop performs no topology lookups and no allocation per
//! message. Public accessors still speak [`Prefix`] and [`Route`];
//! routes are materialized on demand.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::net::Ipv4Addr;
use std::sync::Arc;

use netdiag_igp::{Igp, LinkState, SpfDelta};
use netdiag_obs::{names, RecorderHandle};
use netdiag_topology::{AsId, LinkId, LinkKind, PeerKind, Prefix, RouterId, Topology};

use crate::policy::{ExportDeny, ExportFilters};
use crate::route::{local_pref_for, AsPath, Route, RouteSource, LOCAL_PREF_ORIGINATED};
use crate::session::{Session, SessionId, SessionKind, SessionTable};
use crate::vecmap::{VecMap, VecSet};

/// Read-only routing context threaded through engine operations.
#[derive(Clone, Copy)]
pub struct Ctx<'a> {
    /// The static topology.
    pub topology: &'a Topology,
    /// Converged IGP state (must reflect `links`).
    pub igp: &'a Igp,
    /// Current link up/down state.
    pub links: &'a LinkState,
}

/// Dense prefix id: index into the engine's sorted prefix table.
type Pid = u32;

/// Sentinel for "no link" in a stored route.
const NO_LINK: u32 = u32::MAX;
/// Sentinel for "no session" (locally originated) in a stored route.
const NO_SESSION: u32 = u32::MAX;
/// Path id of the empty AS path (always interned first).
const PATH_EMPTY: u32 = 0;

/// [`RouteSource`] packed into one byte for [`StoredRoute`].
const SRC_ORIGINATED: u8 = 0;
const SRC_CUSTOMER: u8 = 1;
const SRC_PEER: u8 = 2;
const SRC_PROVIDER: u8 = 3;

fn pack_source(s: RouteSource) -> u8 {
    match s {
        RouteSource::Originated => SRC_ORIGINATED,
        RouteSource::External(PeerKind::Customer) => SRC_CUSTOMER,
        RouteSource::External(PeerKind::Peer) => SRC_PEER,
        RouteSource::External(PeerKind::Provider) => SRC_PROVIDER,
    }
}

fn unpack_source(v: u8) -> RouteSource {
    match v {
        SRC_ORIGINATED => RouteSource::Originated,
        SRC_CUSTOMER => RouteSource::External(PeerKind::Customer),
        SRC_PEER => RouteSource::External(PeerKind::Peer),
        _ => RouteSource::External(PeerKind::Provider),
    }
}

/// Interned AS paths, shared by every router of an engine.
///
/// Append-only: path ids stay valid for the lifetime of the pool, so a
/// snapshot restored over a grown pool still resolves every id. Lives
/// behind an `Arc` with copy-on-write mutation, so engine clones share it
/// until one interns a path the pool has not seen.
#[derive(Clone, Debug)]
struct PathPool {
    /// Reverse index; point lookups only, never iterated.
    ids: HashMap<AsPath, u32>,
    paths: Vec<AsPath>,
}

impl PathPool {
    fn new() -> Self {
        let mut ids = HashMap::new();
        ids.insert(AsPath::EMPTY, PATH_EMPTY);
        PathPool {
            ids,
            paths: vec![AsPath::EMPTY],
        }
    }

    #[inline]
    fn get(&self, id: u32) -> &AsPath {
        &self.paths[id as usize]
    }
}

/// A route as stored in the flat RIBs: 24 bytes, every attribute either
/// inline or derivable (`learned_from` peer = the session's other
/// endpoint; the prefix = the pid of the slot it occupies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct StoredRoute {
    /// Interned AS path ([`PathPool`] id).
    path: u32,
    /// Border router of the local AS where traffic exits.
    egress: RouterId,
    /// Inter-domain exit link ([`NO_LINK`] unless eBGP-learned here).
    link: u32,
    /// Session the route was learned on ([`NO_SESSION`] = originated).
    session: u32,
    /// Relationship-derived local preference.
    local_pref: u32,
    /// Cached AS-path length (decision-process hot read).
    path_len: u8,
    /// Packed [`RouteSource`].
    source: u8,
    /// 1 when learned over eBGP at this router.
    ebgp: u8,
}

impl StoredRoute {
    /// A locally-originated route at border router `at`.
    fn originated(at: RouterId) -> Self {
        StoredRoute {
            path: PATH_EMPTY,
            egress: at,
            link: NO_LINK,
            session: NO_SESSION,
            local_pref: LOCAL_PREF_ORIGINATED,
            path_len: 0,
            source: SRC_ORIGINATED,
            ebgp: 0,
        }
    }
}

/// Routes received for one prefix at one router, keyed by session.
///
/// Valley-free exports mean a router hears a given prefix from only a
/// handful of neighbors, so two slots live inline and the rare overflow
/// spills to a boxed vector: the common path allocates nothing and the
/// cell stays 64 bytes.
#[derive(Clone, Debug)]
struct AdjCell {
    len: u32,
    inline: [StoredRoute; AdjCell::INLINE],
    // Box<Vec>, not Vec: an inline Vec is 24 bytes against the Box's 8,
    // and the pointer is only ever chased on the rare spilled cell.
    #[allow(clippy::box_collection)]
    spill: Option<Box<Vec<StoredRoute>>>,
}

impl Default for AdjCell {
    fn default() -> Self {
        AdjCell {
            len: 0,
            inline: [StoredRoute::originated(RouterId(0)); AdjCell::INLINE],
            spill: None,
        }
    }
}

impl AdjCell {
    const INLINE: usize = 2;

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn inline_len(&self) -> usize {
        (self.len as usize).min(Self::INLINE)
    }

    fn iter(&self) -> impl Iterator<Item = &StoredRoute> {
        self.inline[..self.inline_len()]
            .iter()
            .chain(self.spill.iter().flat_map(|s| s.iter()))
    }

    fn get(&self, session: u32) -> Option<&StoredRoute> {
        self.iter().find(|sr| sr.session == session)
    }

    /// Inserts or replaces the route learned on `sr.session`.
    fn upsert(&mut self, sr: StoredRoute) {
        let il = self.inline_len();
        if let Some(slot) = self.inline[..il]
            .iter_mut()
            .find(|e| e.session == sr.session)
        {
            *slot = sr;
            return;
        }
        if let Some(spill) = &mut self.spill {
            if let Some(slot) = spill.iter_mut().find(|e| e.session == sr.session) {
                *slot = sr;
                return;
            }
        }
        if il < Self::INLINE {
            self.inline[il] = sr;
        } else {
            self.spill.get_or_insert_with(Default::default).push(sr);
        }
        self.len += 1;
    }

    /// Removes the route learned on `session`; false when absent.
    fn remove(&mut self, session: u32) -> bool {
        let il = self.inline_len();
        if let Some(i) = self.inline[..il].iter().position(|e| e.session == session) {
            // Shift the inline tail left and refill the freed slot from
            // the spill, keeping the inline region packed.
            self.inline.copy_within(i + 1..il, i);
            if let Some(spill) = &mut self.spill {
                if !spill.is_empty() {
                    self.inline[Self::INLINE - 1] = spill.remove(0);
                }
                if spill.is_empty() {
                    self.spill = None;
                }
            }
            self.len -= 1;
            return true;
        }
        if let Some(spill) = &mut self.spill {
            if let Some(i) = spill.iter().position(|e| e.session == session) {
                spill.remove(i);
                if spill.is_empty() {
                    self.spill = None;
                }
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Rewrites every stored path id through `tr` (shard merge).
    fn map_paths(&mut self, tr: &dyn Fn(u32) -> u32) {
        let il = self.inline_len();
        for e in &mut self.inline[..il] {
            e.path = tr(e.path);
        }
        if let Some(spill) = &mut self.spill {
            for e in spill.iter_mut() {
                e.path = tr(e.path);
            }
        }
    }
}

/// A dense bitset over prefix ids with a maintained cardinality.
#[derive(Clone, Debug, Default)]
struct PidSet {
    words: Vec<u64>,
    count: u32,
}

impl PidSet {
    fn contains(&self, pid: Pid) -> bool {
        self.words
            .get((pid / 64) as usize)
            .is_some_and(|w| w & (1 << (pid % 64)) != 0)
    }

    fn insert(&mut self, pid: Pid) -> bool {
        let w = (pid / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (pid % 64);
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.count += 1;
        true
    }

    fn remove(&mut self, pid: Pid) -> bool {
        let w = (pid / 64) as usize;
        let bit = 1u64 << (pid % 64);
        if w >= self.words.len() || self.words[w] & bit == 0 {
            return false;
        }
        self.words[w] &= !bit;
        self.count -= 1;
        true
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Set bits in ascending pid order.
    fn iter(&self) -> impl Iterator<Item = Pid> + '_ {
        // Clearing the lowest set bit each step yields bits in ascending
        // order; zero never enters the sequence, so `b - 1` cannot
        // underflow.
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            std::iter::successors((bits != 0).then_some(bits), |&b| {
                let next = b & (b - 1);
                (next != 0).then_some(next)
            })
            .map(move |b| w as u32 * 64 + b.trailing_zeros())
        })
    }
}

/// Per-session policy inputs, precomputed at engine construction so the
/// import/export hot paths never consult the topology's relationship
/// table or router-to-AS mapping.
#[derive(Clone, Copy, Debug)]
struct SessMeta {
    /// AS of endpoint `a`.
    a_as: AsId,
    /// AS of endpoint `b`.
    b_as: AsId,
    /// eBGP only: relationship from `a`'s perspective.
    rel_at_a: PeerKind,
    /// eBGP only: relationship from `b`'s perspective.
    rel_at_b: PeerKind,
    /// True for eBGP sessions.
    ebgp: bool,
}

/// Route attributes carried in an `Update`, in interned form: the prefix
/// travels as a pid and the AS path (already prepended by the sender on
/// eBGP sessions) as a [`PathPool`] id, so forwarding a message is a
/// small fixed-size copy.
#[derive(Clone, Copy, Debug)]
struct RouteMsg {
    pid: Pid,
    path: u32,
    path_len: u8,
    /// iBGP-only: sender-assigned local preference.
    local_pref: u32,
    /// iBGP-only: the egress border router.
    egress: RouterId,
    /// iBGP-only: how the route entered the AS (packed).
    source: u8,
}

/// Message payload.
#[derive(Clone, Copy, Debug)]
enum Payload {
    /// Announce (or implicitly replace) a route.
    Update(RouteMsg),
    /// Withdraw the route for a prefix.
    Withdraw(Pid),
}

/// A queued BGP message.
#[derive(Clone, Copy, Debug)]
struct Msg {
    session: SessionId,
    from: RouterId,
    to: RouterId,
    payload: Payload,
}

/// Kind of an observed message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObservedKind {
    /// Route announcement (including implicit replacement).
    Update,
    /// Route withdrawal.
    Withdraw,
}

/// An eBGP message received by a router of the observer AS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObservedMsg {
    /// Receiving router (inside the observer AS).
    pub at: RouterId,
    /// External neighbor router that sent the message.
    pub from: RouterId,
    /// AS of the sender.
    pub from_as: AsId,
    /// Destination prefix the message concerns.
    pub prefix: Prefix,
    /// Update or withdraw.
    pub kind: ObservedKind,
    /// Monotonic sequence number (delivery order).
    pub seq: u64,
}

/// Per-router BGP state, flat over the dense prefix space.
///
/// `adj_in` and `loc_rib` are arrays indexed by pid — no sorted-map
/// memmove on insert, no allocation per message. The per-session tables
/// are bitsets over pids. The whole struct sits behind an `Arc` for
/// copy-on-write engine clones.
#[derive(Clone, Debug, Default)]
struct RouterState {
    /// Routes received per prefix (by pid), per session.
    adj_in: Vec<AdjCell>,
    /// Pids this router originates.
    originated: VecSet<Pid>,
    /// Best route per prefix (by pid).
    loc_rib: Vec<Option<StoredRoute>>,
    /// Pids currently advertised per session.
    adj_out: VecMap<SessionId, PidSet>,
    /// Replay index: the pids present in `adj_in` per session, so a
    /// session flush touches exactly its own prefixes instead of scanning
    /// the whole Adj-RIB-In. Entries are removed when they empty out.
    adj_in_by_session: VecMap<SessionId, PidSet>,
}

impl RouterState {
    fn sized(prefixes: usize) -> Self {
        RouterState {
            adj_in: vec![AdjCell::default(); prefixes],
            loc_rib: vec![None; prefixes],
            ..Default::default()
        }
    }
}

/// Statistics from a convergence run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Messages processed.
    pub messages: u64,
}

/// Base safety cap on processed messages per `run` (a correct
/// configuration converges far below this; hitting it indicates a policy
/// dispute loop). Scaled with topology size at engine construction.
const MAX_MESSAGES_PER_RUN: u64 = 200_000_000;

/// The BGP simulator for a whole topology.
///
/// Per-router state sits behind [`Arc`]s so a `Bgp` clone is O(#routers)
/// pointer bumps; mutation goes through [`Bgp::state_mut`], which clones a
/// router's RIBs only when they are still shared with another engine clone
/// (copy-on-write). The session table, prefix table and per-session policy
/// metadata are immutable after construction and shared outright; the
/// path pool is append-only and copy-on-write.
#[derive(Clone, Debug)]
pub struct Bgp {
    /// The session table (public for inspection; immutable after build).
    pub sessions: Arc<SessionTable>,
    /// Sorted prefix table; pid = index (immutable after build).
    prefixes: Arc<Vec<Prefix>>,
    /// Per-session policy inputs (immutable after build).
    sess_meta: Arc<Vec<SessMeta>>,
    /// Interned AS paths (append-only, copy-on-write).
    paths: Arc<PathPool>,
    routers: Vec<Arc<RouterState>>,
    filters: ExportFilters,
    queue: VecDeque<Msg>,
    observer: Option<AsId>,
    observed: Vec<ObservedMsg>,
    seq: u64,
    recorder: RecorderHandle,
    /// Cached `recorder.trace_enabled()` so the per-message event gate is
    /// one branch, not a virtual call (set in [`Bgp::set_recorder`]).
    trace_on: bool,
    /// Decision-process invocations since the last flush (batched so the
    /// hot path pays one integer add, not a virtual call).
    decisions: u64,
    /// Copy-on-write breaks since the last flush (batched like `decisions`).
    cow_breaks: u64,
    /// Prefixes visited by scoped replay since the last flush (batched).
    replay_prefixes: u64,
    /// Message cap for one `run`, scaled with topology size.
    msg_cap: u64,
    /// Cached per-session liveness (1 = up). `None` falls back to the
    /// ground-truth recomputation in [`SessionTable::is_up`]; when `Some`,
    /// the owner (the simulator layer) must keep it in sync with link and
    /// IGP state — a `debug_assert` cross-checks every read.
    live: Option<Vec<u8>>,
}

impl Bgp {
    /// Creates the engine with empty RIBs and no routes originated.
    pub fn new(topology: &Topology) -> Self {
        let sessions = Arc::new(SessionTable::build(topology));
        let mut prefixes: Vec<Prefix> = topology.ases().iter().map(|a| a.prefix).collect();
        prefixes.sort_unstable();
        prefixes.dedup();
        let n_prefixes = prefixes.len();
        let sess_meta: Vec<SessMeta> = sessions
            .sessions()
            .iter()
            .map(|s| {
                let a_as = topology.as_of_router(s.a);
                let b_as = topology.as_of_router(s.b);
                let (rel_at_a, rel_at_b, ebgp) = match s.kind {
                    SessionKind::Ebgp { .. } => (
                        topology
                            .relationship(a_as, b_as)
                            .expect("eBGP neighbors must have a relationship"),
                        topology
                            .relationship(b_as, a_as)
                            .expect("eBGP neighbors must have a relationship"),
                        true,
                    ),
                    // The relationship fields are never read on iBGP
                    // sessions; any value serves as the placeholder.
                    SessionKind::Ibgp => (PeerKind::Peer, PeerKind::Peer, false),
                };
                SessMeta {
                    a_as,
                    b_as,
                    rel_at_a,
                    rel_at_b,
                    ebgp,
                }
            })
            .collect();
        let msg_cap =
            MAX_MESSAGES_PER_RUN.max(sess_meta.len() as u64 * n_prefixes.max(1) as u64 * 64);
        Bgp {
            sessions,
            prefixes: Arc::new(prefixes),
            sess_meta: Arc::new(sess_meta),
            paths: Arc::new(PathPool::new()),
            routers: (0..topology.router_count())
                .map(|_| Arc::new(RouterState::sized(n_prefixes)))
                .collect(),
            filters: ExportFilters::new(),
            queue: VecDeque::new(),
            observer: None,
            observed: Vec::new(),
            seq: 0,
            recorder: RecorderHandle::noop(),
            trace_on: false,
            decisions: 0,
            cow_breaks: 0,
            replay_prefixes: 0,
            msg_cap,
            live: None,
        }
    }

    /// The pid of `prefix`, when it belongs to the engine's prefix space.
    #[inline]
    fn pid_of(&self, prefix: &Prefix) -> Option<Pid> {
        self.prefixes.binary_search(prefix).ok().map(|i| i as u32)
    }

    /// Interns `path`, returning its stable id. Breaks pool sharing only
    /// when the path is genuinely new to this engine.
    fn intern_path(&mut self, path: AsPath) -> u32 {
        if let Some(&id) = self.paths.ids.get(&path) {
            return id;
        }
        let pool = Arc::make_mut(&mut self.paths);
        let id = pool.paths.len() as u32;
        pool.ids.insert(path, id);
        pool.paths.push(path);
        id
    }

    /// Session liveness through the cache when present (one byte load on
    /// the hot path), falling back to the ground-truth recomputation.
    #[inline]
    fn sess_up(&self, ctx: Ctx<'_>, sid: SessionId) -> bool {
        match &self.live {
            Some(v) => {
                let up = v[sid.index()] != 0;
                debug_assert_eq!(
                    up,
                    self.sessions.is_up(sid, ctx.topology, ctx.igp, ctx.links),
                    "stale session-liveness cache for {sid:?}"
                );
                up
            }
            None => self.sessions.is_up(sid, ctx.topology, ctx.igp, ctx.links),
        }
    }

    /// (Re)builds the session-liveness cache from link and IGP state.
    pub fn recompute_liveness(&mut self, ctx: Ctx<'_>) {
        let v = (0..self.sessions.sessions().len())
            .map(|i| {
                u8::from(
                    self.sessions
                        .is_up(SessionId(i as u32), ctx.topology, ctx.igp, ctx.links),
                )
            })
            .collect();
        self.live = Some(v);
    }

    /// Drops the liveness cache; reads fall back to ground truth until
    /// [`Bgp::recompute_liveness`] runs again.
    pub fn invalidate_liveness(&mut self) {
        self.live = None;
    }

    /// True when the liveness cache is present.
    pub fn has_liveness(&self) -> bool {
        self.live.is_some()
    }

    /// Marks one session down in the liveness cache (no-op without a
    /// cache). Failures only ever *degrade* liveness, so the incremental
    /// failure path keeps the cache valid with point updates; repairs must
    /// rebuild it via [`Bgp::recompute_liveness`].
    pub fn set_session_down(&mut self, sid: SessionId) {
        if let Some(v) = &mut self.live {
            v[sid.index()] = 0;
        }
    }

    /// Marks the eBGP session riding each given link down in the cache.
    pub fn mark_links_down(&mut self, links: &[LinkId]) {
        for &l in links {
            if let Some(sid) = self.sessions.ebgp_on_link(l) {
                self.set_session_down(sid);
            }
        }
    }

    /// Marks the iBGP sessions of the given same-AS router pairs down in
    /// the cache (the pairs come from [`SpfDelta::lost_pairs`]).
    pub fn mark_pairs_down(&mut self, pairs: &[(RouterId, RouterId)]) {
        for &(a, b) in pairs {
            if let Some(sid) = self.sessions.ibgp_between(a, b) {
                self.set_session_down(sid);
            }
        }
    }

    /// Read access to a router's BGP state.
    fn state(&self, r: RouterId) -> &RouterState {
        &self.routers[r.index()]
    }

    /// Write access to a router's BGP state, cloning it first when it is
    /// still shared with another engine clone (copy-on-write break).
    fn state_mut(&mut self, r: RouterId) -> &mut RouterState {
        let arc = &mut self.routers[r.index()];
        if Arc::strong_count(arc) > 1 {
            self.cow_breaks += 1;
        }
        Arc::make_mut(arc)
    }

    /// Forces every router's state to be uniquely owned (a full deep copy),
    /// detaching this engine from any sharing. Used to benchmark the cost
    /// the CoW representation avoids.
    pub fn unshare_all(&mut self) {
        for r in &mut self.routers {
            Arc::make_mut(r);
        }
    }

    /// Designates the AS whose received eBGP messages are recorded.
    pub fn set_observer(&mut self, as_id: AsId) {
        self.observer = Some(as_id);
    }

    /// Routes `bgp.*` metrics to `recorder` (counters flush at the end of
    /// each [`Bgp::run`]).
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.trace_on = recorder.trace_enabled();
        self.recorder = recorder;
    }

    /// Drains the recorded observer messages.
    pub fn take_observed(&mut self) -> Vec<ObservedMsg> {
        std::mem::take(&mut self.observed)
    }

    /// Whether a sharded run would be observationally equivalent to the
    /// sequential one. The final RIBs always are (per-prefix
    /// independence), but the observer tap and the trace recorder expose
    /// the sequential delivery *order*, so sharding is gated off while
    /// either is attached.
    pub fn can_shard(&self) -> bool {
        self.observer.is_none() && !self.trace_on
    }

    /// Currently installed export filters.
    pub fn filters(&self) -> &ExportFilters {
        &self.filters
    }

    /// Originates `as_id`'s prefix at every border router of the AS (every
    /// router for single-router ASes). Queues the initial announcements;
    /// call [`Bgp::run`] afterwards.
    pub fn originate_as(&mut self, ctx: Ctx<'_>, as_id: AsId) {
        let asn = ctx.topology.as_node(as_id);
        let pid = self
            .pid_of(&asn.prefix)
            .expect("every AS prefix is interned at engine construction");
        let originators: Vec<RouterId> = asn
            .routers
            .iter()
            .copied()
            .filter(|&r| asn.routers.len() == 1 || ctx.topology.is_border_router(r))
            .collect();
        for r in originators {
            self.state_mut(r).originated.insert(pid);
            if self.decide(ctx, r, pid) {
                self.propagate(ctx, r, pid);
            }
        }
    }

    /// Originates every AS's prefix.
    pub fn originate_all(&mut self, ctx: Ctx<'_>) {
        for a in 0..ctx.topology.as_count() {
            self.originate_as(ctx, AsId(a as u32));
        }
    }

    /// Processes queued messages to quiescence.
    ///
    /// # Panics
    ///
    /// Panics if the safety cap is exceeded (policy dispute — cannot happen
    /// with the Gao-Rexford policies this workspace generates).
    pub fn run(&mut self, ctx: Ctx<'_>) -> RunStats {
        let mut stats = RunStats::default();
        while let Some(msg) = self.queue.pop_front() {
            stats.messages += 1;
            assert!(
                stats.messages <= self.msg_cap,
                "BGP did not converge: policy dispute?"
            );
            self.deliver(ctx, msg);
        }
        if self.recorder.enabled() {
            self.recorder.add(names::BGP_RUNS, 1);
            self.recorder.add(names::BGP_MSGS, stats.messages);
            self.recorder.add(names::BGP_DECISIONS, self.decisions);
            self.decisions = 0;
            if self.cow_breaks > 0 {
                self.recorder
                    .add(names::SIM_SNAPSHOT_COW_BREAKS, self.cow_breaks);
                self.cow_breaks = 0;
            }
            if self.replay_prefixes > 0 {
                self.recorder
                    .add(names::BGP_REPLAY_PREFIXES_SCOPED, self.replay_prefixes);
                self.replay_prefixes = 0;
            }
        }
        stats
    }

    /// [`Bgp::run`] with the message plane partitioned by prefix across
    /// `threads` workers. Callers must check [`Bgp::can_shard`] first.
    ///
    /// Routing toward one prefix never reads another prefix's state in
    /// this model, so the queued messages are split into contiguous pid
    /// ranges, each range converges in an independent copy-on-write fork
    /// of the engine, and the forks' pid columns are merged back (with
    /// path-pool translation) in shard order. The merged fixed point is
    /// byte-identical to the sequential run's — per-prefix state is
    /// disjoint, and each shard's FIFO order equals the sequential
    /// delivery order restricted to its own prefixes — and the total
    /// message count matches exactly.
    pub fn run_sharded(&mut self, ctx: Ctx<'_>, threads: usize) -> RunStats {
        assert!(self.can_shard(), "sharding is gated by Bgp::can_shard");
        let n_prefixes = self.prefixes.len();
        let threads = threads.clamp(1, n_prefixes.max(1));
        if threads <= 1 {
            return self.run(ctx);
        }
        // Contiguous pid ranges: shard k owns [bounds[k], bounds[k + 1]).
        let bounds: Vec<usize> = (0..=threads).map(|i| i * n_prefixes / threads).collect();
        let shard_of = |pid: Pid| bounds.partition_point(|&b| b <= pid as usize) - 1;
        let mut queues: Vec<VecDeque<Msg>> = vec![VecDeque::new(); threads];
        for msg in self.queue.drain(..) {
            let pid = match msg.payload {
                Payload::Update(rm) => rm.pid,
                Payload::Withdraw(pid) => pid,
            };
            queues[shard_of(pid)].push_back(msg);
        }
        let base_paths = self.paths.paths.len();
        // Pre-fork state pointers: a worker whose router Arc still matches
        // never wrote to that router, so there is nothing to merge from it
        // (comparing against `self`'s current Arcs would not work — merging
        // an earlier shard already replaces them).
        let base_arcs: Vec<*const RouterState> = self.routers.iter().map(Arc::as_ptr).collect();
        let mut workers: Vec<Bgp> = queues
            .into_iter()
            .map(|queue| {
                let mut w = self.clone();
                w.queue = queue;
                // Counters merge back explicitly below; workers must not
                // flush them to the shared recorder mid-run.
                w.recorder = RecorderHandle::noop();
                w.trace_on = false;
                w
            })
            .collect();
        let stats: Vec<RunStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .iter_mut()
                .map(|w| scope.spawn(move || w.run(ctx)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("BGP shard worker panicked"))
                .collect()
        });
        let mut total = RunStats::default();
        for (k, w) in workers.into_iter().enumerate() {
            total.messages += stats[k].messages;
            self.decisions += w.decisions;
            // Translate paths the worker interned after the fork point into
            // this engine's pool, in shard order (deterministic).
            let xlat: Vec<u32> = (base_paths..w.paths.paths.len())
                .map(|id| self.intern_path(w.paths.paths[id]))
                .collect();
            let tr = move |id: u32| {
                if (id as usize) < base_paths {
                    id
                } else {
                    xlat[id as usize - base_paths]
                }
            };
            let (lo, hi) = (bounds[k] as u32, bounds[k + 1] as u32);
            for (ri, arc) in w.routers.iter().enumerate() {
                if Arc::as_ptr(arc) == base_arcs[ri] {
                    continue;
                }
                let src = Arc::clone(arc);
                let dst = self.state_mut(RouterId(ri as u32));
                for pid in lo..hi {
                    let mut cell = src.adj_in[pid as usize].clone();
                    cell.map_paths(&tr);
                    dst.adj_in[pid as usize] = cell;
                    dst.loc_rib[pid as usize] = src.loc_rib[pid as usize].map(|mut sr| {
                        sr.path = tr(sr.path);
                        sr
                    });
                }
                merge_bit_range(&mut dst.adj_out, &src.adj_out, lo, hi, false);
                merge_bit_range(
                    &mut dst.adj_in_by_session,
                    &src.adj_in_by_session,
                    lo,
                    hi,
                    true,
                );
            }
        }
        if self.recorder.enabled() {
            self.recorder.add(names::BGP_RUNS, 1);
            self.recorder.add(names::BGP_MSGS, total.messages);
            self.recorder.add(names::BGP_DECISIONS, self.decisions);
            self.decisions = 0;
            if self.cow_breaks > 0 {
                self.recorder
                    .add(names::SIM_SNAPSHOT_COW_BREAKS, self.cow_breaks);
                self.cow_breaks = 0;
            }
        }
        total
    }

    /// Materializes a stored route into the public [`Route`] shape.
    fn materialize(&self, r: RouterId, pid: Pid, sr: StoredRoute) -> Route {
        Route {
            prefix: self.prefixes[pid as usize],
            as_path: *self.paths.get(sr.path),
            egress: sr.egress,
            ebgp_link: (sr.link != NO_LINK).then_some(LinkId(sr.link)),
            local_pref: sr.local_pref,
            source: unpack_source(sr.source),
            learned_from: (sr.session != NO_SESSION).then(|| {
                let sid = SessionId(sr.session);
                let peer = self
                    .sessions
                    .get(sid)
                    .other(r)
                    .expect("a stored session has the owning router as an endpoint");
                (sid, peer)
            }),
            ebgp_learned: sr.ebgp != 0,
        }
    }

    /// The best route of `r` for exactly `prefix`.
    pub fn best_route(&self, r: RouterId, prefix: &Prefix) -> Option<Route> {
        let pid = self.pid_of(prefix)?;
        self.state(r).loc_rib[pid as usize].map(|sr| self.materialize(r, pid, sr))
    }

    /// Longest-prefix-match lookup in `r`'s Loc-RIB.
    pub fn lookup(&self, r: RouterId, dst: Ipv4Addr) -> Option<Route> {
        let state = self.state(r);
        let mut best: Option<(Pid, StoredRoute)> = None;
        for (i, slot) in state.loc_rib.iter().enumerate() {
            let Some(sr) = slot else { continue };
            let p = self.prefixes[i];
            if !p.contains(dst) {
                continue;
            }
            // Distinct prefixes of equal length cannot both contain `dst`,
            // so `<=` never actually breaks a tie; it mirrors the old
            // last-max semantics all the same.
            if best.is_none_or(|(bp, _)| self.prefixes[bp as usize].len() <= p.len()) {
                best = Some((i as u32, *sr));
            }
        }
        best.map(|(pid, sr)| self.materialize(r, pid, sr))
    }

    /// Iterates over `r`'s Loc-RIB (prefix-ordered), materializing each
    /// route on demand.
    pub fn loc_rib(&self, r: RouterId) -> impl Iterator<Item = (Prefix, Route)> + '_ {
        let state = self.state(r);
        state
            .loc_rib
            .iter()
            .enumerate()
            .filter_map(move |(i, slot)| {
                slot.map(|sr| (self.prefixes[i], self.materialize(r, i as u32, sr)))
            })
    }

    /// Reacts to a link going down (the [`LinkState`] must already reflect
    /// it, and for intra-domain links the IGP must already be recomputed).
    ///
    /// * inter-domain link: tears down its eBGP session and flushes routes;
    /// * intra-domain link: revalidates the owning AS via
    ///   [`Bgp::refresh_as`].
    ///
    /// Queues reconvergence messages; call [`Bgp::run`] afterwards.
    pub fn handle_link_down(&mut self, ctx: Ctx<'_>, link: LinkId) {
        let l = ctx.topology.link(link);
        match l.kind {
            LinkKind::Inter => {
                if let Some(sid) = self.sessions.ebgp_on_link(link) {
                    self.set_session_down(sid);
                    self.flush_session(ctx, sid);
                }
            }
            LinkKind::Intra => {
                let as_id = ctx.topology.as_of_router(l.a);
                self.refresh_as(ctx, as_id);
            }
        }
    }

    /// Flushes the eBGP session riding a failed inter-domain link. The
    /// liveness cache must already mark the session down (see
    /// [`Bgp::mark_links_down`]); this only replays the affected prefixes.
    pub fn fail_ebgp_link(&mut self, ctx: Ctx<'_>, link: LinkId) {
        if let Some(sid) = self.sessions.ebgp_on_link(link) {
            self.flush_session(ctx, sid);
        }
    }

    /// Scoped variant of [`Bgp::refresh_as`] driven by a delta-SPF result:
    /// flushes exactly the iBGP sessions that just died
    /// ([`SpfDelta::lost_pairs`]) and replays the decision process only on
    /// routers whose IGP distance vector changed
    /// ([`SpfDelta::dirty_sources`]).
    ///
    /// Queues the exact same messages as a full `refresh_as`: a skipped
    /// router has an unchanged distance vector, unchanged session
    /// liveness and an untouched Adj-RIB-In, so every one of its
    /// re-decisions would return "no change" and enqueue nothing; flushes
    /// of long-dead sessions are no-ops because their state was already
    /// removed when they died. The liveness cache must already reflect
    /// the dead sessions (see [`Bgp::mark_pairs_down`]).
    pub fn refresh_as_scoped(&mut self, ctx: Ctx<'_>, delta: &SpfDelta) {
        let mut dead: Vec<SessionId> = delta
            .lost_pairs
            .iter()
            .filter_map(|&(a, b)| self.sessions.ibgp_between(a, b))
            .collect();
        dead.sort_unstable();
        for sid in dead {
            self.flush_session(ctx, sid);
        }
        for &r in &delta.dirty_sources {
            self.replay_router(ctx, r, true);
        }
    }

    /// Re-runs the decision process on every pid `r` currently holds state
    /// for (Adj-RIB-In or Loc-RIB), in ascending prefix order. A decision
    /// at one pid never touches another pid's state at `r`, so the lazy
    /// scan visits exactly the pids an up-front snapshot would.
    fn replay_router(&mut self, ctx: Ctx<'_>, r: RouterId, count_scoped: bool) {
        for pid in 0..self.prefixes.len() as Pid {
            {
                let state = self.state(r);
                if state.adj_in[pid as usize].is_empty() && state.loc_rib[pid as usize].is_none() {
                    continue;
                }
            }
            if count_scoped {
                self.replay_prefixes += 1;
            }
            if self.decide(ctx, r, pid) {
                self.propagate(ctx, r, pid);
            }
        }
    }

    /// Revalidates an AS after its IGP state changed: tears down
    /// newly-unreachable iBGP sessions and re-runs the decision process on
    /// every router of the AS (IGP distances participate in route choice).
    pub fn refresh_as(&mut self, ctx: Ctx<'_>, as_id: AsId) {
        // Tear down dead iBGP sessions.
        let dead: Vec<SessionId> = ctx
            .topology
            .as_node(as_id)
            .routers
            .iter()
            .flat_map(|&r| self.sessions.of_router(r).iter().copied())
            .filter(|&sid| {
                let s = self.sessions.get(sid);
                s.kind == SessionKind::Ibgp
                    && ctx.topology.as_of_router(s.a) == as_id
                    && !self.sessions.is_up(sid, ctx.topology, ctx.igp, ctx.links)
            })
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        for sid in dead {
            self.flush_session(ctx, sid);
        }
        // Re-decide everything in the AS: IGP distance changes can flip the
        // best route even when all sessions stay up.
        for &r in &ctx.topology.as_node(as_id).routers {
            self.replay_router(ctx, r, false);
        }
    }

    /// Reacts to a link coming back up (the [`LinkState`] must already
    /// reflect it, and for intra-domain links the IGP must already be
    /// recomputed). Re-advertises current routes over the re-established
    /// session(s); call [`Bgp::run`] afterwards.
    pub fn handle_link_up(&mut self, ctx: Ctx<'_>, link: LinkId) {
        let l = ctx.topology.link(link);
        match l.kind {
            LinkKind::Inter => {
                // The eBGP session is back: both ends resend their best
                // routes (a session reset triggers a full refresh).
                if self.trace_on {
                    self.recorder.event(names::EV_BGP_SESSION, || {
                        netdiag_obs::EventPayload::new()
                            .field("state", "up")
                            .field("kind", "ebgp")
                            .field("a", l.a.index())
                            .field("b", l.b.index())
                    });
                }
                for r in [l.a, l.b] {
                    self.readvertise_all(ctx, r);
                }
            }
            LinkKind::Intra => {
                // Healed partition: IGP distances changed and previously-
                // dead iBGP sessions are back; re-decide and resync every
                // router of the AS.
                let as_id = ctx.topology.as_of_router(l.a);
                self.refresh_as(ctx, as_id);
                for &r in &ctx.topology.as_node(as_id).routers {
                    self.readvertise_all(ctx, r);
                }
            }
        }
    }

    /// Resyncs every session's Adj-RIB-Out of `r` with its current best
    /// routes (sends updates over sessions that missed them).
    fn readvertise_all(&mut self, ctx: Ctx<'_>, r: RouterId) {
        for pid in 0..self.prefixes.len() as Pid {
            if self.state(r).loc_rib[pid as usize].is_some() {
                self.propagate(ctx, r, pid);
            }
        }
    }

    /// Installs an export deny rule (a router misconfiguration) and queues
    /// the resulting withdrawal. Call [`Bgp::run`] afterwards.
    pub fn install_filter(&mut self, ctx: Ctx<'_>, rule: ExportDeny) {
        self.filters.deny(rule);
        if let Some(pid) = self.pid_of(&rule.prefix) {
            self.propagate(ctx, rule.at, pid);
        }
    }

    /// Removes an export deny rule (the operator fixes the
    /// misconfiguration) and re-announces the suppressed route. Call
    /// [`Bgp::run`] afterwards. Returns false if the rule was not
    /// installed.
    pub fn remove_filter(&mut self, ctx: Ctx<'_>, rule: &ExportDeny) -> bool {
        if !self.filters.allow(rule) {
            return false;
        }
        if let Some(pid) = self.pid_of(&rule.prefix) {
            self.propagate(ctx, rule.at, pid);
        }
        true
    }

    /// Removes all adj-in/adj-out state of a dead session and reconverges
    /// the affected prefixes at both endpoints.
    fn flush_session(&mut self, ctx: Ctx<'_>, sid: SessionId) {
        let s = *self.sessions.get(sid);
        if self.trace_on {
            self.recorder.event(names::EV_BGP_SESSION, || {
                netdiag_obs::EventPayload::new()
                    .field("state", "down")
                    .field("kind", session_kind_str(s.kind))
                    .field("a", s.a.index())
                    .field("b", s.b.index())
            });
        }
        // Drop in-flight messages on the session (they would be discarded at
        // delivery anyway because the session is down).
        for r in [s.a, s.b] {
            // Read-only pre-check so routers untouched by the session don't
            // break copy-on-write sharing.
            let touched = {
                let state = self.state(r);
                state.adj_out.contains_key(&sid) || state.adj_in_by_session.contains_key(&sid)
            };
            if !touched {
                continue;
            }
            let state = self.state_mut(r);
            state.adj_out.remove(&sid);
            // The replay index hands us exactly the pids learned on this
            // session (prefix-ordered), replacing a full Adj-RIB-In scan.
            let affected: Vec<Pid> = match state.adj_in_by_session.remove(&sid) {
                Some(set) => set.iter().collect(),
                None => Vec::new(),
            };
            for &pid in &affected {
                state.adj_in[pid as usize].remove(sid.0);
            }
            self.replay_prefixes += affected.len() as u64;
            for pid in affected {
                if self.decide(ctx, r, pid) {
                    self.propagate(ctx, r, pid);
                }
            }
        }
    }

    /// Delivers one message.
    // hot
    fn deliver(&mut self, ctx: Ctx<'_>, msg: Msg) {
        if !self.sess_up(ctx, msg.session) {
            return; // lost with the session
        }
        let meta = self.sess_meta[msg.session.index()];
        // Observer tap: record eBGP messages arriving in the observer AS.
        if let Some(obs) = self.observer {
            if meta.ebgp {
                let s = self.sessions.get(msg.session);
                let (to_as, from_as) = if msg.to == s.a {
                    (meta.a_as, meta.b_as)
                } else {
                    (meta.b_as, meta.a_as)
                };
                if to_as == obs {
                    let (pid, kind) = match msg.payload {
                        Payload::Update(rm) => (rm.pid, ObservedKind::Update),
                        Payload::Withdraw(pid) => (pid, ObservedKind::Withdraw),
                    };
                    self.observed.push(ObservedMsg {
                        at: msg.to,
                        from: msg.from,
                        from_as,
                        prefix: self.prefixes[pid as usize],
                        kind,
                        seq: self.seq,
                    });
                    self.seq += 1;
                }
            }
        }
        if self.trace_on {
            self.recorder.event(names::EV_BGP_MESSAGE, || {
                let (msg_kind, pid) = match msg.payload {
                    Payload::Update(rm) => ("update", rm.pid),
                    Payload::Withdraw(pid) => ("withdraw", pid),
                };
                netdiag_obs::EventPayload::new()
                    .field("kind", msg_kind)
                    .field("session", if meta.ebgp { "ebgp" } else { "ibgp" })
                    .field("from", msg.from.index())
                    .field("to", msg.to.index())
                    .field("prefix", self.prefixes[pid as usize].to_string())
            });
        }

        let Msg {
            session,
            from: _,
            to,
            payload,
        } = msg;
        let pid = match payload {
            Payload::Update(rm) => {
                let pid = rm.pid;
                match self.import(to, session, meta, rm) {
                    Some(sr) => {
                        let state = self.state_mut(to);
                        state.adj_in[pid as usize].upsert(sr);
                        state
                            .adj_in_by_session
                            .entry_or_default(session)
                            .insert(pid);
                    }
                    None => {
                        // Loop-rejected update acts as a withdraw of any
                        // previous route on the session.
                        self.remove_adj_in(to, pid, session);
                    }
                }
                pid
            }
            Payload::Withdraw(pid) => {
                self.remove_adj_in(to, pid, session);
                pid
            }
        };
        if self.decide(ctx, to, pid) {
            self.propagate(ctx, to, pid);
        }
    }

    /// Drops the route learned for `pid` on `session` at `to`, if any,
    /// without breaking copy-on-write when there is nothing to drop.
    fn remove_adj_in(&mut self, to: RouterId, pid: Pid, session: SessionId) {
        let present = self.state(to).adj_in[pid as usize].get(session.0).is_some();
        if present {
            let state = self.state_mut(to);
            state.adj_in[pid as usize].remove(session.0);
            if let Some(set) = state.adj_in_by_session.get_mut(&session) {
                set.remove(pid);
                if set.is_empty() {
                    state.adj_in_by_session.remove(&session);
                }
            }
        }
    }

    /// Converts an incoming update into a stored route (import policy).
    /// Returns `None` when the route is loop-rejected.
    fn import(
        &self,
        to: RouterId,
        session: SessionId,
        meta: SessMeta,
        rm: RouteMsg,
    ) -> Option<StoredRoute> {
        let s = self.sessions.get(session);
        match s.kind {
            SessionKind::Ebgp { link } => {
                let (my_as, rel) = if to == s.a {
                    (meta.a_as, meta.rel_at_a)
                } else {
                    (meta.b_as, meta.rel_at_b)
                };
                if self.paths.get(rm.path).contains(&my_as) {
                    return None;
                }
                Some(StoredRoute {
                    path: rm.path,
                    egress: to,
                    link: link.0,
                    session: session.0,
                    local_pref: local_pref_for(rel),
                    path_len: rm.path_len,
                    source: pack_source(RouteSource::External(rel)),
                    ebgp: 1,
                })
            }
            SessionKind::Ibgp => Some(StoredRoute {
                path: rm.path,
                egress: rm.egress,
                link: NO_LINK,
                session: session.0,
                local_pref: rm.local_pref,
                path_len: rm.path_len,
                source: rm.source,
                ebgp: 0,
            }),
        }
    }

    /// Recomputes the best route of `r` for `pid`. Returns true when the
    /// Loc-RIB entry changed.
    // hot
    fn decide(&mut self, ctx: Ctx<'_>, r: RouterId, pid: Pid) -> bool {
        self.decisions += 1;
        let state = &self.routers[r.index()];
        let best: Option<StoredRoute> = if state.originated.contains(&pid) {
            Some(StoredRoute::originated(r))
        } else {
            let as_igp = ctx.igp.of(ctx.topology.as_of_router(r));
            state.adj_in[pid as usize]
                .iter()
                .filter(|sr| {
                    self.sess_up(ctx, SessionId(sr.session))
                        && (sr.ebgp != 0 || as_igp.reachable(r, sr.egress))
                })
                .max_by_key(|sr| {
                    let igp_dist = if sr.egress == r {
                        0
                    } else {
                        as_igp.dist(r, sr.egress).expect("filtered reachable")
                    };
                    let neighbor = self
                        .sessions
                        .get(SessionId(sr.session))
                        .other(r)
                        .expect("a stored session has the owning router as an endpoint")
                        .0;
                    (
                        sr.local_pref,
                        std::cmp::Reverse(sr.path_len),
                        sr.ebgp != 0,
                        std::cmp::Reverse(igp_dist),
                        std::cmp::Reverse(neighbor),
                        std::cmp::Reverse(sr.session),
                    )
                })
                .copied()
        };

        // Only take write access when the entry actually changes, so a
        // no-op re-decision (the common case in `refresh_as` and in
        // withdraw storms that leave the best route alone) keeps the
        // router's state shared.
        if self.routers[r.index()].loc_rib[pid as usize] == best {
            return false;
        }
        self.state_mut(r).loc_rib[pid as usize] = best;
        true
    }

    /// Synchronizes every session's Adj-RIB-Out with the current best route
    /// of `r` for `pid`, queueing updates/withdraws.
    // hot
    fn propagate(&mut self, ctx: Ctx<'_>, r: RouterId, pid: Pid) {
        let best: Option<StoredRoute> = self.state(r).loc_rib[pid as usize];
        let sessions = Arc::clone(&self.sessions);
        // The eBGP prepend is identical for every peer of `r`; intern it
        // once, lazily, per propagate.
        let mut prepended: Option<(u32, u8)> = None;
        for &sid in sessions.of_router(r) {
            if !self.sess_up(ctx, sid) {
                continue;
            }
            let session = *sessions.get(sid);
            let peer = session
                .other(r)
                .expect("sid comes from r's session table, so r is an endpoint");
            let advertise: Option<RouteMsg> = match best {
                Some(b) => self.export(r, peer, session, pid, b, &mut prepended),
                None => None,
            };
            let had = self
                .state(r)
                .adj_out
                .get(&sid)
                .is_some_and(|s| s.contains(pid));
            match advertise {
                Some(rm) => {
                    if !had {
                        self.state_mut(r).adj_out.entry_or_default(sid).insert(pid);
                    }
                    self.queue.push_back(Msg {
                        session: sid,
                        from: r,
                        to: peer,
                        payload: Payload::Update(rm),
                    });
                }
                None if had => {
                    self.state_mut(r)
                        .adj_out
                        .get_mut(&sid)
                        .expect("had implies entry")
                        .remove(pid);
                    self.queue.push_back(Msg {
                        session: sid,
                        from: r,
                        to: peer,
                        payload: Payload::Withdraw(pid),
                    });
                }
                None => {}
            }
        }
    }

    /// Export policy: what (if anything) `r` advertises for its best route
    /// `b` to `peer` over the given session. Takes `&mut self` to intern
    /// the prepended AS path (cached in `prepended` across one propagate).
    fn export(
        &mut self,
        r: RouterId,
        peer: RouterId,
        session: Session,
        pid: Pid,
        b: StoredRoute,
        prepended: &mut Option<(u32, u8)>,
    ) -> Option<RouteMsg> {
        let meta = self.sess_meta[session.id.index()];
        if !meta.ebgp {
            // Standard iBGP: only eBGP-learned and originated routes are
            // re-advertised internally (no reflection of iBGP routes).
            if !(b.ebgp != 0 || b.source == SRC_ORIGINATED) {
                return None;
            }
            return Some(RouteMsg {
                pid,
                path: b.path,
                path_len: b.path_len,
                local_pref: b.local_pref,
                egress: r,
                source: b.source,
            });
        }
        let (my_as, peer_as, rel) = if r == session.a {
            (meta.a_as, meta.b_as, meta.rel_at_a)
        } else {
            (meta.b_as, meta.a_as, meta.rel_at_b)
        };
        if !unpack_source(b.source).exportable_to(rel) {
            return None;
        }
        if self.paths.get(b.path).contains(&peer_as) {
            return None; // AS-level split horizon
        }
        if b.session == session.id.0 {
            return None; // never echo a route back on its session
        }
        if self.filters.is_denied(r, peer, self.prefixes[pid as usize]) {
            return None; // misconfiguration
        }
        let (path, path_len) = match *prepended {
            Some(v) => v,
            None => {
                let new_path = self.paths.get(b.path).prepended(my_as);
                let v = (self.intern_path(new_path), b.path_len + 1);
                *prepended = Some(v);
                v
            }
        };
        Some(RouteMsg {
            pid,
            path,
            path_len,
            local_pref: 0,
            egress: r,
            source: b.source,
        })
    }
}

/// Copies the `[lo, hi)` bit range of every per-session pid set in `src`
/// over the corresponding range in `dst` (shard merge: the worker only
/// ever modified bits inside its own range). When `prune_empty`, entries
/// left empty are removed — matching the sequential engine's maintenance
/// of `adj_in_by_session`, which never retains an empty entry.
fn merge_bit_range(
    dst: &mut VecMap<SessionId, PidSet>,
    src: &VecMap<SessionId, PidSet>,
    lo: Pid,
    hi: Pid,
    prune_empty: bool,
) {
    let mut emptied: Vec<SessionId> = Vec::new();
    for (&sid, set) in src.iter() {
        let d = dst.entry_or_default(sid);
        for pid in lo..hi {
            if set.contains(pid) {
                d.insert(pid);
            } else {
                d.remove(pid);
            }
        }
        if prune_empty && d.is_empty() {
            emptied.push(sid);
        }
    }
    // Sessions the worker dropped entirely (its range emptied out): clear
    // our copy of that range too.
    let gone: Vec<SessionId> = dst
        .keys()
        .filter(|sid| !src.contains_key(sid))
        .copied()
        .collect();
    for sid in gone {
        let d = dst.get_mut(&sid).expect("key collected from dst");
        for pid in lo..hi {
            d.remove(pid);
        }
        if prune_empty && d.is_empty() {
            emptied.push(sid);
        }
    }
    for sid in emptied {
        dst.remove(&sid);
    }
}

/// Stable session-kind label used in trace payloads.
fn session_kind_str(kind: SessionKind) -> &'static str {
    match kind {
        SessionKind::Ebgp { .. } => "ebgp",
        SessionKind::Ibgp => "ibgp",
    }
}
