//! The message-driven BGP convergence engine.
//!
//! Routers exchange `Update`/`Withdraw` messages over the session table;
//! messages are processed strictly FIFO, so every run is deterministic.
//! The engine supports incremental reconvergence after link failures and
//! export-filter (misconfiguration) changes, and can record every eBGP
//! message *received by one designated observer AS* — the control-plane feed
//! the paper's ND-bgpigp algorithm consumes.

use std::borrow::Cow;
use std::collections::{BTreeSet, VecDeque};
use std::net::Ipv4Addr;
use std::sync::Arc;

use netdiag_igp::{Igp, LinkState, SpfDelta};
use netdiag_obs::{names, RecorderHandle};
use netdiag_topology::{AsId, LinkId, LinkKind, Prefix, RouterId, Topology};

use crate::policy::{ExportDeny, ExportFilters};
use crate::route::{local_pref_for, AsPath, Route, RouteSource};
use crate::session::{SessionId, SessionKind, SessionTable};
use crate::vecmap::{VecMap, VecSet};

/// Read-only routing context threaded through engine operations.
#[derive(Clone, Copy)]
pub struct Ctx<'a> {
    /// The static topology.
    pub topology: &'a Topology,
    /// Converged IGP state (must reflect `links`).
    pub igp: &'a Igp,
    /// Current link up/down state.
    pub links: &'a LinkState,
}

/// Route attributes carried in an `Update`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteMsg {
    /// Destination prefix.
    pub prefix: Prefix,
    /// AS path (already prepended by the sender on eBGP sessions).
    /// Inline ([`AsPath`]): forwarding it is a memcpy, not a refcount.
    pub as_path: AsPath,
    /// iBGP-only: sender-assigned local preference.
    pub local_pref: u32,
    /// iBGP-only: the egress border router.
    pub egress: RouterId,
    /// iBGP-only: how the route entered the AS.
    pub source: RouteSource,
}

/// Message payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Announce (or implicitly replace) a route.
    Update(RouteMsg),
    /// Withdraw the route for a prefix.
    Withdraw(Prefix),
}

/// A queued BGP message.
#[derive(Clone, Debug)]
pub struct Msg {
    /// Session the message rides on.
    pub session: SessionId,
    /// Sending router.
    pub from: RouterId,
    /// Receiving router.
    pub to: RouterId,
    /// Update or withdraw.
    pub payload: Payload,
}

/// Kind of an observed message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObservedKind {
    /// Route announcement (including implicit replacement).
    Update,
    /// Route withdrawal.
    Withdraw,
}

/// An eBGP message received by a router of the observer AS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObservedMsg {
    /// Receiving router (inside the observer AS).
    pub at: RouterId,
    /// External neighbor router that sent the message.
    pub from: RouterId,
    /// AS of the sender.
    pub from_as: AsId,
    /// Destination prefix the message concerns.
    pub prefix: Prefix,
    /// Update or withdraw.
    pub kind: ObservedKind,
    /// Monotonic sequence number (delivery order).
    pub seq: u64,
}

/// Per-router BGP state.
///
/// All tables are sorted vectors ([`VecMap`]/[`VecSet`]), not `BTreeMap`s:
/// the failure/restore hot loop clones and drops one of these on every
/// copy-on-write break, and a handful of contiguous buffers copy an order
/// of magnitude faster than a forest of tree nodes. Iteration stays in
/// ascending key order, so message ordering is exactly what the
/// `BTreeMap` representation produced.
#[derive(Clone, Debug, Default)]
struct RouterState {
    /// Routes received per prefix, per session.
    adj_in: VecMap<Prefix, VecMap<SessionId, Route>>,
    /// Prefixes this router originates.
    originated: VecSet<Prefix>,
    /// Best route per prefix.
    loc_rib: VecMap<Prefix, Route>,
    /// Prefixes currently advertised per session.
    adj_out: VecMap<SessionId, VecSet<Prefix>>,
    /// Replay index: the prefixes present in `adj_in` per session, so a
    /// session flush touches exactly its own prefixes instead of scanning
    /// the whole Adj-RIB-In. Entries are removed when they empty out.
    adj_in_by_session: VecMap<SessionId, VecSet<Prefix>>,
}

/// Statistics from a convergence run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Messages processed.
    pub messages: u64,
}

/// Safety cap on processed messages per `run` (a correct configuration
/// converges far below this; hitting it indicates a policy dispute loop).
const MAX_MESSAGES_PER_RUN: u64 = 200_000_000;

/// The BGP simulator for a whole topology.
///
/// Per-router state sits behind [`Arc`]s so a `Bgp` clone is O(#routers)
/// pointer bumps; mutation goes through [`Bgp::state_mut`], which clones a
/// router's RIBs only when they are still shared with another engine clone
/// (copy-on-write). The session table is immutable after construction and
/// shared outright.
#[derive(Clone, Debug)]
pub struct Bgp {
    /// The session table (public for inspection; immutable after build).
    pub sessions: Arc<SessionTable>,
    routers: Vec<Arc<RouterState>>,
    filters: ExportFilters,
    queue: VecDeque<Msg>,
    observer: Option<AsId>,
    observed: Vec<ObservedMsg>,
    seq: u64,
    recorder: RecorderHandle,
    /// Cached `recorder.trace_enabled()` so the per-message event gate is
    /// one branch, not a virtual call (set in [`Bgp::set_recorder`]).
    trace_on: bool,
    /// Decision-process invocations since the last flush (batched so the
    /// hot path pays one integer add, not a virtual call).
    decisions: u64,
    /// Copy-on-write breaks since the last flush (batched like `decisions`).
    cow_breaks: u64,
    /// Prefixes visited by scoped replay since the last flush (batched).
    replay_prefixes: u64,
    /// Cached per-session liveness (1 = up). `None` falls back to the
    /// ground-truth recomputation in [`SessionTable::is_up`]; when `Some`,
    /// the owner (the simulator layer) must keep it in sync with link and
    /// IGP state — a `debug_assert` cross-checks every read.
    live: Option<Vec<u8>>,
}

impl Bgp {
    /// Creates the engine with empty RIBs and no routes originated.
    pub fn new(topology: &Topology) -> Self {
        Bgp {
            sessions: Arc::new(SessionTable::build(topology)),
            routers: (0..topology.router_count())
                .map(|_| Arc::new(RouterState::default()))
                .collect(),
            filters: ExportFilters::new(),
            queue: VecDeque::new(),
            observer: None,
            observed: Vec::new(),
            seq: 0,
            recorder: RecorderHandle::noop(),
            trace_on: false,
            decisions: 0,
            cow_breaks: 0,
            replay_prefixes: 0,
            live: None,
        }
    }

    /// Session liveness through the cache when present (one byte load on
    /// the hot path), falling back to the ground-truth recomputation.
    #[inline]
    fn sess_up(&self, ctx: Ctx<'_>, sid: SessionId) -> bool {
        match &self.live {
            Some(v) => {
                let up = v[sid.index()] != 0;
                debug_assert_eq!(
                    up,
                    self.sessions.is_up(sid, ctx.topology, ctx.igp, ctx.links),
                    "stale session-liveness cache for {sid:?}"
                );
                up
            }
            None => self.sessions.is_up(sid, ctx.topology, ctx.igp, ctx.links),
        }
    }

    /// (Re)builds the session-liveness cache from link and IGP state.
    pub fn recompute_liveness(&mut self, ctx: Ctx<'_>) {
        let v = (0..self.sessions.sessions().len())
            .map(|i| {
                u8::from(
                    self.sessions
                        .is_up(SessionId(i as u32), ctx.topology, ctx.igp, ctx.links),
                )
            })
            .collect();
        self.live = Some(v);
    }

    /// Drops the liveness cache; reads fall back to ground truth until
    /// [`Bgp::recompute_liveness`] runs again.
    pub fn invalidate_liveness(&mut self) {
        self.live = None;
    }

    /// True when the liveness cache is present.
    pub fn has_liveness(&self) -> bool {
        self.live.is_some()
    }

    /// Marks one session down in the liveness cache (no-op without a
    /// cache). Failures only ever *degrade* liveness, so the incremental
    /// failure path keeps the cache valid with point updates; repairs must
    /// rebuild it via [`Bgp::recompute_liveness`].
    pub fn set_session_down(&mut self, sid: SessionId) {
        if let Some(v) = &mut self.live {
            v[sid.index()] = 0;
        }
    }

    /// Marks the eBGP session riding each given link down in the cache.
    pub fn mark_links_down(&mut self, links: &[LinkId]) {
        for &l in links {
            if let Some(sid) = self.sessions.ebgp_on_link(l) {
                self.set_session_down(sid);
            }
        }
    }

    /// Marks the iBGP sessions of the given same-AS router pairs down in
    /// the cache (the pairs come from [`SpfDelta::lost_pairs`]).
    pub fn mark_pairs_down(&mut self, pairs: &[(RouterId, RouterId)]) {
        for &(a, b) in pairs {
            if let Some(sid) = self.sessions.ibgp_between(a, b) {
                self.set_session_down(sid);
            }
        }
    }

    /// Read access to a router's BGP state.
    fn state(&self, r: RouterId) -> &RouterState {
        &self.routers[r.index()]
    }

    /// Write access to a router's BGP state, cloning it first when it is
    /// still shared with another engine clone (copy-on-write break).
    fn state_mut(&mut self, r: RouterId) -> &mut RouterState {
        let arc = &mut self.routers[r.index()];
        if Arc::strong_count(arc) > 1 {
            self.cow_breaks += 1;
        }
        Arc::make_mut(arc)
    }

    /// Forces every router's state to be uniquely owned (a full deep copy),
    /// detaching this engine from any sharing. Used to benchmark the cost
    /// the CoW representation avoids.
    pub fn unshare_all(&mut self) {
        for r in &mut self.routers {
            Arc::make_mut(r);
        }
    }

    /// Designates the AS whose received eBGP messages are recorded.
    pub fn set_observer(&mut self, as_id: AsId) {
        self.observer = Some(as_id);
    }

    /// Routes `bgp.*` metrics to `recorder` (counters flush at the end of
    /// each [`Bgp::run`]).
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.trace_on = recorder.trace_enabled();
        self.recorder = recorder;
    }

    /// Drains the recorded observer messages.
    pub fn take_observed(&mut self) -> Vec<ObservedMsg> {
        std::mem::take(&mut self.observed)
    }

    /// Currently installed export filters.
    pub fn filters(&self) -> &ExportFilters {
        &self.filters
    }

    /// Originates `as_id`'s prefix at every border router of the AS (every
    /// router for single-router ASes). Queues the initial announcements;
    /// call [`Bgp::run`] afterwards.
    pub fn originate_as(&mut self, ctx: Ctx<'_>, as_id: AsId) {
        let asn = ctx.topology.as_node(as_id);
        let prefix = asn.prefix;
        let originators: Vec<RouterId> = asn
            .routers
            .iter()
            .copied()
            .filter(|&r| asn.routers.len() == 1 || ctx.topology.is_border_router(r))
            .collect();
        for r in originators {
            self.state_mut(r).originated.insert(prefix);
            if self.decide(ctx, r, prefix) {
                self.propagate(ctx, r, prefix);
            }
        }
    }

    /// Originates every AS's prefix.
    pub fn originate_all(&mut self, ctx: Ctx<'_>) {
        for a in 0..ctx.topology.as_count() {
            self.originate_as(ctx, AsId(a as u32));
        }
    }

    /// Processes queued messages to quiescence.
    ///
    /// # Panics
    ///
    /// Panics if the safety cap is exceeded (policy dispute — cannot happen
    /// with the Gao-Rexford policies this workspace generates).
    pub fn run(&mut self, ctx: Ctx<'_>) -> RunStats {
        let mut stats = RunStats::default();
        while let Some(msg) = self.queue.pop_front() {
            stats.messages += 1;
            assert!(
                stats.messages <= MAX_MESSAGES_PER_RUN,
                "BGP did not converge: policy dispute?"
            );
            self.deliver(ctx, msg);
        }
        if self.recorder.enabled() {
            self.recorder.add(names::BGP_RUNS, 1);
            self.recorder.add(names::BGP_MSGS, stats.messages);
            self.recorder.add(names::BGP_DECISIONS, self.decisions);
            self.decisions = 0;
            if self.cow_breaks > 0 {
                self.recorder
                    .add(names::SIM_SNAPSHOT_COW_BREAKS, self.cow_breaks);
                self.cow_breaks = 0;
            }
            if self.replay_prefixes > 0 {
                self.recorder
                    .add(names::BGP_REPLAY_PREFIXES_SCOPED, self.replay_prefixes);
                self.replay_prefixes = 0;
            }
        }
        stats
    }

    /// The best route of `r` for exactly `prefix`.
    pub fn best_route(&self, r: RouterId, prefix: &Prefix) -> Option<&Route> {
        self.state(r).loc_rib.get(prefix)
    }

    /// Longest-prefix-match lookup in `r`'s Loc-RIB.
    pub fn lookup(&self, r: RouterId, dst: Ipv4Addr) -> Option<&Route> {
        self.state(r)
            .loc_rib
            .iter()
            .filter(|(p, _)| p.contains(dst))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, route)| route)
    }

    /// Iterates over `r`'s Loc-RIB (prefix-ordered).
    pub fn loc_rib(&self, r: RouterId) -> impl Iterator<Item = (&Prefix, &Route)> {
        self.state(r).loc_rib.iter()
    }

    /// Reacts to a link going down (the [`LinkState`] must already reflect
    /// it, and for intra-domain links the IGP must already be recomputed).
    ///
    /// * inter-domain link: tears down its eBGP session and flushes routes;
    /// * intra-domain link: revalidates the owning AS via
    ///   [`Bgp::refresh_as`].
    ///
    /// Queues reconvergence messages; call [`Bgp::run`] afterwards.
    pub fn handle_link_down(&mut self, ctx: Ctx<'_>, link: LinkId) {
        let l = ctx.topology.link(link);
        match l.kind {
            LinkKind::Inter => {
                if let Some(sid) = self.sessions.ebgp_on_link(link) {
                    self.set_session_down(sid);
                    self.flush_session(ctx, sid);
                }
            }
            LinkKind::Intra => {
                let as_id = ctx.topology.as_of_router(l.a);
                self.refresh_as(ctx, as_id);
            }
        }
    }

    /// Flushes the eBGP session riding a failed inter-domain link. The
    /// liveness cache must already mark the session down (see
    /// [`Bgp::mark_links_down`]); this only replays the affected prefixes.
    pub fn fail_ebgp_link(&mut self, ctx: Ctx<'_>, link: LinkId) {
        if let Some(sid) = self.sessions.ebgp_on_link(link) {
            self.flush_session(ctx, sid);
        }
    }

    /// Scoped variant of [`Bgp::refresh_as`] driven by a delta-SPF result:
    /// flushes exactly the iBGP sessions that just died
    /// ([`SpfDelta::lost_pairs`]) and replays the decision process only on
    /// routers whose IGP distance vector changed
    /// ([`SpfDelta::dirty_sources`]).
    ///
    /// Queues the exact same messages as a full `refresh_as`: a skipped
    /// router has an unchanged distance vector, unchanged session
    /// liveness and an untouched Adj-RIB-In, so every one of its
    /// re-decisions would return "no change" and enqueue nothing; flushes
    /// of long-dead sessions are no-ops because their state was already
    /// removed when they died. The liveness cache must already reflect
    /// the dead sessions (see [`Bgp::mark_pairs_down`]).
    pub fn refresh_as_scoped(&mut self, ctx: Ctx<'_>, delta: &SpfDelta) {
        let mut dead: Vec<SessionId> = delta
            .lost_pairs
            .iter()
            .filter_map(|&(a, b)| self.sessions.ibgp_between(a, b))
            .collect();
        dead.sort_unstable();
        for sid in dead {
            self.flush_session(ctx, sid);
        }
        for &r in &delta.dirty_sources {
            let prefixes: BTreeSet<Prefix> = self
                .state(r)
                .adj_in
                .keys()
                .chain(self.state(r).loc_rib.keys())
                .copied()
                .collect();
            self.replay_prefixes += prefixes.len() as u64;
            for prefix in prefixes {
                if self.decide(ctx, r, prefix) {
                    self.propagate(ctx, r, prefix);
                }
            }
        }
    }

    /// Revalidates an AS after its IGP state changed: tears down
    /// newly-unreachable iBGP sessions and re-runs the decision process on
    /// every router of the AS (IGP distances participate in route choice).
    pub fn refresh_as(&mut self, ctx: Ctx<'_>, as_id: AsId) {
        // Tear down dead iBGP sessions.
        let dead: Vec<SessionId> = ctx
            .topology
            .as_node(as_id)
            .routers
            .iter()
            .flat_map(|&r| self.sessions.of_router(r).iter().copied())
            .filter(|&sid| {
                let s = self.sessions.get(sid);
                s.kind == SessionKind::Ibgp
                    && ctx.topology.as_of_router(s.a) == as_id
                    && !self.sessions.is_up(sid, ctx.topology, ctx.igp, ctx.links)
            })
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        for sid in dead {
            self.flush_session(ctx, sid);
        }
        // Re-decide everything in the AS: IGP distance changes can flip the
        // best route even when all sessions stay up.
        for &r in &ctx.topology.as_node(as_id).routers {
            let prefixes: BTreeSet<Prefix> = self
                .state(r)
                .adj_in
                .keys()
                .chain(self.state(r).loc_rib.keys())
                .copied()
                .collect();
            for prefix in prefixes {
                if self.decide(ctx, r, prefix) {
                    self.propagate(ctx, r, prefix);
                }
            }
        }
    }

    /// Reacts to a link coming back up (the [`LinkState`] must already
    /// reflect it, and for intra-domain links the IGP must already be
    /// recomputed). Re-advertises current routes over the re-established
    /// session(s); call [`Bgp::run`] afterwards.
    pub fn handle_link_up(&mut self, ctx: Ctx<'_>, link: LinkId) {
        let l = ctx.topology.link(link);
        match l.kind {
            LinkKind::Inter => {
                // The eBGP session is back: both ends resend their best
                // routes (a session reset triggers a full refresh).
                if self.trace_on {
                    self.recorder.event(names::EV_BGP_SESSION, || {
                        netdiag_obs::EventPayload::new()
                            .field("state", "up")
                            .field("kind", "ebgp")
                            .field("a", l.a.index())
                            .field("b", l.b.index())
                    });
                }
                for r in [l.a, l.b] {
                    self.readvertise_all(ctx, r);
                }
            }
            LinkKind::Intra => {
                // Healed partition: IGP distances changed and previously-
                // dead iBGP sessions are back; re-decide and resync every
                // router of the AS.
                let as_id = ctx.topology.as_of_router(l.a);
                self.refresh_as(ctx, as_id);
                for &r in &ctx.topology.as_node(as_id).routers {
                    self.readvertise_all(ctx, r);
                }
            }
        }
    }

    /// Resyncs every session's Adj-RIB-Out of `r` with its current best
    /// routes (sends updates over sessions that missed them).
    fn readvertise_all(&mut self, ctx: Ctx<'_>, r: RouterId) {
        let prefixes: Vec<Prefix> = self.state(r).loc_rib.keys().copied().collect();
        for prefix in prefixes {
            self.propagate(ctx, r, prefix);
        }
    }

    /// Installs an export deny rule (a router misconfiguration) and queues
    /// the resulting withdrawal. Call [`Bgp::run`] afterwards.
    pub fn install_filter(&mut self, ctx: Ctx<'_>, rule: ExportDeny) {
        self.filters.deny(rule);
        self.propagate(ctx, rule.at, rule.prefix);
    }

    /// Removes an export deny rule (the operator fixes the
    /// misconfiguration) and re-announces the suppressed route. Call
    /// [`Bgp::run`] afterwards. Returns false if the rule was not
    /// installed.
    pub fn remove_filter(&mut self, ctx: Ctx<'_>, rule: &ExportDeny) -> bool {
        if !self.filters.allow(rule) {
            return false;
        }
        self.propagate(ctx, rule.at, rule.prefix);
        true
    }

    /// Removes all adj-in/adj-out state of a dead session and reconverges
    /// the affected prefixes at both endpoints.
    fn flush_session(&mut self, ctx: Ctx<'_>, sid: SessionId) {
        let s = *self.sessions.get(sid);
        if self.trace_on {
            self.recorder.event(names::EV_BGP_SESSION, || {
                netdiag_obs::EventPayload::new()
                    .field("state", "down")
                    .field("kind", session_kind_str(s.kind))
                    .field("a", s.a.index())
                    .field("b", s.b.index())
            });
        }
        // Drop in-flight messages on the session (they would be discarded at
        // delivery anyway because the session is down).
        for r in [s.a, s.b] {
            // Read-only pre-check so routers untouched by the session don't
            // break copy-on-write sharing.
            let touched = {
                let state = self.state(r);
                state.adj_out.contains_key(&sid) || state.adj_in_by_session.contains_key(&sid)
            };
            if !touched {
                continue;
            }
            let state = self.state_mut(r);
            state.adj_out.remove(&sid);
            // The replay index hands us exactly the prefixes learned on
            // this session (prefix-ordered), replacing a full Adj-RIB-In
            // scan.
            let affected: Vec<Prefix> = match state.adj_in_by_session.remove(&sid) {
                Some(set) => set.into_iter().collect(),
                None => Vec::new(),
            };
            for p in &affected {
                if let Some(by_session) = state.adj_in.get_mut(p) {
                    by_session.remove(&sid);
                }
            }
            self.replay_prefixes += affected.len() as u64;
            for prefix in affected {
                if self.decide(ctx, r, prefix) {
                    self.propagate(ctx, r, prefix);
                }
            }
        }
    }

    /// Delivers one message.
    fn deliver(&mut self, ctx: Ctx<'_>, msg: Msg) {
        if !self.sess_up(ctx, msg.session) {
            return; // lost with the session
        }
        let kind = self.sessions.get(msg.session).kind;
        // Observer tap: record eBGP messages arriving in the observer AS.
        if let (Some(obs), SessionKind::Ebgp { .. }) = (self.observer, kind) {
            if ctx.topology.as_of_router(msg.to) == obs {
                let prefix = match &msg.payload {
                    Payload::Update(rm) => rm.prefix,
                    Payload::Withdraw(p) => *p,
                };
                self.observed.push(ObservedMsg {
                    at: msg.to,
                    from: msg.from,
                    from_as: ctx.topology.as_of_router(msg.from),
                    prefix,
                    kind: match msg.payload {
                        Payload::Update(_) => ObservedKind::Update,
                        Payload::Withdraw(_) => ObservedKind::Withdraw,
                    },
                    seq: self.seq,
                });
                self.seq += 1;
            }
        }
        if self.trace_on {
            self.recorder.event(names::EV_BGP_MESSAGE, || {
                let (msg_kind, prefix) = match &msg.payload {
                    Payload::Update(rm) => ("update", rm.prefix),
                    Payload::Withdraw(p) => ("withdraw", *p),
                };
                netdiag_obs::EventPayload::new()
                    .field("kind", msg_kind)
                    .field("session", session_kind_str(kind))
                    .field("from", msg.from.index())
                    .field("to", msg.to.index())
                    .field("prefix", prefix.to_string())
            });
        }

        let Msg {
            session,
            from,
            to,
            payload,
        } = msg;
        let prefix = match payload {
            Payload::Update(rm) => {
                let prefix = rm.prefix;
                match self.import(ctx, to, from, session, rm, kind) {
                    Some(route) => {
                        let state = self.state_mut(to);
                        state.adj_in.entry_or_default(prefix).insert(session, route);
                        state
                            .adj_in_by_session
                            .entry_or_default(session)
                            .insert(prefix);
                    }
                    None => {
                        // Loop-rejected update acts as a withdraw of any
                        // previous route on the session.
                        self.remove_adj_in(to, prefix, session);
                    }
                }
                prefix
            }
            Payload::Withdraw(prefix) => {
                self.remove_adj_in(to, prefix, session);
                prefix
            }
        };
        if self.decide(ctx, to, prefix) {
            self.propagate(ctx, to, prefix);
        }
    }

    /// Drops the route learned for `prefix` on `session` at `to`, if any,
    /// without breaking copy-on-write when there is nothing to drop.
    fn remove_adj_in(&mut self, to: RouterId, prefix: Prefix, session: SessionId) {
        let present = self
            .state(to)
            .adj_in
            .get(&prefix)
            .is_some_and(|by_session| by_session.contains_key(&session));
        if present {
            let state = self.state_mut(to);
            if let Some(by_session) = state.adj_in.get_mut(&prefix) {
                by_session.remove(&session);
            }
            if let Some(set) = state.adj_in_by_session.get_mut(&session) {
                set.remove(&prefix);
                if set.is_empty() {
                    state.adj_in_by_session.remove(&session);
                }
            }
        }
    }

    /// Converts an incoming update into a stored route (import policy).
    /// Returns `None` when the route is loop-rejected.
    fn import(
        &self,
        ctx: Ctx<'_>,
        to: RouterId,
        from: RouterId,
        session: SessionId,
        rm: RouteMsg,
        kind: SessionKind,
    ) -> Option<Route> {
        match kind {
            SessionKind::Ebgp { link } => {
                let my_as = ctx.topology.as_of_router(to);
                if rm.as_path.contains(&my_as) {
                    return None;
                }
                let from_as = ctx.topology.as_of_router(from);
                let rel = ctx
                    .topology
                    .relationship(my_as, from_as)
                    .expect("eBGP neighbors must have a relationship");
                Some(Route {
                    prefix: rm.prefix,
                    as_path: rm.as_path,
                    egress: to,
                    ebgp_link: Some(link),
                    local_pref: local_pref_for(rel),
                    source: RouteSource::External(rel),
                    learned_from: Some((session, from)),
                    ebgp_learned: true,
                })
            }
            SessionKind::Ibgp => Some(Route {
                prefix: rm.prefix,
                as_path: rm.as_path,
                egress: rm.egress,
                ebgp_link: None,
                local_pref: rm.local_pref,
                source: rm.source,
                learned_from: Some((session, from)),
                ebgp_learned: false,
            }),
        }
    }

    /// Recomputes the best route of `r` for `prefix`. Returns true when the
    /// Loc-RIB entry changed.
    fn decide(&mut self, ctx: Ctx<'_>, r: RouterId, prefix: Prefix) -> bool {
        self.decisions += 1;
        let state = self.state(r);
        let as_id = ctx.topology.as_of_router(r);
        let best: Option<Cow<'_, Route>> = if state.originated.contains(&prefix) {
            Some(Cow::Owned(Route::originated(prefix, r)))
        } else {
            state
                .adj_in
                .get(&prefix)
                .into_iter()
                .flatten()
                .filter(|(sid, route)| {
                    self.sess_up(ctx, **sid)
                        && (route.ebgp_learned || ctx.igp.of(as_id).reachable(r, route.egress))
                })
                .max_by_key(|(sid, route)| {
                    let igp_dist = if route.egress == r {
                        0
                    } else {
                        ctx.igp
                            .of(as_id)
                            .dist(r, route.egress)
                            .expect("filtered reachable")
                    };
                    let neighbor = route.learned_from.map(|(_, n)| n.0).unwrap_or(0);
                    (
                        route.local_pref,
                        std::cmp::Reverse(route.as_path.len()),
                        route.ebgp_learned,
                        std::cmp::Reverse(igp_dist),
                        std::cmp::Reverse(neighbor),
                        std::cmp::Reverse(sid.0),
                    )
                })
                .map(|(_, route)| Cow::Borrowed(route))
        };

        // Only clone the winning route and take write access when the
        // entry actually changes, so a no-op re-decision (the common case
        // in `refresh_as` and in withdraw storms that leave the best
        // route alone) costs no allocation and keeps the router's state
        // shared.
        if state.loc_rib.get(&prefix) == best.as_deref() {
            return false;
        }
        let best = best.map(Cow::into_owned);
        let state = self.state_mut(r);
        match best {
            Some(route) => {
                state.loc_rib.insert(prefix, route);
            }
            None => {
                state.loc_rib.remove(&prefix);
            }
        }
        true
    }

    /// Synchronizes every session's Adj-RIB-Out with the current best route
    /// of `r` for `prefix`, queueing updates/withdraws.
    fn propagate(&mut self, ctx: Ctx<'_>, r: RouterId, prefix: Prefix) {
        let best = self.state(r).loc_rib.get(&prefix).cloned();
        let sessions = Arc::clone(&self.sessions);
        for &sid in sessions.of_router(r) {
            if !self.sess_up(ctx, sid) {
                continue;
            }
            let session = *sessions.get(sid);
            let peer = session
                .other(r)
                .expect("sid comes from r's session table, so r is an endpoint");
            let advertise: Option<RouteMsg> = best
                .as_ref()
                .and_then(|b| self.export(ctx, r, peer, sid, session.kind, b));
            let had = self
                .state(r)
                .adj_out
                .get(&sid)
                .is_some_and(|s| s.contains(&prefix));
            match advertise {
                Some(rm) => {
                    if !had {
                        self.state_mut(r)
                            .adj_out
                            .entry_or_default(sid)
                            .insert(prefix);
                    }
                    self.queue.push_back(Msg {
                        session: sid,
                        from: r,
                        to: peer,
                        payload: Payload::Update(rm),
                    });
                }
                None if had => {
                    self.state_mut(r)
                        .adj_out
                        .get_mut(&sid)
                        .expect("had implies entry")
                        .remove(&prefix);
                    self.queue.push_back(Msg {
                        session: sid,
                        from: r,
                        to: peer,
                        payload: Payload::Withdraw(prefix),
                    });
                }
                None => {}
            }
        }
    }

    /// Export policy: what (if anything) `r` advertises for its best route
    /// `b` to `peer` over the given session.
    fn export(
        &self,
        ctx: Ctx<'_>,
        r: RouterId,
        peer: RouterId,
        sid: SessionId,
        kind: SessionKind,
        b: &Route,
    ) -> Option<RouteMsg> {
        match kind {
            SessionKind::Ibgp => {
                // Standard iBGP: only eBGP-learned and originated routes are
                // re-advertised internally (no reflection of iBGP routes).
                if !(b.ebgp_learned || b.source == RouteSource::Originated) {
                    return None;
                }
                Some(RouteMsg {
                    prefix: b.prefix,
                    as_path: b.as_path,
                    local_pref: b.local_pref,
                    egress: r,
                    source: b.source,
                })
            }
            SessionKind::Ebgp { .. } => {
                let my_as = ctx.topology.as_of_router(r);
                let peer_as = ctx.topology.as_of_router(peer);
                let rel = ctx
                    .topology
                    .relationship(my_as, peer_as)
                    .expect("eBGP neighbors must have a relationship");
                if !b.source.exportable_to(rel) {
                    return None;
                }
                if b.as_path.contains(&peer_as) {
                    return None; // AS-level split horizon
                }
                if b.learned_from.is_some_and(|(s, _)| s == sid) {
                    return None; // never echo a route back on its session
                }
                if self.filters.is_denied(r, peer, b.prefix) {
                    return None; // misconfiguration
                }
                Some(RouteMsg {
                    prefix: b.prefix,
                    as_path: b.as_path.prepended(my_as),
                    local_pref: 0,
                    egress: r,
                    source: b.source,
                })
            }
        }
    }
}

/// Stable session-kind label used in trace payloads.
fn session_kind_str(kind: SessionKind) -> &'static str {
    match kind {
        SessionKind::Ebgp { .. } => "ebgp",
        SessionKind::Ibgp => "ibgp",
    }
}
