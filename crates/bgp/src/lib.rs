//! Message-driven BGP simulator for the NetDiagnoser reproduction.
//!
//! This crate replaces the paper's use of the C-BGP simulator. It models:
//!
//! * one eBGP session per inter-domain link and an iBGP full mesh per AS
//!   ([`SessionTable`]);
//! * relationship-based import/export policies (Gao-Rexford: customer
//!   routes to everyone, peer/provider routes only to customers) with
//!   local preference customer > peer > provider;
//! * the standard decision process: local-pref → AS-path length → eBGP over
//!   iBGP → IGP distance to the egress (hot potato) → deterministic
//!   tie-breaks;
//! * strictly-FIFO message processing ([`Bgp::run`]), making every
//!   convergence fully deterministic;
//! * incremental reconvergence after link failures
//!   ([`Bgp::handle_link_down`]) and export-filter misconfigurations
//!   ([`Bgp::install_filter`]);
//! * an observer tap ([`Bgp::set_observer`]) recording every eBGP message
//!   received by one AS — the control-plane feed the paper's ND-bgpigp
//!   algorithm uses.
//!
//! Deliberately out of scope (unused by the paper's evaluation): MED,
//! communities, route reflection, aggregation, MRAI timers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod engine;
mod policy;
mod route;
mod session;
mod vecmap;

pub use engine::{Bgp, Ctx, ObservedKind, ObservedMsg, RunStats};
pub use policy::{ExportDeny, ExportFilters};
pub use route::{local_pref_for, AsPath, Route, RouteSource, LOCAL_PREF_ORIGINATED};
pub use session::{Session, SessionId, SessionKind, SessionTable};
