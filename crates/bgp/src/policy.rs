//! Export filters — the mechanism behind the paper's "router
//! misconfiguration" failure mode.
//!
//! A BGP policy misconfiguration in the paper (§4, "Failure scenarios") is an
//! outbound route filter at one router that stops announcing selected
//! prefixes to one specific neighbor, while the link otherwise keeps working.

use std::collections::BTreeSet;

use netdiag_topology::{Prefix, RouterId};

/// A single outbound deny rule: `at` stops announcing `prefix` to `peer`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExportDeny {
    /// The misconfigured router.
    pub at: RouterId,
    /// The eBGP neighbor that no longer receives the announcement.
    pub peer: RouterId,
    /// The suppressed prefix.
    pub prefix: Prefix,
}

/// Set of active outbound deny rules.
///
/// Backed by a `BTreeSet` so [`ExportFilters::iter`] yields rules in a
/// stable order — failure injection and reporting must not depend on
/// hash order (lint: `hash-iter`).
#[derive(Clone, Debug, Default)]
pub struct ExportFilters {
    denies: BTreeSet<ExportDeny>,
}

impl ExportFilters {
    /// No filters (the healthy network).
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a deny rule. Returns false if it was already present.
    pub fn deny(&mut self, rule: ExportDeny) -> bool {
        self.denies.insert(rule)
    }

    /// Removes a deny rule. Returns true if it was present.
    pub fn allow(&mut self, rule: &ExportDeny) -> bool {
        self.denies.remove(rule)
    }

    /// Is announcing `prefix` from `at` to `peer` suppressed?
    pub fn is_denied(&self, at: RouterId, peer: RouterId, prefix: Prefix) -> bool {
        self.denies.contains(&ExportDeny { at, peer, prefix })
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.denies.is_empty()
    }

    /// Number of active rules.
    pub fn len(&self) -> usize {
        self.denies.len()
    }

    /// Iterates over active rules.
    pub fn iter(&self) -> impl Iterator<Item = &ExportDeny> {
        self.denies.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn p(i: u8) -> Prefix {
        Prefix::new(Ipv4Addr::new(10, i, 0, 0), 16)
    }

    #[test]
    fn deny_is_directional_and_specific() {
        let mut f = ExportFilters::new();
        let rule = ExportDeny {
            at: RouterId(1),
            peer: RouterId(2),
            prefix: p(5),
        };
        assert!(f.deny(rule));
        assert!(!f.deny(rule), "duplicate insert reports false");
        assert!(f.is_denied(RouterId(1), RouterId(2), p(5)));
        // Other direction, other peer, other prefix: all unaffected.
        assert!(!f.is_denied(RouterId(2), RouterId(1), p(5)));
        assert!(!f.is_denied(RouterId(1), RouterId(3), p(5)));
        assert!(!f.is_denied(RouterId(1), RouterId(2), p(6)));
    }

    #[test]
    fn allow_restores() {
        let mut f = ExportFilters::new();
        let rule = ExportDeny {
            at: RouterId(1),
            peer: RouterId(2),
            prefix: p(5),
        };
        f.deny(rule);
        assert!(f.allow(&rule));
        assert!(f.is_empty());
        assert!(!f.is_denied(RouterId(1), RouterId(2), p(5)));
    }
}
