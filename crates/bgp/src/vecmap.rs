//! Sorted-vector map/set used for per-router RIB state.
//!
//! The per-router tables are tiny (tens of entries) but are cloned and
//! dropped on every copy-on-write break of the failure/restore hot loop.
//! A `BTreeMap` pays one heap node per handful of entries for that clone;
//! a sorted `Vec` pays a single allocation and a memcpy, and lookups are
//! a binary search over contiguous memory. Iteration order is ascending
//! by key — identical to the `BTreeMap`s these replaced, so message
//! ordering (and therefore every observable) is unchanged.

use std::fmt;

/// A map backed by a `Vec<(K, V)>` kept sorted by key.
#[derive(Clone, PartialEq, Eq)]
pub struct VecMap<K, V> {
    entries: Vec<(K, V)>,
}

// Manual impl: the derive would demand `K: Default + V: Default`.
impl<K, V> Default for VecMap<K, V> {
    fn default() -> Self {
        VecMap {
            entries: Vec::new(),
        }
    }
}

impl<K: Ord + Copy, V> VecMap<K, V> {
    /// Index of `k`, or the insertion point keeping the vector sorted.
    #[inline]
    fn search(&self, k: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(ek, _)| ek.cmp(k))
    }

    /// The value stored under `k`.
    #[inline]
    pub fn get(&self, k: &K) -> Option<&V> {
        self.search(k).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable access to the value stored under `k`.
    #[inline]
    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        match self.search(k) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// True when `k` is present.
    #[inline]
    pub fn contains_key(&self, k: &K) -> bool {
        self.search(k).is_ok()
    }

    /// Inserts or replaces, returning the previous value.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        match self.search(&k) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, v)),
            Err(i) => {
                self.entries.insert(i, (k, v));
                None
            }
        }
    }

    /// Removes and returns the value under `k`.
    pub fn remove(&mut self, k: &K) -> Option<V> {
        match self.search(k) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// The value under `k`, inserting `V::default()` first when absent.
    pub fn entry_or_default(&mut self, k: K) -> &mut V
    where
        V: Default,
    {
        let i = match self.search(&k) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (k, V::default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Entries in ascending key order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in ascending order.
    #[inline]
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<'a, K: Ord + Copy, V> IntoIterator for &'a VecMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::iter::Map<std::slice::Iter<'a, (K, V)>, fn(&'a (K, V)) -> (&'a K, &'a V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for VecMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|(k, v)| (k, v)))
            .finish()
    }
}

/// A set backed by a sorted `Vec<T>`.
#[derive(Clone, PartialEq, Eq)]
pub struct VecSet<T> {
    entries: Vec<T>,
}

// Manual impl: the derive would demand `T: Default`.
impl<T> Default for VecSet<T> {
    fn default() -> Self {
        VecSet {
            entries: Vec::new(),
        }
    }
}

impl<T: Ord + Copy> VecSet<T> {
    /// True when `t` is present.
    #[inline]
    pub fn contains(&self, t: &T) -> bool {
        self.entries.binary_search(t).is_ok()
    }

    /// Inserts `t`; returns false when it was already present.
    pub fn insert(&mut self, t: T) -> bool {
        match self.entries.binary_search(&t) {
            Ok(_) => false,
            Err(i) => {
                self.entries.insert(i, t);
                true
            }
        }
    }

    /// Removes `t`; returns false when it was absent.
    #[allow(dead_code)] // part of the set API; engine paths may not need it
    pub fn remove(&mut self, t: &T) -> bool {
        match self.entries.binary_search(t) {
            Ok(i) => {
                self.entries.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// True when the set holds no elements.
    #[allow(dead_code)] // part of the set API; engine paths may not need it
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<T> IntoIterator for VecSet<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<T: fmt::Debug> fmt::Debug for VecSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.entries.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_stays_sorted_and_replaces() {
        let mut m: VecMap<u32, &str> = VecMap::default();
        assert_eq!(m.insert(5, "five"), None);
        assert_eq!(m.insert(1, "one"), None);
        assert_eq!(m.insert(3, "three"), None);
        assert_eq!(m.insert(3, "tri"), Some("three"));
        let keys: Vec<u32> = m.keys().copied().collect();
        assert_eq!(keys, vec![1, 3, 5]);
        assert_eq!(m.get(&3), Some(&"tri"));
        assert_eq!(m.remove(&1), Some("one"));
        assert_eq!(m.len(), 2);
        assert!(!m.contains_key(&1));
        *m.entry_or_default(9) = "nine";
        assert_eq!(m.get(&9), Some(&"nine"));
    }

    #[test]
    fn set_semantics() {
        let mut s: VecSet<u32> = VecSet::default();
        assert!(s.insert(4));
        assert!(s.insert(2));
        assert!(!s.insert(4));
        assert_eq!(s.clone().into_iter().collect::<Vec<_>>(), vec![2, 4]);
        assert!(s.contains(&2));
        assert!(s.remove(&2));
        assert!(!s.remove(&2));
        assert!(!s.is_empty());
    }
}
