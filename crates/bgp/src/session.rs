//! BGP session table: one eBGP session per inter-domain link, iBGP full mesh
//! inside every AS.

use std::fmt;

use netdiag_igp::{Igp, LinkState};
use netdiag_topology::{LinkId, LinkKind, RouterId, Topology};

/// Identifier of a BGP session (dense index into the session table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u32);

impl SessionId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sess{}", self.0)
    }
}

/// Session flavor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionKind {
    /// External session riding a specific inter-domain link.
    Ebgp {
        /// The inter-domain link carrying the session.
        link: LinkId,
    },
    /// Internal session between two routers of the same AS (full mesh).
    Ibgp,
}

/// A BGP session between two routers.
#[derive(Clone, Copy, Debug)]
pub struct Session {
    /// Identifier.
    pub id: SessionId,
    /// One endpoint.
    pub a: RouterId,
    /// The other endpoint.
    pub b: RouterId,
    /// eBGP or iBGP.
    pub kind: SessionKind,
}

impl Session {
    /// The endpoint opposite `r`, or `None` when `r` is not an endpoint.
    pub fn other(&self, r: RouterId) -> Option<RouterId> {
        if r == self.a {
            Some(self.b)
        } else if r == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// The full session table for a topology.
#[derive(Clone, Debug)]
pub struct SessionTable {
    sessions: Vec<Session>,
    /// Sessions incident to each router, indexed by router id.
    by_router: Vec<Vec<SessionId>>,
    /// eBGP session riding each link, indexed by link id (`None` for
    /// intra-domain links).
    by_link: Vec<Option<SessionId>>,
}

impl SessionTable {
    /// Builds the session table: one eBGP session per inter-domain link and
    /// an iBGP full mesh inside every AS.
    pub fn build(topology: &Topology) -> Self {
        let mut sessions = Vec::new();
        let mut by_router = vec![Vec::new(); topology.router_count()];
        let mut by_link = vec![None; topology.link_count()];
        let mut push = |sessions: &mut Vec<Session>, a: RouterId, b: RouterId, kind| {
            let id = SessionId(sessions.len() as u32);
            sessions.push(Session { id, a, b, kind });
            by_router[a.index()].push(id);
            by_router[b.index()].push(id);
            id
        };
        for link in topology.links() {
            if link.kind == LinkKind::Inter {
                let id = push(
                    &mut sessions,
                    link.a,
                    link.b,
                    SessionKind::Ebgp { link: link.id },
                );
                by_link[link.id.index()] = Some(id);
            }
        }
        for asn in topology.ases() {
            for (i, &a) in asn.routers.iter().enumerate() {
                for &b in &asn.routers[i + 1..] {
                    push(&mut sessions, a, b, SessionKind::Ibgp);
                }
            }
        }
        SessionTable {
            sessions,
            by_router,
            by_link,
        }
    }

    /// All sessions.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Looks up a session.
    pub fn get(&self, id: SessionId) -> &Session {
        &self.sessions[id.index()]
    }

    /// Sessions incident to a router.
    pub fn of_router(&self, r: RouterId) -> &[SessionId] {
        &self.by_router[r.index()]
    }

    /// Is the session currently usable?
    ///
    /// eBGP sessions require their link up; iBGP sessions require IGP
    /// reachability between the endpoints.
    pub fn is_up(&self, id: SessionId, topology: &Topology, igp: &Igp, links: &LinkState) -> bool {
        let s = self.get(id);
        match s.kind {
            SessionKind::Ebgp { link } => links.is_up(link),
            SessionKind::Ibgp => {
                let as_id = topology.as_of_router(s.a);
                igp.of(as_id).reachable(s.a, s.b)
            }
        }
    }

    /// The eBGP session riding `link`, if any.
    pub fn ebgp_on_link(&self, link: LinkId) -> Option<SessionId> {
        self.by_link[link.index()]
    }

    /// The iBGP session between two routers of the same AS, if any.
    pub fn ibgp_between(&self, a: RouterId, b: RouterId) -> Option<SessionId> {
        self.by_router[a.index()].iter().copied().find(|&id| {
            let s = &self.sessions[id.index()];
            s.kind == SessionKind::Ibgp && s.other(a) == Some(b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdiag_topology::{AsKind, LinkRelationship, TopologyBuilder};

    fn sample() -> Topology {
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Core, "A");
        let c = b.add_as(AsKind::Stub, "C");
        let a1 = b.add_router(a, "a1");
        let a2 = b.add_router(a, "a2");
        let a3 = b.add_router(a, "a3");
        b.add_intra_link(a1, a2, 1);
        b.add_intra_link(a2, a3, 1);
        let c1 = b.add_router(c, "c1");
        b.add_inter_link(a3, c1, LinkRelationship::ProviderCustomer);
        b.build().unwrap()
    }

    #[test]
    fn builds_full_mesh_plus_ebgp() {
        let t = sample();
        let st = SessionTable::build(&t);
        // 1 eBGP + C(3,2)=3 iBGP in AS-A + 0 in single-router AS-C.
        assert_eq!(st.sessions().len(), 4);
        let ebgp = st
            .sessions()
            .iter()
            .filter(|s| matches!(s.kind, SessionKind::Ebgp { .. }))
            .count();
        assert_eq!(ebgp, 1);
        assert_eq!(st.of_router(RouterId(1)).len(), 2); // a2: mesh to a1, a3
        assert_eq!(st.of_router(RouterId(3)).len(), 1); // c1: one eBGP
    }

    #[test]
    fn ebgp_liveness_follows_link() {
        let t = sample();
        let st = SessionTable::build(&t);
        let mut links = LinkState::all_up(&t);
        let igp = Igp::compute(&t, &links);
        let inter = t.inter_links().next().unwrap().id;
        let sid = st.ebgp_on_link(inter).unwrap();
        assert!(st.is_up(sid, &t, &igp, &links));
        links.set_down(inter);
        assert!(!st.is_up(sid, &t, &igp, &links));
    }

    #[test]
    fn ibgp_liveness_follows_igp_partition() {
        let t = sample();
        let st = SessionTable::build(&t);
        let mut links = LinkState::all_up(&t);
        // Find the a1-a2 iBGP session.
        let sid = st
            .sessions()
            .iter()
            .find(|s| s.kind == SessionKind::Ibgp && s.a == RouterId(0) && s.b == RouterId(1))
            .unwrap()
            .id;
        let igp = Igp::compute(&t, &links);
        assert!(st.is_up(sid, &t, &igp, &links));
        // Cut a1-a2; a1 is now partitioned from the rest of AS-A.
        links.set_down(t.link_between(RouterId(0), RouterId(1)).unwrap());
        let igp = Igp::compute(&t, &links);
        assert!(!st.is_up(sid, &t, &igp, &links));
    }

    #[test]
    fn session_other_endpoint() {
        let t = sample();
        let st = SessionTable::build(&t);
        let s = st.get(SessionId(0));
        assert_eq!(s.other(s.a), Some(s.b));
        assert_eq!(s.other(s.b), Some(s.a));
        assert_eq!(s.other(RouterId(99)), None);
    }
}
