//! Performance benchmarks for the copy-on-write / bitset / parallelism
//! work:
//!
//! * `sim_clone_vs_snapshot` — deep-copying the 165-AS simulator vs the
//!   CoW `Sim::clone` (Arc bumps) vs a failure + `snapshot`/`restore`
//!   round-trip on one scratch simulator;
//! * `hitting_set_btree_vs_bitset` — the greedy hitting set on the dense
//!   `EdgeBitSet` representation vs a faithful `BTreeSet<EdgeId>`
//!   reference (the representation this PR replaced);
//! * `trace_overhead` — the production greedy with a `NoopRecorder` vs a
//!   hook-free replica (the zero-cost guard scripts/bench.sh enforces)
//!   and vs a live `TraceRecorder`;
//! * `trials_parallel_speedup` — `collect_trials` (worker pool over
//!   placements x trials) vs `collect_trials_sequential` at the quick
//!   figure scale.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use netdiag_bench::Fixture;
use netdiag_experiments::figures::{collect_trials, collect_trials_sequential, FigureConfig};
use netdiag_experiments::runner::RunConfig;
use netdiag_obs::RecorderHandle;
use netdiagnoser::{EdgeBitSet, EdgeId, HittingSetInstance, Weights};

fn bench_sim_clone(c: &mut Criterion) {
    let fx = Fixture::paper_scale();
    let link = fx.mesh.traceroutes[0].links()[0];
    let mut group = c.benchmark_group("sim_clone_vs_snapshot");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("deep_clone", |b| b.iter(|| fx.sim.deep_clone()));
    group.bench_function("cow_clone", |b| b.iter(|| fx.sim.clone()));
    group.bench_function("deep_clone_fail_link", |b| {
        b.iter(|| {
            let mut s = fx.sim.deep_clone();
            s.fail_link(black_box(link));
            s
        })
    });
    let mut scratch = fx.sim.clone();
    let snap = scratch.snapshot();
    group.bench_function("snapshot_fail_restore", |b| {
        b.iter(|| {
            scratch.fail_link(black_box(link));
            scratch.restore(&snap);
        })
    });
    group.finish();
}

/// The pre-bitset representation: plain ordered sets of edge ids.
struct BtreeInstance {
    failure_sets: Vec<BTreeSet<EdgeId>>,
    reroute_sets: Vec<BTreeSet<EdgeId>>,
    candidates: BTreeSet<EdgeId>,
}

/// Faithful replica of the greedy on the `BTreeSet` representation
/// (no clusters — the synthetic instance has none), kept as the bench
/// baseline after the production code moved to `EdgeBitSet`.
fn greedy_btree(inst: &BtreeInstance, weights: Weights) -> Vec<EdgeId> {
    let mut unexplained_f: BTreeSet<usize> = (0..inst.failure_sets.len()).collect();
    let mut unexplained_r: BTreeSet<usize> = (0..inst.reroute_sets.len()).collect();
    let mut candidates = inst.candidates.clone();
    let mut hypothesis = Vec::new();
    #[allow(clippy::nonminimal_bool)] // mirrors the production greedy's condition
    while !candidates.is_empty() && !(unexplained_f.is_empty() && unexplained_r.is_empty()) {
        let mut best_score = 0u64;
        let mut best: Vec<EdgeId> = Vec::new();
        for &e in &candidates {
            let cf = unexplained_f
                .iter()
                .filter(|&&i| inst.failure_sets[i].contains(&e))
                .count() as u64;
            let cr = unexplained_r
                .iter()
                .filter(|&&i| inst.reroute_sets[i].contains(&e))
                .count() as u64;
            let score = u64::from(weights.a) * cf + u64::from(weights.b) * cr;
            match score.cmp(&best_score) {
                Ordering::Greater => {
                    best_score = score;
                    best = vec![e];
                }
                Ordering::Equal if score > 0 => best.push(e),
                _ => {}
            }
        }
        if best_score == 0 {
            break;
        }
        for e in best {
            unexplained_f.retain(|&i| !inst.failure_sets[i].contains(&e));
            unexplained_r.retain(|&i| !inst.reroute_sets[i].contains(&e));
            candidates.remove(&e);
            hypothesis.push(e);
        }
    }
    hypothesis
}

fn synthetic_pair(
    n_fail: usize,
    n_reroute: usize,
    universe: u32,
    seed: u64,
) -> (HittingSetInstance, BtreeInstance) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut draw_sets = |n: usize| -> Vec<BTreeSet<EdgeId>> {
        (0..n)
            .map(|_| (0..6).map(|_| EdgeId(rng.gen_range(0..universe))).collect())
            .collect()
    };
    let failure_sets = draw_sets(n_fail);
    let reroute_sets = draw_sets(n_reroute);
    let candidates: BTreeSet<EdgeId> = failure_sets.iter().flatten().copied().collect();
    let bitset = HittingSetInstance {
        failure_sets: failure_sets
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect(),
        reroute_sets: reroute_sets
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect(),
        candidates: candidates.iter().copied().collect::<EdgeBitSet>(),
        clusters: BTreeMap::new(),
    };
    let btree = BtreeInstance {
        failure_sets,
        reroute_sets,
        candidates,
    };
    (bitset, btree)
}

fn bench_hitting_set(c: &mut Criterion) {
    let (bitset, btree) = synthetic_pair(60, 40, 512, 11);
    // The two representations must agree before comparing their speed.
    assert_eq!(
        bitset.greedy(Weights::default()).hypothesis,
        greedy_btree(&btree, Weights::default()),
        "bitset greedy must match the BTreeSet reference"
    );
    let mut group = c.benchmark_group("hitting_set_btree_vs_bitset");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("btreeset", |b| {
        b.iter(|| greedy_btree(black_box(&btree), Weights::default()))
    });
    group.bench_function("bitset", |b| {
        b.iter(|| black_box(&bitset).greedy(Weights::default()))
    });
    group.finish();
}

/// Replica of the greedy *before* trace hooks existed: identical loop,
/// no recorder parameter at all. The `trace_overhead` group compares it
/// against the production `greedy_recorded` to guard the zero-cost claim:
/// with a `NoopRecorder`, the compiled-in event hooks must stay within
/// noise of this baseline.
fn greedy_bitset_untraced(inst: &HittingSetInstance, weights: Weights) -> Vec<EdgeId> {
    let mut unexplained_f: BTreeSet<usize> = (0..inst.failure_sets.len()).collect();
    let mut unexplained_r: BTreeSet<usize> = (0..inst.reroute_sets.len()).collect();
    let mut candidates = inst.candidates.clone();
    let mut hypothesis = Vec::new();
    let mut words_scanned: u64 = 0;

    let groups: BTreeMap<EdgeId, EdgeBitSet> = inst
        .clusters
        .iter()
        .map(|(&e, members)| {
            let mut g: EdgeBitSet = members.iter().copied().collect();
            g.insert(e);
            (e, g)
        })
        .collect();
    let hits = |set: &EdgeBitSet, e: EdgeId, words: &mut u64| -> bool {
        match groups.get(&e) {
            Some(g) => {
                *words += set.words().len().min(g.words().len()).max(1) as u64;
                set.intersects(g)
            }
            None => {
                *words += 1;
                set.contains(e)
            }
        }
    };

    #[allow(clippy::nonminimal_bool)] // mirrors the production greedy's condition
    while !candidates.is_empty() && !(unexplained_f.is_empty() && unexplained_r.is_empty()) {
        let mut best_score = 0u64;
        let mut best: Vec<EdgeId> = Vec::new();
        for e in candidates.iter() {
            let cf = unexplained_f
                .iter()
                .filter(|&&i| hits(&inst.failure_sets[i], e, &mut words_scanned))
                .count() as u64;
            let cr = unexplained_r
                .iter()
                .filter(|&&i| hits(&inst.reroute_sets[i], e, &mut words_scanned))
                .count() as u64;
            let score = u64::from(weights.a) * cf + u64::from(weights.b) * cr;
            match score.cmp(&best_score) {
                Ordering::Greater => {
                    best_score = score;
                    best = vec![e];
                }
                Ordering::Equal if score > 0 => best.push(e),
                _ => {}
            }
        }
        if best_score == 0 {
            break;
        }
        for e in best {
            unexplained_f.retain(|&i| !hits(&inst.failure_sets[i], e, &mut words_scanned));
            unexplained_r.retain(|&i| !hits(&inst.reroute_sets[i], e, &mut words_scanned));
            candidates.remove(e);
            hypothesis.push(e);
        }
    }
    black_box(words_scanned);
    hypothesis
}

fn bench_trace_overhead(c: &mut Criterion) {
    let (bitset, _) = synthetic_pair(60, 40, 512, 11);
    let noop = RecorderHandle::noop();
    let (tracing, tracer) = RecorderHandle::tracing();
    assert_eq!(
        bitset.greedy_recorded(Weights::default(), &noop).hypothesis,
        greedy_bitset_untraced(&bitset, Weights::default()),
        "untraced replica must match the production greedy"
    );
    let mut group = c.benchmark_group("trace_overhead");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("untraced", |b| {
        b.iter(|| greedy_bitset_untraced(black_box(&bitset), Weights::default()))
    });
    group.bench_function("noop", |b| {
        b.iter(|| black_box(&bitset).greedy_recorded(Weights::default(), &noop))
    });
    group.bench_function("tracing", |b| {
        let _scope = netdiag_obs::trial_scope(0, 0);
        b.iter(|| black_box(&bitset).greedy_recorded(Weights::default(), &tracing))
    });
    group.finish();
    drop(tracer);
}

fn bench_trials_parallel(c: &mut Criterion) {
    let fc = FigureConfig::quick();
    let net = fc.internet();
    let cfg = RunConfig::default();
    let mut group = c.benchmark_group("trials_parallel_speedup");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(8));
    group.bench_function("sequential", |b| {
        b.iter(|| collect_trials_sequential(&net, &cfg, &fc))
    });
    group.bench_function("parallel", |b| b.iter(|| collect_trials(&net, &cfg, &fc)));
    group.finish();
}

criterion_group!(
    benches,
    bench_sim_clone,
    bench_hitting_set,
    bench_trace_overhead,
    bench_trials_parallel
);
criterion_main!(benches);
