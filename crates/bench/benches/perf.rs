//! Performance benchmarks for the copy-on-write / bitset / parallelism
//! work:
//!
//! * `sim_clone_vs_snapshot` — deep-copying the 165-AS simulator vs the
//!   CoW `Sim::clone` (Arc bumps), plus the failure/rollback costs the
//!   trial runner actually pays: the full-reconvergence round trip
//!   (`snapshot_fail_restore`, PR3 semantics on the PR3 worst-case
//!   link), the incremental round trip (`incremental_fail_restore`,
//!   delta-SPF + scoped replay on the median-blast-radius probed link,
//!   plus a `_worst` variant on the PR3 link), and the two costs those
//!   round trips conflate, reported separately (`restore_only`,
//!   `reconverge_only`);
//! * `hitting_set_btree_vs_bitset` — the greedy hitting set on the dense
//!   `EdgeBitSet` representation vs a faithful `BTreeSet<EdgeId>`
//!   reference (the representation this PR replaced);
//! * `trace_overhead` — the production greedy with a `NoopRecorder` vs a
//!   hook-free replica (the zero-cost guard scripts/bench.sh enforces)
//!   and vs a live `TraceRecorder`;
//! * `trials_parallel_speedup` — `collect_trials` (worker pool with
//!   per-worker persistent scratch sims, incremental reconvergence and
//!   the replay memo) vs `collect_trials_sequential` (the frozen PR3
//!   reference: fresh clone + full reconvergence per trial) at
//!   2 placements x 100 failures.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use netdiag_bench::Fixture;
use netdiag_experiments::figures::{collect_trials, collect_trials_sequential, FigureConfig};
use netdiag_experiments::runner::RunConfig;
use netdiag_obs::RecorderHandle;
use netdiagnoser::{EdgeBitSet, EdgeId, HittingSetInstance, Weights};

/// The probed link whose failure generates the median number of BGP
/// messages — the cost of a *typical* trial draw.
///
/// The first traceroute link (`traceroutes[0].links()[0]`) used by the
/// PR3-era benches is a sensor's own uplink: failing it withdraws the
/// sensor's prefix network-wide, a blast radius ~3x the probed-link
/// median. It stays the subject of `snapshot_fail_restore` so BENCH
/// files remain comparable, while the `incremental_*` benches measure
/// the representative draw the trial runner actually samples. Message
/// counts are deterministic, so so is the link choice.
fn median_probed_link(fx: &Fixture) -> netdiag_topology::LinkId {
    let probed = netdiag_experiments::sampling::probed_links(&fx.mesh);
    let mut costed: Vec<(u64, netdiag_topology::LinkId)> = probed
        .iter()
        .map(|&l| {
            let mut s = fx.sim.clone();
            let before = s.bgp_messages();
            s.fail_link(l);
            (s.bgp_messages() - before, l)
        })
        .collect();
    costed.sort();
    costed[costed.len() / 2].1
}

fn bench_sim_clone(c: &mut Criterion) {
    let fx = Fixture::paper_scale();
    let link = fx.mesh.traceroutes[0].links()[0];
    let typical = median_probed_link(&fx);
    let mut group = c.benchmark_group("sim_clone_vs_snapshot");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("deep_clone", |b| b.iter(|| fx.sim.deep_clone()));
    group.bench_function("cow_clone", |b| b.iter(|| fx.sim.clone()));
    group.bench_function("deep_clone_fail_link", |b| {
        b.iter(|| {
            let mut s = fx.sim.deep_clone();
            s.fail_link(black_box(link));
            s
        })
    });
    // Round trips on a persistent scratch sim, the shape the trial
    // runner drives. `snapshot_fail_restore` keeps its PR3 semantics
    // (full per-AS SPF recompute + whole-AS refresh) AND its PR3 link
    // (worst case) so BENCH_PR*.json files stay comparable; the
    // `incremental_*` benches run the production path (delta-SPF +
    // scoped BGP replay) on the median-blast-radius probed link (see
    // `median_probed_link`), with `_worst` on the PR3 link for contrast.
    let mut scratch = fx.sim.clone();
    let snap = scratch.snapshot();
    group.bench_function("snapshot_fail_restore", |b| {
        b.iter(|| {
            scratch.fail_links_full(&[black_box(link)]);
            scratch.restore(&snap);
        })
    });
    let mut scratch_inc = fx.sim.clone();
    let snap_inc = scratch_inc.snapshot();
    group.bench_function("incremental_fail_restore", |b| {
        b.iter(|| {
            scratch_inc.fail_link(black_box(typical));
            scratch_inc.restore(&snap_inc);
        })
    });
    group.bench_function("incremental_fail_restore_worst", |b| {
        b.iter(|| {
            scratch_inc.fail_link(black_box(link));
            scratch_inc.restore(&snap_inc);
        })
    });
    // The round trips conflate rollback with reconvergence; these report
    // each cost alone (the setup half runs untimed).
    let snap_base = fx.sim.snapshot();
    group.bench_function("restore_only", |b| {
        b.iter_batched(
            || {
                let mut s = fx.sim.clone();
                s.fail_link(typical);
                s
            },
            |mut s| {
                s.restore(&snap_base);
                s
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("reconverge_only", |b| {
        b.iter_batched(
            || fx.sim.clone(),
            |mut s| {
                s.fail_link(black_box(typical));
                s
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The pre-bitset representation: plain ordered sets of edge ids.
struct BtreeInstance {
    failure_sets: Vec<BTreeSet<EdgeId>>,
    reroute_sets: Vec<BTreeSet<EdgeId>>,
    candidates: BTreeSet<EdgeId>,
}

/// Faithful replica of the greedy on the `BTreeSet` representation
/// (no clusters — the synthetic instance has none), kept as the bench
/// baseline after the production code moved to `EdgeBitSet`.
fn greedy_btree(inst: &BtreeInstance, weights: Weights) -> Vec<EdgeId> {
    let mut unexplained_f: BTreeSet<usize> = (0..inst.failure_sets.len()).collect();
    let mut unexplained_r: BTreeSet<usize> = (0..inst.reroute_sets.len()).collect();
    let mut candidates = inst.candidates.clone();
    let mut hypothesis = Vec::new();
    #[allow(clippy::nonminimal_bool)] // mirrors the production greedy's condition
    while !candidates.is_empty() && !(unexplained_f.is_empty() && unexplained_r.is_empty()) {
        let mut best_score = 0u64;
        let mut best: Vec<EdgeId> = Vec::new();
        for &e in &candidates {
            let cf = unexplained_f
                .iter()
                .filter(|&&i| inst.failure_sets[i].contains(&e))
                .count() as u64;
            let cr = unexplained_r
                .iter()
                .filter(|&&i| inst.reroute_sets[i].contains(&e))
                .count() as u64;
            let score = u64::from(weights.a) * cf + u64::from(weights.b) * cr;
            match score.cmp(&best_score) {
                Ordering::Greater => {
                    best_score = score;
                    best = vec![e];
                }
                Ordering::Equal if score > 0 => best.push(e),
                _ => {}
            }
        }
        if best_score == 0 {
            break;
        }
        for e in best {
            unexplained_f.retain(|&i| !inst.failure_sets[i].contains(&e));
            unexplained_r.retain(|&i| !inst.reroute_sets[i].contains(&e));
            candidates.remove(&e);
            hypothesis.push(e);
        }
    }
    hypothesis
}

fn synthetic_pair(
    n_fail: usize,
    n_reroute: usize,
    universe: u32,
    seed: u64,
) -> (HittingSetInstance, BtreeInstance) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut draw_sets = |n: usize| -> Vec<BTreeSet<EdgeId>> {
        (0..n)
            .map(|_| (0..6).map(|_| EdgeId(rng.gen_range(0..universe))).collect())
            .collect()
    };
    let failure_sets = draw_sets(n_fail);
    let reroute_sets = draw_sets(n_reroute);
    let candidates: BTreeSet<EdgeId> = failure_sets.iter().flatten().copied().collect();
    let bitset = HittingSetInstance {
        failure_sets: failure_sets
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect(),
        reroute_sets: reroute_sets
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect(),
        candidates: candidates.iter().copied().collect::<EdgeBitSet>(),
        clusters: BTreeMap::new(),
    };
    let btree = BtreeInstance {
        failure_sets,
        reroute_sets,
        candidates,
    };
    (bitset, btree)
}

fn bench_hitting_set(c: &mut Criterion) {
    let (bitset, btree) = synthetic_pair(60, 40, 512, 11);
    // The two representations must agree before comparing their speed.
    assert_eq!(
        bitset.greedy(Weights::default()).hypothesis,
        greedy_btree(&btree, Weights::default()),
        "bitset greedy must match the BTreeSet reference"
    );
    let mut group = c.benchmark_group("hitting_set_btree_vs_bitset");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("btreeset", |b| {
        b.iter(|| greedy_btree(black_box(&btree), Weights::default()))
    });
    group.bench_function("bitset", |b| {
        b.iter(|| black_box(&bitset).greedy(Weights::default()))
    });
    group.finish();
}

/// Replica of the greedy *before* trace hooks existed: identical loop,
/// no recorder parameter at all. The `trace_overhead` group compares it
/// against the production `greedy_recorded` to guard the zero-cost claim:
/// with a `NoopRecorder`, the compiled-in event hooks must stay within
/// noise of this baseline.
fn greedy_bitset_untraced(inst: &HittingSetInstance, weights: Weights) -> Vec<EdgeId> {
    let mut unexplained_f: BTreeSet<usize> = (0..inst.failure_sets.len()).collect();
    let mut unexplained_r: BTreeSet<usize> = (0..inst.reroute_sets.len()).collect();
    let mut candidates = inst.candidates.clone();
    let mut hypothesis = Vec::new();
    let mut words_scanned: u64 = 0;

    let groups: BTreeMap<EdgeId, EdgeBitSet> = inst
        .clusters
        .iter()
        .map(|(&e, members)| {
            let mut g: EdgeBitSet = members.iter().copied().collect();
            g.insert(e);
            (e, g)
        })
        .collect();
    let hits = |set: &EdgeBitSet, e: EdgeId, words: &mut u64| -> bool {
        match groups.get(&e) {
            Some(g) => {
                *words += set.words().len().min(g.words().len()).max(1) as u64;
                set.intersects(g)
            }
            None => {
                *words += 1;
                set.contains(e)
            }
        }
    };

    #[allow(clippy::nonminimal_bool)] // mirrors the production greedy's condition
    while !candidates.is_empty() && !(unexplained_f.is_empty() && unexplained_r.is_empty()) {
        let mut best_score = 0u64;
        let mut best: Vec<EdgeId> = Vec::new();
        for e in candidates.iter() {
            let cf = unexplained_f
                .iter()
                .filter(|&&i| hits(&inst.failure_sets[i], e, &mut words_scanned))
                .count() as u64;
            let cr = unexplained_r
                .iter()
                .filter(|&&i| hits(&inst.reroute_sets[i], e, &mut words_scanned))
                .count() as u64;
            let score = u64::from(weights.a) * cf + u64::from(weights.b) * cr;
            match score.cmp(&best_score) {
                Ordering::Greater => {
                    best_score = score;
                    best = vec![e];
                }
                Ordering::Equal if score > 0 => best.push(e),
                _ => {}
            }
        }
        if best_score == 0 {
            break;
        }
        for e in best {
            unexplained_f.retain(|&i| !hits(&inst.failure_sets[i], e, &mut words_scanned));
            unexplained_r.retain(|&i| !hits(&inst.reroute_sets[i], e, &mut words_scanned));
            candidates.remove(e);
            hypothesis.push(e);
        }
    }
    black_box(words_scanned);
    hypothesis
}

fn bench_trace_overhead(c: &mut Criterion) {
    let (bitset, _) = synthetic_pair(60, 40, 512, 11);
    let noop = RecorderHandle::noop();
    let (tracing, tracer) = RecorderHandle::tracing();
    assert_eq!(
        bitset.greedy_recorded(Weights::default(), &noop).hypothesis,
        greedy_bitset_untraced(&bitset, Weights::default()),
        "untraced replica must match the production greedy"
    );
    let mut group = c.benchmark_group("trace_overhead");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("untraced", |b| {
        b.iter(|| greedy_bitset_untraced(black_box(&bitset), Weights::default()))
    });
    group.bench_function("noop", |b| {
        b.iter(|| black_box(&bitset).greedy_recorded(Weights::default(), &noop))
    });
    group.bench_function("tracing", |b| {
        let _scope = netdiag_obs::trial_scope(0, 0);
        b.iter(|| black_box(&bitset).greedy_recorded(Weights::default(), &tracing))
    });
    group.finish();
    drop(tracer);
}

fn bench_live_metrics_overhead(c: &mut Criterion) {
    // The serve request mix per iteration — a counter bump, a histogram
    // observation, a span record and a gauge raise/lower — through the
    // disabled NoopRecorder handle vs the lock-free LiveRecorder. The
    // bench.sh gate holds the live leg within 2x of the noop dispatch.
    let noop = RecorderHandle::noop();
    let (live, registry) = RecorderHandle::live();
    let mut group = c.benchmark_group("live_metrics_overhead");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for (label, handle) in [("noop", &noop), ("live", &live)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                for i in 0..64u64 {
                    let h = black_box(handle);
                    h.add(netdiag_obs::names::SERVE_REQUESTS, 1);
                    h.observe(netdiag_obs::names::SERVE_CLIENT_LATENCY, i * 977);
                    h.record_span(netdiag_obs::names::SERVE_PHASE_DIAGNOSE, i * 31);
                    h.gauge_add(netdiag_obs::names::SERVE_QUEUE_DEPTH, 1);
                    h.gauge_sub(netdiag_obs::names::SERVE_QUEUE_DEPTH, 1);
                }
            })
        });
    }
    // The acceptance pair: one LiveRecorder counter bump vs one actual
    // NoopRecorder virtual dispatch (not the enabled-gated short
    // circuit, which compiles to a single flag load).
    let noop_sink: std::sync::Arc<dyn netdiag_obs::Recorder> =
        std::sync::Arc::new(netdiag_obs::NoopRecorder);
    group.bench_function("dispatch", |b| {
        b.iter(|| {
            for _ in 0..64u64 {
                black_box(&noop_sink).add(netdiag_obs::names::SERVE_REQUESTS, black_box(1));
            }
        })
    });
    let live_sink: std::sync::Arc<dyn netdiag_obs::Recorder> = registry.clone();
    group.bench_function("bump", |b| {
        b.iter(|| {
            for _ in 0..64u64 {
                black_box(&live_sink).add(netdiag_obs::names::SERVE_REQUESTS, black_box(1));
            }
        })
    });
    group.finish();
    // The registry really collected: the live leg must not be dead code.
    assert!(
        registry
            .snapshot()
            .counter(netdiag_obs::names::SERVE_REQUESTS)
            > 0
    );
}

fn bench_trials_parallel(c: &mut Criterion) {
    // Scale where the trial pool, the per-worker scratch sims and the
    // replay memo actually pay off (the quick 3x5 grid of earlier BENCH
    // files was too small to amortize anything — both legs spent their
    // time in per-placement setup).
    let fc = FigureConfig {
        placements: 2,
        failures_per_placement: 100,
        ..FigureConfig::default()
    };
    let net = fc.internet();
    let cfg = RunConfig::default();
    let mut group = c.benchmark_group("trials_parallel_speedup");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(20));
    group.bench_function("sequential", |b| {
        b.iter(|| collect_trials_sequential(&net, &cfg, &fc))
    });
    group.bench_function("parallel", |b| b.iter(|| collect_trials(&net, &cfg, &fc)));
    group.finish();
}

criterion_group!(
    benches,
    bench_sim_clone,
    bench_hitting_set,
    bench_trace_overhead,
    bench_live_metrics_overhead,
    bench_trials_parallel
);
criterion_main!(benches);
