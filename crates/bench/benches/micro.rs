//! Micro-benchmarks of the substrates: topology generation, IGP SPF, BGP
//! convergence and reconvergence, the traceroute mesh, the diagnosis
//! algorithms, and the greedy hitting-set core.

use std::collections::{BTreeMap, BTreeSet};

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use netdiag_bench::Fixture;
use netdiag_experiments::bridge::{observations, TruthIpToAs};
use netdiag_igp::{Igp, LinkState};
use netdiag_netsim::probe_mesh;
use netdiag_topology::builders::{build_internet, InternetConfig};
use netdiagnoser::{nd_edge, tomo, EdgeBitSet, EdgeId, HittingSetInstance, Weights};

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("topology_generate_165as", |b| {
        b.iter(|| build_internet(black_box(&InternetConfig::default())))
    });

    let fx = Fixture::paper_scale();
    let topology = fx.sim.topology_arc();
    let links = LinkState::all_up(&topology);
    group.bench_function("igp_full_spf_all_ases", |b| {
        b.iter(|| Igp::compute(black_box(&topology), black_box(&links)))
    });

    group.bench_function("bgp_converge_10_prefixes", |b| {
        b.iter(|| {
            let mut sim = netdiag_netsim::Sim::new(topology.clone());
            sim.converge_for(&fx.sensors.as_ids());
            sim
        })
    });

    // Reconvergence after a failing inter-domain link (the per-trial cost).
    let failing = fx.mesh.traceroutes[0].links()[1];
    group.bench_function("bgp_reconverge_one_link", |b| {
        b.iter(|| {
            let mut broken = fx.sim.clone();
            broken.fail_link(black_box(failing));
            broken
        })
    });

    group.bench_function("traceroute_full_mesh_90", |b| {
        b.iter(|| probe_mesh(&fx.sim, &fx.sensors, &BTreeSet::new()))
    });
    group.finish();
}

fn bench_diagnosis(c: &mut Criterion) {
    let mut group = c.benchmark_group("diagnosis");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    let fx = Fixture::paper_scale();
    let topology = fx.sim.topology_arc();

    // A broken mesh for realistic diagnosis input.
    let victim = fx.sensors.sensors()[0];
    let uplink = topology.router(victim.router).links[0];
    let mut broken = fx.sim.clone();
    broken.fail_link(uplink);
    let after = probe_mesh(&broken, &fx.sensors, &BTreeSet::new());
    let obs = observations(&fx.sensors, &fx.mesh, &after);
    let ip2as = TruthIpToAs {
        topology: &topology,
    };

    group.bench_function("tomo", |b| b.iter(|| tomo(black_box(&obs), &ip2as)));
    group.bench_function("nd_edge", |b| {
        b.iter(|| nd_edge(black_box(&obs), &ip2as, Weights::default()))
    });
    group.finish();
}

/// A synthetic hitting-set instance with many overlapping sets.
fn synthetic_instance(n_sets: usize, set_size: usize, universe: u32) -> HittingSetInstance {
    let mut rng = StdRng::seed_from_u64(7);
    let mut failure_sets = Vec::new();
    let mut candidates = EdgeBitSet::new();
    for _ in 0..n_sets {
        let set: EdgeBitSet = (0..set_size)
            .map(|_| EdgeId(rng.gen_range(0..universe)))
            .collect();
        candidates.extend(set.iter());
        failure_sets.push(set);
    }
    HittingSetInstance {
        failure_sets,
        reroute_sets: Vec::new(),
        candidates,
        clusters: BTreeMap::new(),
    }
}

fn bench_hitting_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("hitting_set");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for (sets, size) in [(30usize, 10usize), (100, 20), (300, 30)] {
        let inst = synthetic_instance(sets, size, 500);
        group.bench_function(format!("greedy_{sets}sets_{size}links"), |b| {
            b.iter(|| inst.greedy(Weights::default()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_substrates,
    bench_diagnosis,
    bench_hitting_set,
    bench_scaling
);
criterion_main!(benches);

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    // Whole-pipeline cost (generate + converge 10 prefixes) as the
    // internet grows.
    for n_stub in [35usize, 70, 140] {
        group.bench_function(format!("generate_and_converge_{n_stub}stubs"), |b| {
            b.iter(|| {
                let net = build_internet(&InternetConfig {
                    n_tier2: (n_stub / 7).max(2),
                    n_stub,
                    ..InternetConfig::default()
                });
                let topology = std::sync::Arc::new(net.topology.clone());
                let spec: Vec<_> = net.stubs[..10.min(n_stub)]
                    .iter()
                    .map(|s| (s.as_id, s.routers[0]))
                    .collect();
                let sensors = netdiag_netsim::SensorSet::place(&topology, &spec);
                let mut sim = netdiag_netsim::Sim::new(topology);
                sensors.register(&mut sim);
                sim.converge_for(&sensors.as_ids());
                sim.bgp_messages()
            })
        });
    }
    group.finish();
}
