//! Design-choice ablations flagged in DESIGN.md:
//!
//! * greedy vs exact minimum hitting set (quality is checked in tests; the
//!   bench shows why the paper uses the greedy — exact search cost grows
//!   exponentially with instance size);
//! * the ND-edge scoring weights `(a, b)` — cost of the sweep the paper
//!   fixes at `a = b = 1`.

use std::collections::{BTreeMap, BTreeSet};

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use netdiag_bench::Fixture;
use netdiag_experiments::bridge::{observations, TruthIpToAs};
use netdiag_netsim::probe_mesh;
use netdiagnoser::{nd_edge, EdgeBitSet, EdgeId, HittingSetInstance, Weights};

fn small_instance(n_sets: usize, universe: u32, seed: u64) -> HittingSetInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failure_sets = Vec::new();
    let mut candidates = EdgeBitSet::new();
    for _ in 0..n_sets {
        let set: EdgeBitSet = (0..4).map(|_| EdgeId(rng.gen_range(0..universe))).collect();
        candidates.extend(set.iter());
        failure_sets.push(set);
    }
    HittingSetInstance {
        failure_sets,
        reroute_sets: Vec::new(),
        candidates,
        clusters: BTreeMap::new(),
    }
}

fn bench_greedy_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_vs_exact");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for n_sets in [4usize, 8, 12] {
        let inst = small_instance(n_sets, 24, 3);
        group.bench_function(format!("greedy_{n_sets}sets"), |b| {
            b.iter(|| inst.greedy(Weights::default()))
        });
        group.bench_function(format!("exact_{n_sets}sets"), |b| {
            b.iter(|| inst.exact(black_box(n_sets)))
        });
    }
    group.finish();
}

fn bench_weight_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ndedge_weights");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    let fx = Fixture::paper_scale();
    let topology = fx.sim.topology_arc();
    // A two-link failure producing both failed and rerouted paths.
    let links: Vec<_> = fx.mesh.traceroutes[0].links();
    let mut broken = fx.sim.clone();
    broken.fail_links(&links[..2.min(links.len())]);
    let after = probe_mesh(&broken, &fx.sensors, &BTreeSet::new());
    let obs = observations(&fx.sensors, &fx.mesh, &after);
    let ip2as = TruthIpToAs {
        topology: &topology,
    };
    for (a, b_w) in [(1u32, 0u32), (1, 1), (1, 2), (2, 1)] {
        group.bench_function(format!("a{a}_b{b_w}"), |bch| {
            bch.iter(|| nd_edge(black_box(&obs), &ip2as, Weights { a, b: b_w }))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy_vs_exact, bench_weight_sweep);
criterion_main!(benches);
