//! One benchmark group per paper figure: each measures the time to
//! regenerate the figure's data at a reduced trial count (the shapes are
//! produced at full scale by the `figures` binary; these benches prove the
//! pipelines run and show their cost).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use netdiag_experiments::figures::{self, FigureConfig};

/// Tiny-but-complete config: every scenario still runs end to end.
fn bench_config() -> FigureConfig {
    FigureConfig {
        placements: 1,
        failures_per_placement: 3,
        ..FigureConfig::default()
    }
}

fn bench_figures(c: &mut Criterion) {
    let fc = bench_config();
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(5));
    group.bench_function("fig05_diagnosability", |b| {
        b.iter(|| figures::fig5::run(&fc))
    });
    group.bench_function("fig06_tomo", |b| b.iter(|| figures::fig6::run(&fc)));
    group.bench_function("fig07_ndedge_sensitivity", |b| {
        b.iter(|| figures::fig7::run(&fc))
    });
    group.bench_function("fig08_ndedge_specificity", |b| {
        b.iter(|| figures::fig8::run(&fc))
    });
    group.bench_function("fig09_diag_vs_spec", |b| b.iter(|| figures::fig9::run(&fc)));
    group.bench_function("fig10_ndbgpigp", |b| b.iter(|| figures::fig10::run(&fc)));
    group.bench_function("fig11_blocked", |b| b.iter(|| figures::fig11::run(&fc)));
    group.bench_function("fig12_lg_fraction", |b| b.iter(|| figures::fig12::run(&fc)));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
