//! Shared helpers for the Criterion benchmarks (see `benches/`).
//!
//! * `benches/figures.rs` — regenerates each paper figure at reduced trial
//!   counts (the `figures` binary runs the full paper scale).
//! * `benches/micro.rs` — micro-benchmarks of the substrates: SPF, BGP
//!   convergence, traceroute mesh, greedy hitting set.
//! * `benches/ablations.rs` — design-choice ablations: greedy vs exact
//!   hitting set, ND-edge scoring weights.

use std::collections::BTreeSet;
use std::sync::Arc;

use netdiag_netsim::{probe_mesh, ProbeMesh, SensorSet, Sim};
use netdiag_topology::builders::{build_internet, Internet, InternetConfig};

/// A converged full-scale simulator with ten sensors — the common fixture.
pub struct Fixture {
    /// Generated internet (roles + topology).
    pub net: Internet,
    /// Converged healthy simulator.
    pub sim: Sim,
    /// The placed sensors.
    pub sensors: SensorSet,
    /// Healthy full-mesh traceroutes.
    pub mesh: ProbeMesh,
}

impl Fixture {
    /// Builds the paper-scale fixture (165 ASes, 10 sensors).
    pub fn paper_scale() -> Fixture {
        let net = build_internet(&InternetConfig::default());
        let topology = Arc::new(net.topology.clone());
        let spec: Vec<_> = net.stubs[..10]
            .iter()
            .map(|s| (s.as_id, s.routers[0]))
            .collect();
        let sensors = SensorSet::place(&topology, &spec);
        let mut sim = Sim::new(topology);
        sensors.register(&mut sim);
        sim.converge_for(&sensors.as_ids());
        let mesh = probe_mesh(&sim, &sensors, &BTreeSet::new());
        Fixture {
            net,
            sim,
            sensors,
            mesh,
        }
    }
}
