//! The daemon: listeners, connection handling and the diagnose path.
//!
//! One thread accepts connections; each connection gets a thread that
//! reads request lines and writes response lines in order (per-client
//! FIFO). Diagnose requests are dispatched onto the bounded
//! [`WorkerPool`] — concurrency comes from multiple connections, and
//! overload surfaces as an immediate error response instead of latency
//! collapse. Shutdown (remote `shutdown` op or [`ServerHandle::stop`])
//! drains in-flight work and joins every thread.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use netdiag_experiments::explain::{explain, ExplainFilter};
use netdiag_obs::{names, Recorder, RecorderHandle, TraceRecorder};
use netdiagnoser::text::{
    parse_feed, parse_sensors, parse_snapshot, RecordedIpToAs, RecordedLookingGlass,
};
use netdiagnoser::{
    DiagnosticsConfig, IpToAs, NetDiagnoser, NetDiagnoserBuilder, Observations, RoutingFeed,
};

use crate::baseline::{Baseline, ServeConfig};
use crate::pool::WorkerPool;
use crate::proto::{self, diagnose_response, error_response, ok_response, DiagnoseJob, Request};

/// Where the daemon listens.
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    Tcp(String),
    /// A Unix domain socket path (removed on shutdown).
    Unix(PathBuf),
}

/// The endpoint actually bound (TCP resolves port 0 here).
#[derive(Clone, Debug)]
enum Bound {
    Tcp(SocketAddr),
    Unix(PathBuf),
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // Responses are written payload-then-newline; without
                // nodelay, Nagle + delayed ACK stalls every reply.
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// One accepted client connection (TCP or Unix).
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    /// Closes both halves, unblocking any thread parked in a read.
    fn shutdown_both(&self) {
        match self {
            Conn::Tcp(s) => drop(s.shutdown(std::net::Shutdown::Both)),
            Conn::Unix(s) => drop(s.shutdown(std::net::Shutdown::Both)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Shared daemon state: the baseline, the pool, counters and the stop
/// flag.
struct ServerCtx {
    baseline: Arc<Baseline>,
    pool: WorkerPool,
    recorder: RecorderHandle,
    bound: Bound,
    /// Socket closers for every live connection; drained at shutdown to
    /// unblock threads parked in client reads.
    conns: Mutex<Vec<Conn>>,
    stop: AtomicBool,
    seq: AtomicU64,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl ServerCtx {
    fn note_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.recorder.add(names::SERVE_ERRORS, 1);
    }

    /// Wakes the blocking `accept` so the loop can observe `stop`.
    fn wake_accept(&self) {
        match &self.bound {
            Bound::Tcp(addr) => drop(TcpStream::connect(addr)),
            Bound::Unix(path) => drop(UnixStream::connect(path)),
        }
    }
}

/// The daemon entry point; see [`Server::start`].
pub struct Server;

impl Server {
    /// Prepares the baseline, binds `endpoint` and starts serving on
    /// background threads. Returns immediately with a handle.
    pub fn start(config: ServeConfig, endpoint: Endpoint) -> Result<ServerHandle, String> {
        let baseline = Arc::new(Baseline::prepare(&config));
        Server::start_with_baseline(config, endpoint, baseline)
    }

    /// [`start`](Self::start) with an already-prepared baseline (shared
    /// by tests and the bench harness to avoid re-converging).
    pub fn start_with_baseline(
        config: ServeConfig,
        endpoint: Endpoint,
        baseline: Arc<Baseline>,
    ) -> Result<ServerHandle, String> {
        let (listener, bound) = match &endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
                let local = l
                    .local_addr()
                    .map_err(|e| format!("local_addr on {addr}: {e}"))?;
                (Listener::Tcp(l), Bound::Tcp(local))
            }
            Endpoint::Unix(path) => {
                // A stale socket file from a crashed daemon blocks bind.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)
                    .map_err(|e| format!("bind {}: {e}", path.display()))?;
                (Listener::Unix(l), Bound::Unix(path.clone()))
            }
        };
        let pool = WorkerPool::new(
            config.resolved_workers(),
            config.resolved_queue(),
            config.recorder.clone(),
        );
        let ctx = Arc::new(ServerCtx {
            baseline,
            pool,
            recorder: config.recorder.clone(),
            bound,
            conns: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        let accept_ctx = Arc::clone(&ctx);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_ctx));
        Ok(ServerHandle {
            ctx,
            accept: Some(accept),
        })
    }
}

fn accept_loop(listener: &Listener, ctx: &Arc<ServerCtx>) {
    let handlers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if ctx.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if ctx.stop.load(Ordering::SeqCst) {
            break; // the wake-up connection, or late arrivals
        }
        if let Ok(closer) = conn.try_clone() {
            ctx.conns
                .lock()
                .expect("connection closer list mutex poisoned")
                .push(closer);
        }
        let conn_ctx = Arc::clone(ctx);
        let handle = std::thread::spawn(move || handle_connection(conn, &conn_ctx));
        handlers
            .lock()
            .expect("connection handle list mutex poisoned")
            .push(handle);
    }
    // Force-close every live connection: threads parked in a client
    // read would otherwise keep the join below waiting forever.
    {
        let mut conns = ctx
            .conns
            .lock()
            .expect("connection closer list mutex poisoned");
        for conn in conns.drain(..) {
            conn.shutdown_both();
        }
    }
    let joined: Vec<JoinHandle<()>> = {
        let mut handlers = handlers
            .lock()
            .expect("connection handle list mutex poisoned");
        handlers.drain(..).collect()
    };
    for handle in joined {
        let _ = handle.join();
    }
    ctx.pool.shutdown();
    if let Bound::Unix(path) = &ctx.bound {
        let _ = std::fs::remove_file(path);
    }
}

fn handle_connection(conn: Conn, ctx: &Arc<ServerCtx>) {
    ctx.connections.fetch_add(1, Ordering::Relaxed);
    ctx.recorder.add(names::SERVE_CONNECTIONS, 1);
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let mut writer = conn;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (response, initiate_shutdown) = respond(&line, ctx);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if initiate_shutdown {
            // Trip the flag only after the acknowledgement is on the
            // wire — the accept loop force-closes sockets on its way
            // out, and the client deserves its response first.
            ctx.stop.store(true, Ordering::SeqCst);
            ctx.wake_accept();
            break;
        }
        if ctx.stop.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Produces the response line for one request line; the boolean asks
/// the connection loop to start daemon shutdown after writing it.
fn respond(line: &str, ctx: &Arc<ServerCtx>) -> (String, bool) {
    ctx.requests.fetch_add(1, Ordering::Relaxed);
    ctx.recorder.add(names::SERVE_REQUESTS, 1);
    let request = match proto::parse_request(line) {
        Ok(request) => request,
        Err(e) => {
            ctx.note_error();
            return (error_response(0, &e), false);
        }
    };
    match request {
        Request::Ping { id } => (ok_response(id, "\"pong\":true"), false),
        Request::Stats { id } => {
            let extra = format!(
                "\"stats\":{{\"connections\":{},\"requests\":{},\"errors\":{},\"diagnoses\":{}}}",
                ctx.connections.load(Ordering::Relaxed),
                ctx.requests.load(Ordering::Relaxed),
                ctx.errors.load(Ordering::Relaxed),
                ctx.seq.load(Ordering::Relaxed),
            );
            (ok_response(id, &extra), false)
        }
        Request::Shutdown { id } => (ok_response(id, "\"stopping\":true"), true),
        Request::Diagnose { id, job } => {
            let (reply_tx, reply_rx) = mpsc::channel();
            let job_ctx = Arc::clone(ctx);
            let seq = ctx.seq.fetch_add(1, Ordering::Relaxed);
            let submitted = ctx.pool.submit(Box::new(move || {
                let response = match handle_diagnose(&job_ctx, seq, id, &job) {
                    Ok(response) => response,
                    Err(e) => {
                        job_ctx.note_error();
                        error_response(id, &e)
                    }
                };
                let _ = reply_tx.send(response);
            }));
            let response = match submitted {
                Ok(()) => reply_rx
                    .recv()
                    .unwrap_or_else(|_| error_response(id, "worker dropped the request")),
                Err(full) => {
                    ctx.note_error();
                    error_response(id, &full.to_string())
                }
            };
            (response, false)
        }
    }
}

/// Runs one diagnosis on a worker thread: resolve inputs against the
/// baseline, build an owned diagnoser, structure the report, optionally
/// replay the request's own trace into a narrative.
fn handle_diagnose(
    ctx: &Arc<ServerCtx>,
    seq: u64,
    id: u64,
    job: &DiagnoseJob,
) -> Result<String, String> {
    let _span = ctx.recorder.span(names::SERVE_REQUEST);
    let _trial = netdiag_obs::trial_scope(seq as u32, 0);
    let _phase = netdiag_obs::phase_scope(netdiag_obs::Phase::Diagnose);

    // Per-request trace stream for `explain`, fanned out on top of the
    // daemon's own metrics sink.
    let tracer = job.explain.then(|| Arc::new(TraceRecorder::new()));
    let recorder = match &tracer {
        Some(t) => RecorderHandle::fanout(vec![
            ctx.recorder.sink(),
            Arc::clone(t) as Arc<dyn Recorder>,
        ]),
        None => ctx.recorder.clone(),
    };

    let baseline = &ctx.baseline;
    let sensors = match &job.sensors {
        Some(text) => parse_sensors(text).map_err(|e| format!("sensors: {e}"))?,
        None => baseline.sensors().to_vec(),
    };
    let before = match &job.before {
        Some(text) => parse_snapshot(text).map_err(|e| format!("before: {e}"))?,
        None => baseline.before().clone(),
    };
    let after = parse_snapshot(&job.after).map_err(|e| format!("after: {e}"))?;
    let obs = Observations {
        sensors,
        before,
        after,
    };
    let feed = match &job.feed {
        Some(text) => parse_feed(text).map_err(|e| format!("feed: {e}"))?,
        None => RoutingFeed::default(),
    };
    let config = DiagnosticsConfig {
        algorithm: job.algo,
        min_confidence: job.min_confidence,
        max_issues: job.max_issues,
        ..Default::default()
    };
    let builder = NetDiagnoser::builder()
        .config(config)
        .routing_feed(feed)
        .recorder(recorder);
    let builder: NetDiagnoserBuilder = match &job.lg {
        Some(text) => {
            let lg = RecordedLookingGlass::parse(text).map_err(|e| format!("lg: {e}"))?;
            builder.looking_glass(lg)
        }
        None => builder.looking_glass(baseline.looking_glass()),
    };
    let ip2as: Box<dyn IpToAs> = match &job.ip2as {
        Some(text) => Box::new(RecordedIpToAs::parse(text).map_err(|e| format!("ip2as: {e}"))?),
        None => Box::new(baseline.ip_to_as()),
    };

    let report = builder
        .build()
        .report(&obs, ip2as.as_ref())
        .map_err(|e| e.to_string())?;
    let narrative = tracer.map(|t| {
        explain(
            &t.to_jsonl(),
            &ExplainFilter {
                placement: Some(seq as u32),
                trial: Some(0),
                algo: None,
            },
        )
        .unwrap_or_else(|e| format!("no narrative: {e}"))
    });
    Ok(diagnose_response(
        id,
        &report.to_json(),
        &report.to_string(),
        narrative.as_deref(),
    ))
}

/// A running daemon.
///
/// Dropping the handle without calling [`stop`](Self::stop) or
/// [`join`](Self::join) stops the daemon (blocking until threads
/// drain), so tests cannot leak listeners.
pub struct ServerHandle {
    ctx: Arc<ServerCtx>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound TCP address (`None` for Unix endpoints) — resolves
    /// port 0 requests.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.ctx.bound {
            Bound::Tcp(addr) => Some(*addr),
            Bound::Unix(_) => None,
        }
    }

    /// The baseline this daemon serves (tests and the bench harness
    /// sample request scenarios from it).
    pub fn baseline(&self) -> &Arc<Baseline> {
        &self.ctx.baseline
    }

    /// Requests shutdown and blocks until every thread has drained.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    /// Blocks until the daemon is shut down remotely (`shutdown` op).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    fn stop_inner(&mut self) {
        self.ctx.stop.store(true, Ordering::SeqCst);
        self.ctx.wake_accept();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_inner();
        }
    }
}
