//! The daemon: listeners, connection handling and the diagnose path.
//!
//! One thread accepts connections; each connection gets a thread that
//! reads request lines and writes response lines in order (per-client
//! FIFO). Diagnose requests are dispatched onto the bounded
//! [`WorkerPool`] — concurrency comes from multiple connections, and
//! overload surfaces as an immediate error response instead of latency
//! collapse. Shutdown (remote `shutdown` op or [`ServerHandle::stop`])
//! drains in-flight work and joins every thread.
//!
//! With telemetry mounted (the default), every `serve.*` metric lands in
//! a lock-free [`LiveRecorder`] that the `stats` protocol verb snapshots
//! at any instant; a ticker thread rolls its window ring once a second
//! so stats can answer rates and percentiles over the last N seconds.
//! Each diagnose request is timed per phase (queue wait, snapshot
//! restore, diagnose, render), and when a [`FlightRecorder`] is mounted,
//! requests breaching the latency SLO dump their full causal trace.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use netdiag_experiments::explain::{explain, ExplainFilter};
use netdiag_obs::{
    names, LiveRecorder, Recorder, RecorderHandle, RunReport, TraceRecorder, WindowDelta,
};
use netdiagnoser::text::{
    parse_feed, parse_sensors, parse_snapshot, RecordedIpToAs, RecordedLookingGlass,
};
use netdiagnoser::{
    DiagnosticsConfig, IpToAs, NetDiagnoser, NetDiagnoserBuilder, Observations, RoutingFeed,
};

use crate::baseline::{Baseline, ServeConfig};
use crate::flight::{FlightRecorder, PhaseNanos};
use crate::pool::WorkerPool;
use crate::proto::{
    self, diagnose_response, error_response, ok_response, push_json_string, DiagnoseJob, Request,
};

/// Events each worker's always-on flight ring retains (ample for one
/// request's causal trace; overflow is reported in the dump).
const FLIGHT_RING_CAPACITY: usize = 1 << 14;

thread_local! {
    /// One bounded trace ring per worker thread, reused (cleared) across
    /// requests so the always-on flight recorder never allocates a fresh
    /// ring on the request path.
    static FLIGHT_RING: Arc<TraceRecorder> =
        Arc::new(TraceRecorder::with_capacity(FLIGHT_RING_CAPACITY));
}

/// Where the daemon listens.
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    Tcp(String),
    /// A Unix domain socket path (removed on shutdown).
    Unix(PathBuf),
}

/// The endpoint actually bound (TCP resolves port 0 here).
#[derive(Clone, Debug)]
enum Bound {
    Tcp(SocketAddr),
    Unix(PathBuf),
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // Responses are written payload-then-newline; without
                // nodelay, Nagle + delayed ACK stalls every reply.
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// One accepted client connection (TCP or Unix).
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    /// Closes both halves, unblocking any thread parked in a read.
    fn shutdown_both(&self) {
        match self {
            Conn::Tcp(s) => drop(s.shutdown(std::net::Shutdown::Both)),
            Conn::Unix(s) => drop(s.shutdown(std::net::Shutdown::Both)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Shared daemon state: the baseline, the pool, counters and the stop
/// flag.
struct ServerCtx {
    baseline: Arc<Baseline>,
    pool: WorkerPool,
    recorder: RecorderHandle,
    /// The live telemetry registry behind the `stats` verb (None only
    /// when the config opts out of telemetry).
    live: Option<Arc<LiveRecorder>>,
    /// Tail-sampling trace dumps for SLO-breaching requests.
    flight: Option<Arc<FlightRecorder>>,
    started: Instant,
    bound: Bound,
    /// Socket closers for every live connection; drained at shutdown to
    /// unblock threads parked in client reads.
    conns: Mutex<Vec<Conn>>,
    stop: AtomicBool,
    seq: AtomicU64,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl ServerCtx {
    fn note_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.recorder.add(names::SERVE_ERRORS, 1);
    }

    /// Wakes the blocking `accept` so the loop can observe `stop`.
    fn wake_accept(&self) {
        match &self.bound {
            Bound::Tcp(addr) => drop(TcpStream::connect(addr)),
            Bound::Unix(path) => drop(UnixStream::connect(path)),
        }
    }
}

/// The daemon entry point; see [`Server::start`].
pub struct Server;

impl Server {
    /// Prepares the baseline, binds `endpoint` and starts serving on
    /// background threads. Returns immediately with a handle.
    pub fn start(config: ServeConfig, endpoint: Endpoint) -> Result<ServerHandle, String> {
        let baseline = Arc::new(Baseline::prepare(&config));
        Server::start_with_baseline(config, endpoint, baseline)
    }

    /// [`start`](Self::start) with an already-prepared baseline (shared
    /// by tests and the bench harness to avoid re-converging).
    pub fn start_with_baseline(
        config: ServeConfig,
        endpoint: Endpoint,
        baseline: Arc<Baseline>,
    ) -> Result<ServerHandle, String> {
        let (listener, bound) = match &endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
                let local = l
                    .local_addr()
                    .map_err(|e| format!("local_addr on {addr}: {e}"))?;
                (Listener::Tcp(l), Bound::Tcp(local))
            }
            Endpoint::Unix(path) => {
                // A stale socket file from a crashed daemon blocks bind.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)
                    .map_err(|e| format!("bind {}: {e}", path.display()))?;
                (Listener::Unix(l), Bound::Unix(path.clone()))
            }
        };
        // The live plane replaces the old global-mutex recorder: all
        // `serve.*` metrics take the lock-free path, with the caller's
        // own sink fanned in only when it actually collects something.
        let live = config.telemetry.then(|| Arc::new(LiveRecorder::new()));
        let flight = match &config.flight_path {
            Some(path) => Some(Arc::new(
                FlightRecorder::create(path, config.slo_micros)
                    .map_err(|e| format!("flight recorder {}: {e}", path.display()))?,
            )),
            None => None,
        };
        let recorder = match &live {
            Some(live) if config.recorder.enabled() || config.recorder.trace_enabled() => {
                RecorderHandle::fanout(vec![
                    config.recorder.sink(),
                    Arc::clone(live) as Arc<dyn Recorder>,
                ])
            }
            Some(live) => RecorderHandle::new(Arc::clone(live) as Arc<dyn Recorder>),
            None => config.recorder.clone(),
        };
        let pool = WorkerPool::new(
            config.resolved_workers(),
            config.resolved_queue(),
            recorder.clone(),
        );
        let ctx = Arc::new(ServerCtx {
            baseline,
            pool,
            recorder,
            live,
            flight,
            started: Instant::now(),
            bound,
            conns: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        let accept_ctx = Arc::clone(&ctx);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_ctx));
        // The window ticker: rolls the live ring once a second so stats
        // can answer "over the last N seconds" queries. Polls the stop
        // flag at 100ms so shutdown never waits a full tick.
        let ticker = ctx.live.as_ref().map(|live| {
            let live = Arc::clone(live);
            let tick_ctx = Arc::clone(&ctx);
            std::thread::spawn(move || {
                let mut ticks = 0u32;
                while !tick_ctx.stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(100));
                    ticks += 1;
                    if ticks.is_multiple_of(10) {
                        live.roll();
                    }
                }
            })
        });
        Ok(ServerHandle {
            ctx,
            accept: Some(accept),
            ticker,
        })
    }
}

fn accept_loop(listener: &Listener, ctx: &Arc<ServerCtx>) {
    let handlers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if ctx.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if ctx.stop.load(Ordering::SeqCst) {
            break; // the wake-up connection, or late arrivals
        }
        if let Ok(closer) = conn.try_clone() {
            ctx.conns
                .lock()
                .expect("connection closer list mutex poisoned")
                .push(closer);
        }
        let conn_ctx = Arc::clone(ctx);
        let handle = std::thread::spawn(move || handle_connection(conn, &conn_ctx));
        handlers
            .lock()
            .expect("connection handle list mutex poisoned")
            .push(handle);
    }
    // Force-close every live connection: threads parked in a client
    // read would otherwise keep the join below waiting forever.
    {
        let mut conns = ctx
            .conns
            .lock()
            .expect("connection closer list mutex poisoned");
        for conn in conns.drain(..) {
            conn.shutdown_both();
        }
    }
    let joined: Vec<JoinHandle<()>> = {
        let mut handlers = handlers
            .lock()
            .expect("connection handle list mutex poisoned");
        handlers.drain(..).collect()
    };
    for handle in joined {
        let _ = handle.join();
    }
    ctx.pool.shutdown();
    if let Bound::Unix(path) = &ctx.bound {
        let _ = std::fs::remove_file(path);
    }
}

fn handle_connection(conn: Conn, ctx: &Arc<ServerCtx>) {
    ctx.connections.fetch_add(1, Ordering::Relaxed);
    ctx.recorder.add(names::SERVE_CONNECTIONS, 1);
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let mut writer = conn;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (response, initiate_shutdown) = respond(&line, ctx);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if initiate_shutdown {
            // Trip the flag only after the acknowledgement is on the
            // wire — the accept loop force-closes sockets on its way
            // out, and the client deserves its response first.
            ctx.stop.store(true, Ordering::SeqCst);
            ctx.wake_accept();
            break;
        }
        if ctx.stop.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Produces the response line for one request line; the boolean asks
/// the connection loop to start daemon shutdown after writing it.
fn respond(line: &str, ctx: &Arc<ServerCtx>) -> (String, bool) {
    ctx.requests.fetch_add(1, Ordering::Relaxed);
    ctx.recorder.add(names::SERVE_REQUESTS, 1);
    let request = match proto::parse_request(line) {
        Ok(request) => request,
        Err(e) => {
            ctx.note_error();
            return (error_response(0, &e), false);
        }
    };
    match request {
        Request::Ping { id } => (ok_response(id, "\"pong\":true"), false),
        Request::Stats {
            id,
            prom,
            window_secs,
        } => (stats_response(ctx, id, prom, window_secs), false),
        Request::Health { id } => (
            ok_response(
                id,
                &format!(
                    "\"health\":\"ready\",\"uptime_secs\":{}",
                    ctx.started.elapsed().as_secs()
                ),
            ),
            false,
        ),
        Request::Shutdown { id } => (ok_response(id, "\"stopping\":true"), true),
        Request::Diagnose { id, job } => {
            let (reply_tx, reply_rx) = mpsc::channel();
            let job_ctx = Arc::clone(ctx);
            let seq = ctx.seq.fetch_add(1, Ordering::Relaxed);
            let enqueued = Instant::now();
            let submitted = ctx.pool.submit(Box::new(move || {
                let _ = reply_tx.send(serve_diagnose(&job_ctx, seq, id, &job, enqueued));
            }));
            let response = match submitted {
                Ok(()) => reply_rx
                    .recv()
                    .unwrap_or_else(|_| error_response(id, "worker dropped the request")),
                Err(full) => {
                    ctx.note_error();
                    error_response(id, &full.to_string())
                }
            };
            (response, false)
        }
    }
}

/// The `stats` verb: legacy counters plus (with the live plane mounted)
/// health, the full compacted report, the requested rate/percentile
/// window and the optional Prometheus exposition — all on one line.
fn stats_response(ctx: &ServerCtx, id: u64, prom: bool, window_secs: u64) -> String {
    let flight_dumps = ctx.flight.as_ref().map_or(0, |f| f.dumps());
    let mut extra = format!(
        "\"health\":\"ready\",\"uptime_secs\":{},\
         \"stats\":{{\"connections\":{},\"requests\":{},\"errors\":{},\"diagnoses\":{},\
         \"flight_dumps\":{flight_dumps}}}",
        ctx.started.elapsed().as_secs(),
        ctx.connections.load(Ordering::Relaxed),
        ctx.requests.load(Ordering::Relaxed),
        ctx.errors.load(Ordering::Relaxed),
        ctx.seq.load(Ordering::Relaxed),
    );
    if let Some(live) = &ctx.live {
        let report = live.snapshot();
        // The report serializer pretty-prints; the line protocol needs
        // one line. Raw newlines only ever appear as formatting (string
        // contents are escaped), so stripping them is safe.
        extra.push_str(",\"report\":");
        extra.push_str(&report.to_json().replace('\n', ""));
        if let Some(delta) = live.windowed(Duration::from_secs(window_secs.max(1))) {
            extra.push_str(",\"window\":");
            push_window_json(&mut extra, &delta);
        }
        if prom {
            extra.push_str(",\"prom\":");
            push_json_string(&mut extra, &report.to_prometheus());
        }
    }
    ok_response(id, &extra)
}

/// Renders a [`WindowDelta`] as a JSON object: per-counter rates in
/// increments/sec plus per-series percentile summaries over the window.
fn push_window_json(out: &mut String, delta: &WindowDelta) {
    out.push_str(&format!("{{\"secs\":{:.3},\"rates\":{{", delta.secs));
    let mut first = true;
    for (name, rate) in &delta.rates {
        if !first {
            out.push(',');
        }
        first = false;
        push_json_string(out, name);
        out.push_str(&format!(":{rate:.3}"));
    }
    out.push_str("},");
    for (section, series, unit) in [
        ("histograms", &delta.histograms, ""),
        ("spans", &delta.spans, "_ns"),
    ] {
        out.push_str(&format!("\"{section}\":{{"));
        let mut first = true;
        for (name, s) in series {
            if !first {
                out.push(',');
            }
            first = false;
            push_json_string(out, name);
            out.push_str(&format!(
                ":{{\"count\":{},\"p50{unit}\":{},\"p90{unit}\":{},\"p99{unit}\":{}}}",
                s.count,
                s.percentile(50),
                s.percentile(90),
                s.percentile(99),
            ));
        }
        out.push_str(if section == "spans" { "}" } else { "}," });
    }
    out.push('}');
}

/// Nanoseconds elapsed since `start`, saturating.
fn elapsed_nanos(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The worker-side shell around one diagnose request: records the queue
/// wait, runs the diagnosis with per-phase timing, and hands the result
/// to the flight recorder for the tail-sampling decision.
fn serve_diagnose(
    ctx: &Arc<ServerCtx>,
    seq: u64,
    id: u64,
    job: &DiagnoseJob,
    enqueued: Instant,
) -> String {
    let queue_nanos = elapsed_nanos(enqueued);
    ctx.recorder
        .record_span(names::SERVE_PHASE_QUEUE, queue_nanos);
    let _span = ctx.recorder.span(names::SERVE_REQUEST);
    // This worker's always-on ring, cleared so a dump holds exactly this
    // request's causal trace.
    let ring = ctx.flight.as_ref().map(|_| FLIGHT_RING.with(Arc::clone));
    if let Some(ring) = &ring {
        ring.clear();
    }
    let mut phases = PhaseNanos {
        queue: queue_nanos,
        ..PhaseNanos::default()
    };
    let started = Instant::now();
    let response = match handle_diagnose(ctx, seq, id, job, ring.as_ref(), &mut phases) {
        Ok(response) => response,
        Err(e) => {
            ctx.note_error();
            error_response(id, &e)
        }
    };
    if let (Some(flight), Some(ring)) = (&ctx.flight, &ring) {
        let latency = queue_nanos.saturating_add(elapsed_nanos(started));
        if flight.observe_request(id, seq, latency, &phases, ring) {
            ctx.recorder.add(names::SERVE_FLIGHT_DUMPS, 1);
        }
    }
    response
}

/// Runs one diagnosis on a worker thread: resolve inputs against the
/// baseline, build an owned diagnoser, structure the report, optionally
/// replay the request's own trace into a narrative.
fn handle_diagnose(
    ctx: &Arc<ServerCtx>,
    seq: u64,
    id: u64,
    job: &DiagnoseJob,
    ring: Option<&Arc<TraceRecorder>>,
    phases: &mut PhaseNanos,
) -> Result<String, String> {
    let _trial = netdiag_obs::trial_scope(seq as u32, 0);
    let _phase = netdiag_obs::phase_scope(netdiag_obs::Phase::Diagnose);

    // Per-request trace streams fanned out on top of the daemon's own
    // metrics sink: one for `explain` (fresh, becomes the narrative),
    // one for the flight recorder (the worker's reusable ring).
    let tracer = job.explain.then(|| Arc::new(TraceRecorder::new()));
    let recorder = if tracer.is_some() || ring.is_some() {
        let mut sinks: Vec<Arc<dyn Recorder>> = vec![ctx.recorder.sink()];
        if let Some(t) = &tracer {
            sinks.push(Arc::clone(t) as Arc<dyn Recorder>);
        }
        if let Some(r) = ring {
            sinks.push(Arc::clone(r) as Arc<dyn Recorder>);
        }
        RecorderHandle::fanout(sinks)
    } else {
        ctx.recorder.clone()
    };

    let restore_started = Instant::now();
    let baseline = &ctx.baseline;
    let sensors = match &job.sensors {
        Some(text) => parse_sensors(text).map_err(|e| format!("sensors: {e}"))?,
        None => baseline.sensors().to_vec(),
    };
    let before = match &job.before {
        Some(text) => parse_snapshot(text).map_err(|e| format!("before: {e}"))?,
        None => baseline.before().clone(),
    };
    let after = parse_snapshot(&job.after).map_err(|e| format!("after: {e}"))?;
    let obs = Observations {
        sensors,
        before,
        after,
    };
    let feed = match &job.feed {
        Some(text) => parse_feed(text).map_err(|e| format!("feed: {e}"))?,
        None => RoutingFeed::default(),
    };
    let config = DiagnosticsConfig {
        algorithm: job.algo,
        min_confidence: job.min_confidence,
        max_issues: job.max_issues,
        ..Default::default()
    };
    let builder = NetDiagnoser::builder()
        .config(config)
        .routing_feed(feed)
        .recorder(recorder);
    let builder: NetDiagnoserBuilder = match &job.lg {
        Some(text) => {
            let lg = RecordedLookingGlass::parse(text).map_err(|e| format!("lg: {e}"))?;
            builder.looking_glass(lg)
        }
        None => builder.looking_glass(baseline.looking_glass()),
    };
    let ip2as: Box<dyn IpToAs> = match &job.ip2as {
        Some(text) => Box::new(RecordedIpToAs::parse(text).map_err(|e| format!("ip2as: {e}"))?),
        None => Box::new(baseline.ip_to_as()),
    };
    phases.restore = elapsed_nanos(restore_started);
    ctx.recorder
        .record_span(names::SERVE_PHASE_RESTORE, phases.restore);

    let diagnose_started = Instant::now();
    let report = builder
        .build()
        .report(&obs, ip2as.as_ref())
        .map_err(|e| e.to_string())?;
    phases.diagnose = elapsed_nanos(diagnose_started);
    ctx.recorder
        .record_span(names::SERVE_PHASE_DIAGNOSE, phases.diagnose);

    let render_started = Instant::now();
    let narrative = tracer.map(|t| {
        explain(
            &t.to_jsonl(),
            &ExplainFilter {
                placement: Some(seq as u32),
                trial: Some(0),
                algo: None,
            },
        )
        .unwrap_or_else(|e| format!("no narrative: {e}"))
    });
    let response = diagnose_response(
        id,
        &report.to_json(),
        &report.to_string(),
        narrative.as_deref(),
    );
    phases.render = elapsed_nanos(render_started);
    ctx.recorder
        .record_span(names::SERVE_PHASE_RENDER, phases.render);
    Ok(response)
}

/// A running daemon.
///
/// Dropping the handle without calling [`stop`](Self::stop) or
/// [`join`](Self::join) stops the daemon (blocking until threads
/// drain), so tests cannot leak listeners.
pub struct ServerHandle {
    ctx: Arc<ServerCtx>,
    accept: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound TCP address (`None` for Unix endpoints) — resolves
    /// port 0 requests.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.ctx.bound {
            Bound::Tcp(addr) => Some(*addr),
            Bound::Unix(_) => None,
        }
    }

    /// The baseline this daemon serves (tests and the bench harness
    /// sample request scenarios from it).
    pub fn baseline(&self) -> &Arc<Baseline> {
        &self.ctx.baseline
    }

    /// A point-in-time snapshot of the live telemetry registry (`None`
    /// when the config opted out of telemetry). What `--profile` writes
    /// and the bench harness reads — the in-process mirror of the
    /// `stats` verb.
    pub fn live_report(&self) -> Option<RunReport> {
        self.ctx.live.as_ref().map(|live| live.snapshot())
    }

    /// The live telemetry registry itself (`None` when the config opted
    /// out). Clone the [`Arc`] to snapshot after
    /// [`join`](Self::join)/[`stop`](Self::stop) consume the handle —
    /// `--profile` does exactly that.
    pub fn live(&self) -> Option<Arc<LiveRecorder>> {
        self.ctx.live.clone()
    }

    /// Flight-recorder dumps written so far (`None` when no flight
    /// recorder is mounted).
    pub fn flight_dumps(&self) -> Option<u64> {
        self.ctx.flight.as_ref().map(|f| f.dumps())
    }

    /// Requests shutdown and blocks until every thread has drained.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    /// Blocks until the daemon is shut down remotely (`shutdown` op).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(ticker) = self.ticker.take() {
            let _ = ticker.join();
        }
    }

    fn stop_inner(&mut self) {
        self.ctx.stop.store(true, Ordering::SeqCst);
        self.ctx.wake_accept();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(ticker) = self.ticker.take() {
            let _ = ticker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_inner();
        }
    }
}
