//! Closed-loop load harness behind `netdiag-serve bench`.
//!
//! Starts an in-process daemon on a loopback port, samples one
//! failure scenario from its baseline, then drives it with N client
//! threads each issuing M diagnose requests back-to-back. Every
//! response is validated (protocol `ok`, parseable
//! [`DiagnosticReport`](netdiagnoser::DiagnosticReport)); per-request
//! wall latency lands both in the shared in-memory recorder (as
//! `serve.client_latency`, nanoseconds) and in an exact sorted sample
//! for the reported percentiles.

use std::sync::Arc;
use std::time::Instant;

use netdiag_obs::{names, RecorderHandle, RunReport};
use netdiagnoser::{Algorithm, DiagnosticReport};

use crate::baseline::{Baseline, ServeConfig};
use crate::client::Client;
use crate::proto::{write_diagnose_request, DiagnoseJob};
use crate::server::{Endpoint, Server};

/// Load-harness parameters.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per client (closed loop: next request after the
    /// previous response).
    pub requests: usize,
    /// Baseline + scenario seed.
    pub seed: u64,
    /// Worker threads for the daemon pool (`0` = available parallelism).
    pub workers: usize,
    /// Daemon queue capacity (`0` = default).
    pub queue: usize,
    /// Algorithm every request runs.
    pub algo: Algorithm,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            clients: 8,
            requests: 25,
            seed: 1,
            workers: 0,
            queue: 0,
            algo: Algorithm::default(),
        }
    }
}

/// What one bench run measured.
pub struct BenchResults {
    /// Requests that completed with a valid report.
    pub completed: u64,
    /// Requests that errored (protocol errors, overload rejections,
    /// unparseable reports).
    pub errors: u64,
    /// Wall time of the request phase (excludes baseline convergence).
    pub elapsed_secs: f64,
    /// Completed requests per second.
    pub req_per_sec: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 90th-percentile request latency, microseconds.
    pub p90_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// The daemon's full metrics report (serve.* counters, queue-depth
    /// and latency histograms, diagnosis counters) for the PR 5 sinks.
    pub report: RunReport,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted_ns.len() as f64 - 1.0)).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)] as f64 / 1_000.0
}

/// Runs the harness to completion. Errors are setup failures (bind,
/// scenario sampling); request-level failures are counted, not fatal.
pub fn run(config: &BenchConfig) -> Result<BenchResults, String> {
    let (recorder, sink) = RecorderHandle::in_memory();
    let serve = ServeConfig {
        seed: config.seed,
        workers: config.workers,
        queue: config.queue,
        recorder: recorder.clone(),
        ..Default::default()
    };
    let baseline = Arc::new(Baseline::prepare(&serve));
    let scenario = baseline
        .sample_scenario(config.seed)
        .ok_or("no sampled failure broke a path; try another seed")?;
    let handle =
        Server::start_with_baseline(serve, Endpoint::Tcp("127.0.0.1:0".to_owned()), baseline)?;
    let addr = handle
        .tcp_addr()
        .ok_or("TCP endpoint did not resolve an address")?
        .to_string();

    let job = DiagnoseJob {
        algo: config.algo,
        after: scenario.after,
        feed: Some(scenario.feed),
        ..Default::default()
    };

    let started = Instant::now();
    let mut threads = Vec::new();
    for client_idx in 0..config.clients.max(1) {
        let addr = addr.clone();
        let recorder = recorder.clone();
        let requests = config.requests.max(1);
        let line = write_diagnose_request(client_idx as u64, &job);
        threads.push(std::thread::spawn(move || {
            let mut latencies_ns: Vec<u64> = Vec::with_capacity(requests);
            let mut errors = 0u64;
            let Ok(mut client) = Client::connect_tcp(&addr) else {
                return (latencies_ns, requests as u64);
            };
            for _ in 0..requests {
                let t0 = Instant::now();
                let response = client.request_line(&line);
                let ns = t0.elapsed().as_nanos() as u64;
                match response {
                    Ok(response) if response_is_valid(&response) => {
                        recorder.observe(names::SERVE_CLIENT_LATENCY, ns);
                        latencies_ns.push(ns);
                    }
                    _ => errors += 1,
                }
            }
            (latencies_ns, errors)
        }));
    }

    let mut latencies_ns: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for thread in threads {
        let (lats, errs) = thread
            .join()
            .map_err(|_| "a bench client thread panicked".to_owned())?;
        latencies_ns.extend(lats);
        errors += errs;
    }
    let elapsed_secs = started.elapsed().as_secs_f64();
    handle.stop();

    latencies_ns.sort_unstable();
    let completed = latencies_ns.len() as u64;
    Ok(BenchResults {
        completed,
        errors,
        elapsed_secs,
        req_per_sec: if elapsed_secs > 0.0 {
            completed as f64 / elapsed_secs
        } else {
            0.0
        },
        p50_us: percentile_us(&latencies_ns, 50.0),
        p90_us: percentile_us(&latencies_ns, 90.0),
        p99_us: percentile_us(&latencies_ns, 99.0),
        report: sink.report(),
    })
}

/// A response counts as completed when the protocol says `ok` and the
/// embedded report parses against the current schema.
fn response_is_valid(line: &str) -> bool {
    let Ok(v) = netdiag_obs::json::parse(line) else {
        return false;
    };
    if !matches!(v.get("ok"), Some(netdiag_obs::json::Json::Bool(true))) {
        return false;
    }
    match v.get("report") {
        Some(report) => DiagnosticReport::from_json_value(report).is_ok(),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bench_completes_all_requests() {
        let results = run(&BenchConfig {
            clients: 2,
            requests: 3,
            seed: 5,
            workers: 2,
            ..Default::default()
        })
        .expect("bench harness runs to completion");
        assert_eq!(results.completed, 6);
        assert_eq!(results.errors, 0);
        assert!(results.p99_us >= results.p50_us);
        assert!(results
            .report
            .histogram(names::SERVE_CLIENT_LATENCY)
            .is_some());
    }
}
