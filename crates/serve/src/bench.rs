//! Closed-loop load harness behind `netdiag-serve bench`.
//!
//! Starts an in-process daemon on a loopback port, samples one
//! failure scenario from its baseline, then drives it with N client
//! threads each issuing M diagnose requests back-to-back. Every
//! response is validated (protocol `ok`, parseable
//! [`DiagnosticReport`](netdiagnoser::DiagnosticReport)); per-request
//! wall latency lands both in a harness-side [`LiveRecorder`] (as
//! `serve.client_latency`, nanoseconds) and in an exact sorted sample
//! for the reported percentiles.
//!
//! The harness also reads the *server's* view: after the load phase it
//! fetches the daemon's `stats` snapshot over the wire and reports the
//! service-time percentiles (`serve.request`) next to the
//! client-observed ones — when client p99 diverges far above server
//! p99, requests are queueing, not slow. [`compare`] runs the whole
//! harness twice on one shared baseline (telemetry on, then off) to
//! measure what the live plane costs end to end.

use std::sync::Arc;
use std::time::Instant;

use netdiag_obs::json::Json;
use netdiag_obs::{names, LiveRecorder, RecorderHandle, RunReport};
use netdiagnoser::{Algorithm, DiagnosticReport};

use crate::baseline::{Baseline, ServeConfig};
use crate::client::Client;
use crate::proto::{write_diagnose_request, DiagnoseJob};
use crate::server::{Endpoint, Server};

/// Load-harness parameters.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per client (closed loop: next request after the
    /// previous response).
    pub requests: usize,
    /// Baseline + scenario seed.
    pub seed: u64,
    /// Worker threads for the daemon pool (`0` = available parallelism).
    pub workers: usize,
    /// Daemon queue capacity (`0` = default).
    pub queue: usize,
    /// Algorithm every request runs.
    pub algo: Algorithm,
    /// Mount the daemon's live telemetry plane (the production default;
    /// `false` is the overhead-comparison leg).
    pub telemetry: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            clients: 8,
            requests: 25,
            seed: 1,
            workers: 0,
            queue: 0,
            algo: Algorithm::default(),
            telemetry: true,
        }
    }
}

/// What one bench run measured.
pub struct BenchResults {
    /// Requests that completed with a valid report.
    pub completed: u64,
    /// Requests that errored (protocol errors, overload rejections,
    /// unparseable reports).
    pub errors: u64,
    /// Wall time of the request phase (excludes baseline convergence).
    pub elapsed_secs: f64,
    /// Completed requests per second.
    pub req_per_sec: f64,
    /// Median client-observed request latency, microseconds.
    pub p50_us: f64,
    /// 90th-percentile client-observed request latency, microseconds.
    pub p90_us: f64,
    /// 99th-percentile client-observed request latency, microseconds.
    pub p99_us: f64,
    /// Median server-side service time (`serve.request`, dequeue to
    /// serialized response), microseconds — from the daemon's `stats`
    /// snapshot fetched over the wire. Zero with telemetry off.
    pub server_p50_us: f64,
    /// 99th-percentile server-side service time, microseconds.
    pub server_p99_us: f64,
    /// The daemon's live metrics snapshot (serve.* counters, phase
    /// spans, the queue-depth gauge, diagnosis counters) merged with the
    /// harness's client-latency series.
    pub report: RunReport,
}

impl BenchResults {
    /// Does client-observed p99 run more than 2x above the server's
    /// service-time p99? If so, the bottleneck is queueing (pool or
    /// connection FIFO), not diagnosis work.
    pub fn queueing_divergence(&self) -> bool {
        self.server_p99_us > 0.0 && self.p99_us > 2.0 * self.server_p99_us
    }
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted_ns.len() as f64 - 1.0)).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)] as f64 / 1_000.0
}

/// Runs the harness to completion. Errors are setup failures (bind,
/// scenario sampling); request-level failures are counted, not fatal.
pub fn run(config: &BenchConfig) -> Result<BenchResults, String> {
    let baseline = Arc::new(Baseline::prepare(&serve_config(config)));
    run_with_baseline(config, baseline)
}

/// Rounds each [`compare`] leg runs. Best-of, not mean: a descheduled
/// run on a contended box halves one round's throughput, and that noise
/// would swamp the few-percent effect the telemetry gate measures. The
/// fastest round of each leg is the one least contaminated.
const COMPARE_ROUNDS: usize = 3;

/// Runs the harness with telemetry on and off on one shared baseline —
/// so the two legs differ only in the live plane — alternating the legs
/// [`COMPARE_ROUNDS`] times and keeping each leg's best round (same
/// thermal/scheduler conditions for both, noise suppressed by best-of).
/// Returns `(telemetry_on, telemetry_off)`; the throughput ratio between
/// them is what the telemetry overhead gate in bench.sh checks.
pub fn compare(config: &BenchConfig) -> Result<(BenchResults, BenchResults), String> {
    let baseline = Arc::new(Baseline::prepare(&serve_config(config)));
    let mut on: Option<BenchResults> = None;
    let mut off: Option<BenchResults> = None;
    for _ in 0..COMPARE_ROUNDS {
        for telemetry in [true, false] {
            let round = run_with_baseline(
                &BenchConfig {
                    telemetry,
                    ..config.clone()
                },
                Arc::clone(&baseline),
            )?;
            let best = if telemetry { &mut on } else { &mut off };
            if best
                .as_ref()
                .is_none_or(|b| round.req_per_sec > b.req_per_sec)
            {
                *best = Some(round);
            }
        }
    }
    match (on, off) {
        (Some(on), Some(off)) => Ok((on, off)),
        _ => Err("compare ran zero rounds".to_owned()),
    }
}

fn serve_config(config: &BenchConfig) -> ServeConfig {
    ServeConfig {
        seed: config.seed,
        workers: config.workers,
        queue: config.queue,
        telemetry: config.telemetry,
        recorder: RecorderHandle::noop(),
        ..Default::default()
    }
}

/// [`run`] against an already-converged baseline (shared across
/// [`compare`] legs).
pub fn run_with_baseline(
    config: &BenchConfig,
    baseline: Arc<Baseline>,
) -> Result<BenchResults, String> {
    // Client latencies aggregate into a harness-side live registry: the
    // bench is itself off the global-mutex recorder.
    let (client_recorder, client_live) = RecorderHandle::live();
    let scenario = baseline
        .sample_scenario(config.seed)
        .ok_or("no sampled failure broke a path; try another seed")?;
    let handle = Server::start_with_baseline(
        serve_config(config),
        Endpoint::Tcp("127.0.0.1:0".to_owned()),
        baseline,
    )?;
    let addr = handle
        .tcp_addr()
        .ok_or("TCP endpoint did not resolve an address")?
        .to_string();

    let job = DiagnoseJob {
        algo: config.algo,
        after: scenario.after,
        feed: Some(scenario.feed),
        ..Default::default()
    };

    let started = Instant::now();
    let mut threads = Vec::new();
    for client_idx in 0..config.clients.max(1) {
        let addr = addr.clone();
        let recorder = client_recorder.clone();
        let requests = config.requests.max(1);
        let line = write_diagnose_request(client_idx as u64, &job);
        threads.push(std::thread::spawn(move || {
            let mut latencies_ns: Vec<u64> = Vec::with_capacity(requests);
            let mut errors = 0u64;
            let Ok(mut client) = Client::connect_tcp(&addr) else {
                return (latencies_ns, requests as u64);
            };
            for _ in 0..requests {
                let t0 = Instant::now();
                let response = client.request_line(&line);
                let ns = t0.elapsed().as_nanos() as u64;
                match response {
                    Ok(response) if response_is_valid(&response) => {
                        recorder.observe(names::SERVE_CLIENT_LATENCY, ns);
                        latencies_ns.push(ns);
                    }
                    _ => errors += 1,
                }
            }
            (latencies_ns, errors)
        }));
    }

    let mut latencies_ns: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for thread in threads {
        let (lats, errs) = thread
            .join()
            .map_err(|_| "a bench client thread panicked".to_owned())?;
        latencies_ns.extend(lats);
        errors += errs;
    }
    let elapsed_secs = started.elapsed().as_secs_f64();
    // The server's own view, over the wire: exercises the stats verb
    // exactly as an operator would.
    let (server_p50_us, server_p99_us) = fetch_server_latency(&addr);
    let report = merged_report(&handle.live_report(), &client_live);
    handle.stop();

    latencies_ns.sort_unstable();
    let completed = latencies_ns.len() as u64;
    Ok(BenchResults {
        completed,
        errors,
        elapsed_secs,
        req_per_sec: if elapsed_secs > 0.0 {
            completed as f64 / elapsed_secs
        } else {
            0.0
        },
        p50_us: percentile_us(&latencies_ns, 50.0),
        p90_us: percentile_us(&latencies_ns, 90.0),
        p99_us: percentile_us(&latencies_ns, 99.0),
        server_p50_us,
        server_p99_us,
        report,
    })
}

/// Asks the daemon for its `stats` snapshot and pulls the
/// `serve.request` span percentiles out of the report (microseconds).
/// `(0, 0)` when the daemon serves no live report (telemetry off).
fn fetch_server_latency(addr: &str) -> (f64, f64) {
    let Ok(mut client) = Client::connect_tcp(addr) else {
        return (0.0, 0.0);
    };
    let Ok(response) = client.request_line(r#"{"op":"stats","id":0}"#) else {
        return (0.0, 0.0);
    };
    let Ok(v) = netdiag_obs::json::parse(&response) else {
        return (0.0, 0.0);
    };
    let span = v
        .get("report")
        .and_then(|r| r.get("spans"))
        .and_then(|s| s.get(names::SERVE_REQUEST));
    let pct = |key: &str| {
        span.and_then(|s| s.get(key))
            .and_then(Json::as_u64)
            .map_or(0.0, |ns| ns as f64 / 1_000.0)
    };
    (pct("p50_ns"), pct("p99_ns"))
}

/// The daemon's live snapshot with the harness's client-latency series
/// folded in (with telemetry off, the client series is all there is).
fn merged_report(server: &Option<RunReport>, client_live: &LiveRecorder) -> RunReport {
    let mut report = server.clone().unwrap_or_default();
    let client = client_live.snapshot();
    for (name, stats) in client.histograms {
        report.histograms.insert(name, stats);
    }
    report
}

/// A response counts as completed when the protocol says `ok` and the
/// embedded report parses against the current schema.
fn response_is_valid(line: &str) -> bool {
    let Ok(v) = netdiag_obs::json::parse(line) else {
        return false;
    };
    if !matches!(v.get("ok"), Some(netdiag_obs::json::Json::Bool(true))) {
        return false;
    }
    match v.get("report") {
        Some(report) => DiagnosticReport::from_json_value(report).is_ok(),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bench_completes_all_requests() {
        let results = run(&BenchConfig {
            clients: 2,
            requests: 3,
            seed: 5,
            workers: 2,
            ..Default::default()
        })
        .expect("bench harness runs to completion");
        assert_eq!(results.completed, 6);
        assert_eq!(results.errors, 0);
        assert!(results.p99_us >= results.p50_us);
        assert!(results
            .report
            .histogram(names::SERVE_CLIENT_LATENCY)
            .is_some());
        // The wire-fetched server-side view arrived, and the merged
        // report carries the daemon's own metrics (requests counter,
        // phase spans, the queue-depth gauge).
        assert!(results.server_p50_us > 0.0);
        assert!(results.server_p99_us >= results.server_p50_us);
        assert!(results.report.counter(names::SERVE_REQUESTS) >= 6);
        assert!(results.report.span(names::SERVE_PHASE_DIAGNOSE).is_some());
        assert!(results.report.gauge(names::SERVE_QUEUE_DEPTH).is_some());
        // Client-observed latency includes the server's service time.
        assert!(results.p50_us >= results.server_p50_us / 2.0);
    }
}
