//! The daemon's wire protocol: one JSON object per line, in both
//! directions.
//!
//! ## Requests
//!
//! ```json
//! {"op":"diagnose","id":1,"algo":"nd-bgpigp","after":"path 0 1 failed\n...",
//!  "feed":"withdraw 10.0.0.1 10.2.0.0/16\n","explain":true}
//! ```
//!
//! * `op` — `"diagnose"` (default), `"ping"`, `"stats"`, `"health"` or
//!   `"shutdown"`.
//! * `id` — echoed verbatim in the response (default `0`).
//! * `algo` — algorithm name (default `"nd-edge"`).
//! * `after` — the post-failure snapshot in the `after.txt` text format
//!   (required for `diagnose`: this is the uploaded probe matrix).
//! * `sensors`, `before` — optional sensor directory / `T-` snapshot
//!   texts; the daemon's converged baseline fills in whichever is
//!   missing.
//! * `feed` — optional routing-feed delta (`feed.txt` format; default:
//!   an empty feed).
//! * `lg` — optional recorded Looking Glass dump (`lg.txt` format;
//!   default: the baseline simulator answers queries live).
//! * `ip2as` — optional IP-to-AS map (`ip2as.txt` format; default: the
//!   baseline topology).
//! * `min_confidence`, `max_issues` — per-request
//!   [`DiagnosticsConfig`](netdiagnoser::DiagnosticsConfig) thresholds.
//! * `explain` — when `true`, the response carries a causal narrative
//!   replayed from the request's own trace stream.
//!
//! ## Responses
//!
//! ```json
//! {"id":1,"ok":true,"report":{...},"text":"=== NetDiagnoser report ===..."}
//! {"id":1,"ok":false,"error":"after: parse error ..."}
//! ```
//!
//! `report` is the versioned
//! [`DiagnosticReport`](netdiagnoser::DiagnosticReport) JSON; `text` is
//! its `Display` rendering, byte-identical to `netdiag diagnose` on the
//! same inputs.

use netdiag_obs::json::{parse, Json};
use netdiagnoser::Algorithm;

/// One parsed client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping {
        /// Echo id.
        id: u64,
    },
    /// Daemon telemetry snapshot: legacy counters, plus (when the live
    /// plane is mounted) the full metrics report, windowed rates and an
    /// optional Prometheus text exposition.
    Stats {
        /// Echo id.
        id: u64,
        /// Attach the Prometheus-style text exposition.
        prom: bool,
        /// Width of the rate/percentile window in seconds (default 10).
        window_secs: u64,
    },
    /// Health/readiness probe (cheaper than `stats`; the load harness
    /// and check.sh gate on it).
    Health {
        /// Echo id.
        id: u64,
    },
    /// Stop the daemon (answered before the listener closes).
    Shutdown {
        /// Echo id.
        id: u64,
    },
    /// Run a diagnosis.
    Diagnose {
        /// Echo id.
        id: u64,
        /// The diagnosis inputs.
        job: Box<DiagnoseJob>,
    },
}

/// The inputs of one diagnosis request (see the module docs for the
/// field semantics; `None` means "use the daemon's baseline default").
#[derive(Clone, Debug, Default)]
pub struct DiagnoseJob {
    /// Algorithm to run.
    pub algo: Algorithm,
    /// Post-failure snapshot text (required).
    pub after: String,
    /// Sensor directory text.
    pub sensors: Option<String>,
    /// Pre-failure snapshot text.
    pub before: Option<String>,
    /// Routing-feed delta text.
    pub feed: Option<String>,
    /// Recorded Looking Glass dump text.
    pub lg: Option<String>,
    /// IP-to-AS map text.
    pub ip2as: Option<String>,
    /// Minimum per-issue confidence to report.
    pub min_confidence: f64,
    /// Issue cap (`0` = unlimited).
    pub max_issues: usize,
    /// Attach a causal narrative to the response.
    pub explain: bool,
}

/// Parses one request line. Unknown fields are ignored (forward
/// compatibility); a missing or unknown `op` and missing required
/// fields are errors.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
    let id = v.get("id").and_then(Json::as_u64).unwrap_or(0);
    let op = v.get("op").and_then(Json::as_str).unwrap_or("diagnose");
    match op {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats {
            id,
            prom: matches!(v.get("prom"), Some(Json::Bool(true))),
            window_secs: v
                .get("window")
                .and_then(Json::as_u64)
                .filter(|&w| w > 0)
                .unwrap_or(10),
        }),
        "health" => Ok(Request::Health { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "diagnose" => {
            let text_field = |key: &str| -> Option<String> {
                v.get(key).and_then(Json::as_str).map(str::to_owned)
            };
            let algo = match v.get("algo").and_then(Json::as_str) {
                None => Algorithm::default(),
                Some(name) => name.parse::<Algorithm>()?,
            };
            let after = text_field("after")
                .ok_or_else(|| "diagnose needs \"after\" (the uploaded probe matrix)".to_owned())?;
            let num_field = |key: &str| -> Option<f64> {
                match v.get(key) {
                    Some(Json::Num(n)) => Some(*n),
                    _ => None,
                }
            };
            Ok(Request::Diagnose {
                id,
                job: Box::new(DiagnoseJob {
                    algo,
                    after,
                    sensors: text_field("sensors"),
                    before: text_field("before"),
                    feed: text_field("feed"),
                    lg: text_field("lg"),
                    ip2as: text_field("ip2as"),
                    min_confidence: num_field("min_confidence").unwrap_or(0.0),
                    max_issues: v.get("max_issues").and_then(Json::as_u64).unwrap_or(0) as usize,
                    explain: matches!(v.get("explain"), Some(Json::Bool(true))),
                }),
            })
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Serializes a diagnose request line from its parts (the client-side
/// mirror of [`parse_request`]; `None` fields are omitted).
pub fn write_diagnose_request(id: u64, job: &DiagnoseJob) -> String {
    let mut out = format!(
        "{{\"op\":\"diagnose\",\"id\":{id},\"algo\":\"{}\"",
        job.algo
    );
    let mut field = |key: &str, value: &Option<String>| {
        if let Some(text) = value {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            push_json_string(&mut out, text);
        }
    };
    field("sensors", &job.sensors);
    field("before", &job.before);
    field("after", &Some(job.after.clone()));
    field("feed", &job.feed);
    field("lg", &job.lg);
    field("ip2as", &job.ip2as);
    if job.min_confidence > 0.0 {
        out.push_str(&format!(",\"min_confidence\":{}", job.min_confidence));
    }
    if job.max_issues > 0 {
        out.push_str(&format!(",\"max_issues\":{}", job.max_issues));
    }
    if job.explain {
        out.push_str(",\"explain\":true");
    }
    out.push('}');
    out
}

/// A successful diagnose response line. `report_json` must already be
/// valid JSON (it is embedded verbatim).
pub fn diagnose_response(id: u64, report_json: &str, text: &str, explain: Option<&str>) -> String {
    let mut out = format!("{{\"id\":{id},\"ok\":true,\"report\":{report_json},\"text\":");
    push_json_string(&mut out, text);
    if let Some(narrative) = explain {
        out.push_str(",\"explain\":");
        push_json_string(&mut out, narrative);
    }
    out.push('}');
    out
}

/// An error response line.
pub fn error_response(id: u64, message: &str) -> String {
    let mut out = format!("{{\"id\":{id},\"ok\":false,\"error\":");
    push_json_string(&mut out, message);
    out.push('}');
    out
}

/// A bare `{"id":N,"ok":true, <extra>}` response (ping/stats/shutdown);
/// `extra` must be empty or a valid `"key":value,...` fragment.
pub fn ok_response(id: u64, extra: &str) -> String {
    if extra.is_empty() {
        format!("{{\"id\":{id},\"ok\":true}}")
    } else {
        format!("{{\"id\":{id},\"ok\":true,{extra}}}")
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_ops() {
        assert!(matches!(
            parse_request(r#"{"op":"ping","id":7}"#),
            Ok(Request::Ping { id: 7 })
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#),
            Ok(Request::Stats {
                id: 0,
                prom: false,
                window_secs: 10
            })
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats","id":3,"prom":true,"window":30}"#),
            Ok(Request::Stats {
                id: 3,
                prom: true,
                window_secs: 30
            })
        ));
        assert!(matches!(
            parse_request(r#"{"op":"health","id":9}"#),
            Ok(Request::Health { id: 9 })
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown","id":1}"#),
            Ok(Request::Shutdown { id: 1 })
        ));
        assert!(parse_request(r#"{"op":"nope"}"#).is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn diagnose_round_trips_through_its_writer() {
        let job = DiagnoseJob {
            algo: Algorithm::NdBgpIgp,
            after: "path 0 1 failed\n*\n".into(),
            feed: Some("withdraw 10.0.0.1 10.2.0.0/16\n".into()),
            min_confidence: 0.5,
            max_issues: 3,
            explain: true,
            ..Default::default()
        };
        let line = write_diagnose_request(42, &job);
        let Ok(Request::Diagnose { id, job: parsed }) = parse_request(&line) else {
            panic!("diagnose line must parse: {line}");
        };
        assert_eq!(id, 42);
        assert_eq!(parsed.algo, Algorithm::NdBgpIgp);
        assert_eq!(parsed.after, job.after);
        assert_eq!(parsed.feed, job.feed);
        assert_eq!(parsed.sensors, None);
        assert_eq!(parsed.min_confidence, 0.5);
        assert_eq!(parsed.max_issues, 3);
        assert!(parsed.explain);
    }

    #[test]
    fn diagnose_without_after_is_rejected() {
        let err = parse_request(r#"{"op":"diagnose"}"#).unwrap_err();
        assert!(err.contains("after"));
    }

    #[test]
    fn responses_are_valid_json() {
        for line in [
            diagnose_response(
                1,
                r#"{"schema":1}"#,
                "two\nlines \"quoted\"",
                Some("because"),
            ),
            error_response(2, "bad \\ things"),
            ok_response(3, ""),
            ok_response(4, "\"pong\":true"),
        ] {
            let v = netdiag_obs::json::parse(&line).expect("response line parses as JSON");
            assert!(v.get("id").is_some());
        }
    }

    #[test]
    fn escaping_round_trips_control_characters() {
        let mut out = String::new();
        push_json_string(&mut out, "a\u{1}b\tc\nd\"e\\f");
        let v = netdiag_obs::json::parse(&out).expect("escaped string parses");
        assert_eq!(v.as_str(), Some("a\u{1}b\tc\nd\"e\\f"));
    }
}
