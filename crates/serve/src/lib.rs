//! **netdiag-serve** — a long-running diagnosis daemon over the
//! NetDiagnoser facade.
//!
//! The paper's operational framing — an ISP continuously correlating
//! end-to-end probes with its routing feeds — is a service, not a batch
//! job. This crate turns the batch pipeline into one:
//!
//! 1. [`Baseline::prepare`] loads a topology, converges the control
//!    plane once and measures the healthy (`T-`) probe mesh — the
//!    expensive part, paid at startup.
//! 2. [`Server::start`](server::Server::start) holds that baseline
//!    behind an [`Arc`](std::sync::Arc) and listens on a TCP or Unix
//!    socket for line-delimited JSON requests (see [`proto`]), each an
//!    uploaded post-failure probe matrix plus an optional routing-feed
//!    delta.
//! 3. Requests dispatch onto a bounded [`pool::WorkerPool`]; each worker
//!    builds an owned [`NetDiagnoser`](netdiagnoser::NetDiagnoser)
//!    (possible since the facade owns its inputs) against a
//!    copy-on-write clone of the converged simulator and streams back a
//!    structured [`DiagnosticReport`](netdiagnoser::DiagnosticReport) —
//!    plus an optional `explain` narrative replayed from a per-request
//!    trace stream.
//!
//! The daemon is observable while it runs: a lock-free
//! [`LiveRecorder`](netdiag_obs::LiveRecorder) backs the `stats` and
//! `health` protocol verbs (counters, gauges, per-phase latency spans,
//! windowed rates, Prometheus exposition), and an optional
//! [`FlightRecorder`] tail-samples the full causal trace of every
//! request that breaches the latency SLO.
//!
//! [`bench`] is the closed-loop load harness behind `netdiag-serve
//! bench`; [`client`] the small blocking client the CLI and tests use.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod bench;
pub mod client;
pub mod flight;
pub mod pool;
pub mod proto;
pub mod server;

pub use baseline::{Baseline, Scenario, ServeConfig};
pub use client::Client;
pub use flight::{FlightRecorder, PhaseNanos};
pub use server::{Endpoint, Server, ServerHandle};
