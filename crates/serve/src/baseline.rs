//! The daemon's converged baseline: topology, healthy control plane and
//! `T-` probe mesh, prepared once at startup and shared (read-only) by
//! every request.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use netdiag_experiments::bridge::{routing_feed, sensor_metas, to_snapshot};
use netdiag_experiments::runner::{prepare_with, PlacementContext, RunConfig};
use netdiag_experiments::sampling::{sample_failure, FailureSpec};
use netdiag_netsim::{apply_failure, looking_glass_query, probe_mesh, Sim};
use netdiag_obs::RecorderHandle;
use netdiag_topology::builders::{build_internet, Internet, InternetConfig};
use netdiag_topology::gen::GenConfig;
use netdiag_topology::{AsId, Topology};
use netdiagnoser::text::{write_feed, write_snapshot};
use netdiagnoser::{IpToAs, LookingGlass, SensorMeta, Snapshot};

/// Daemon configuration: how the baseline is generated and how much
/// concurrent work the request pool accepts.
#[derive(Clone)]
pub struct ServeConfig {
    /// Seed for topology generation and sensor placement.
    pub seed: u64,
    /// Number of sensors in the baseline mesh (paper default: 10).
    pub n_sensors: usize,
    /// When > 0, serve a seeded internet-scale topology of this many
    /// ASes ([`netdiag_topology::gen`]) instead of the paper's 165-AS
    /// evaluation internet.
    pub gen_ases: usize,
    /// Worker threads for the diagnosis pool; `0` means available
    /// parallelism.
    pub workers: usize,
    /// Queue capacity of the pool; submissions beyond it are rejected
    /// with an overload error (backpressure). `0` means the default (64).
    pub queue: usize,
    /// Instrumentation sink for `serve.*` metrics and the simulator's
    /// own counters.
    pub recorder: RecorderHandle,
    /// Mount the live telemetry plane (default): a lock-free
    /// [`LiveRecorder`](netdiag_obs::LiveRecorder) behind the `stats`
    /// protocol verb, rolled every second for windowed rates. `false`
    /// leaves only `recorder` attached (the overhead-comparison leg of
    /// the bench harness).
    pub telemetry: bool,
    /// Request-latency SLO in microseconds for the flight recorder;
    /// `0` dumps every request (trace-everything mode). Only meaningful
    /// with [`flight_path`](Self::flight_path).
    pub slo_micros: u64,
    /// When set, mount the flight recorder: every worker keeps an
    /// always-on bounded trace ring, and requests breaching
    /// [`slo_micros`](Self::slo_micros) dump their causal trace as one
    /// JSONL line (tail sampling) to this file.
    pub flight_path: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 1,
            n_sensors: 10,
            gen_ases: 0,
            workers: 0,
            queue: 0,
            recorder: RecorderHandle::noop(),
            telemetry: true,
            slo_micros: 0,
            flight_path: None,
        }
    }
}

impl ServeConfig {
    /// The worker count this config resolves to.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// The queue capacity this config resolves to.
    pub fn resolved_queue(&self) -> usize {
        if self.queue > 0 {
            self.queue
        } else {
            64
        }
    }
}

/// The converged state every request diagnoses against.
///
/// Owns the healthy simulator (copy-on-write clones are a few µs), the
/// topology, and the serialized defaults a request may omit: the sensor
/// directory, the `T-` snapshot, and the oracles (IP-to-AS from the
/// topology, Looking Glass answered live by the simulator).
pub struct Baseline {
    ctx: PlacementContext,
    topology: Arc<Topology>,
    sensors: Vec<SensorMeta>,
    before: Snapshot,
}

impl Baseline {
    /// Generates the topology, converges it and measures the `T-` mesh.
    /// This is the daemon's startup cost; requests only read the result.
    pub fn prepare(config: &ServeConfig) -> Baseline {
        let net = if config.gen_ases > 0 {
            let generated =
                netdiag_topology::gen::generate(&GenConfig::new(config.gen_ases, config.seed))
                    .expect("generated topology must build");
            Internet::from_topology(generated.topology)
        } else {
            build_internet(&InternetConfig {
                seed: config.seed,
                ..Default::default()
            })
        };
        let run = RunConfig {
            n_sensors: config.n_sensors.min(net.stubs.len()),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xBEEF);
        let ctx = {
            let _trial = netdiag_obs::trial_scope(0, netdiag_obs::SETUP_TRIAL);
            prepare_with(&net, &run, &mut rng, config.recorder.clone())
        };
        let topology = ctx.sim.topology_arc();
        let sensors = sensor_metas(&ctx.sensors);
        let before = to_snapshot(&ctx.mesh_before);
        Baseline {
            ctx,
            topology,
            sensors,
            before,
        }
    }

    /// The healthy converged simulator.
    pub fn sim(&self) -> &Sim {
        &self.ctx.sim
    }

    /// The shared topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The troubleshooting AS (AS-X).
    pub fn observer(&self) -> AsId {
        self.ctx.observer
    }

    /// The default sensor directory (requests without `sensors`).
    pub fn sensors(&self) -> &[SensorMeta] {
        &self.sensors
    }

    /// The default `T-` snapshot (requests without `before`).
    pub fn before(&self) -> &Snapshot {
        &self.before
    }

    /// A Looking Glass answered live by a copy-on-write clone of the
    /// converged simulator — the default when a request uploads no
    /// recorded `lg` dump. Owned, so it outlives the request that made
    /// it (the facade requires `Send + Sync + 'static` inputs).
    pub fn looking_glass(&self) -> BaselineLookingGlass {
        BaselineLookingGlass {
            sim: self.ctx.sim.clone(),
            available: self.ctx.lg_available.clone(),
        }
    }

    /// The ground-truth IP-to-AS oracle — the default when a request
    /// uploads no `ip2as` map.
    pub fn ip_to_as(&self) -> TopologyIpToAs {
        TopologyIpToAs {
            topology: Arc::clone(&self.topology),
        }
    }

    /// Samples one unreachability-causing link failure against this
    /// baseline and renders the request inputs a client would upload:
    /// the post-failure snapshot and AS-X's routing-feed delta. Used by
    /// the load harness and tests; `None` if no sampled failure breaks
    /// any path (practically impossible on the generated topology).
    pub fn sample_scenario(&self, seed: u64) -> Option<Scenario> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        // Bounded redraws: a sampled failure may be fully rerouted.
        for _ in 0..64 {
            let failure = sample_failure(
                &self.ctx.sim,
                &self.ctx.mesh_before,
                &self.ctx.sensors,
                FailureSpec::Links(1),
                &mut rng,
            )?;
            let mut broken = self.ctx.sim.clone();
            apply_failure(&mut broken, &failure);
            let after = probe_mesh(&broken, &self.ctx.sensors, &self.ctx.blocked);
            if after.failed_count() == 0 {
                continue;
            }
            let observed = broken.take_observed();
            let igp_events = broken.take_igp_events();
            let feed = routing_feed(&self.topology, self.ctx.observer, &observed, &igp_events);
            return Some(Scenario {
                after: write_snapshot(&to_snapshot(&after)),
                feed: write_feed(&feed),
            });
        }
        None
    }
}

/// Request inputs sampled from the baseline (see
/// [`Baseline::sample_scenario`]).
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The post-failure (`T+`) snapshot, serialized.
    pub after: String,
    /// AS-X's routing-feed delta, serialized.
    pub feed: String,
}

/// Looking Glass over an owned simulator clone (see
/// [`Baseline::looking_glass`]).
pub struct BaselineLookingGlass {
    sim: Sim,
    available: BTreeSet<AsId>,
}

impl LookingGlass for BaselineLookingGlass {
    fn as_path(&self, from_as: AsId, dst: Ipv4Addr) -> Option<Vec<AsId>> {
        if !self.available.contains(&from_as) {
            return None;
        }
        looking_glass_query(&self.sim, from_as, dst)
    }
}

/// IP-to-AS oracle over the shared topology (see [`Baseline::ip_to_as`]).
pub struct TopologyIpToAs {
    topology: Arc<Topology>,
}

impl IpToAs for TopologyIpToAs {
    fn as_of(&self, addr: Ipv4Addr) -> Option<AsId> {
        self.topology.as_of_ip(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ServeConfig {
        ServeConfig {
            seed: 7,
            n_sensors: 6,
            ..Default::default()
        }
    }

    #[test]
    fn baseline_prepares_and_samples_a_breaking_scenario() {
        let baseline = Baseline::prepare(&small_config());
        assert_eq!(baseline.sensors().len(), 6);
        assert!(!baseline.before().paths.is_empty());
        let scenario = baseline.sample_scenario(3).expect("scenario sampled");
        assert!(scenario.after.contains("failed"));
    }

    #[test]
    fn default_oracles_answer() {
        let baseline = Baseline::prepare(&small_config());
        let ip2as = baseline.ip_to_as();
        let sensor = &baseline.sensors()[0];
        assert_eq!(ip2as.as_of(sensor.addr), Some(sensor.as_id));
        let lg = baseline.looking_glass();
        // AS-X always has Looking Glass data for reachable sensors.
        assert!(lg.as_path(baseline.observer(), sensor.addr).is_some());
    }
}
