//! A small blocking client for the daemon's line protocol, used by the
//! `netdiag-serve` CLI subcommands, the bench harness and the tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

enum Transport {
    Tcp(TcpStream),
    Unix(UnixStream),
}

/// One connection to a running daemon.
pub struct Client {
    writer: Transport,
    reader: BufReader<Transport>,
}

impl Client {
    /// Connects over TCP, e.g. `127.0.0.1:4915`.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // One logical message spans several writes (payload, then the
        // line terminator); Nagle + delayed ACK would stall each
        // request ~40-90ms waiting to coalesce them.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(Transport::Tcp(stream.try_clone()?));
        Ok(Client {
            writer: Transport::Tcp(stream),
            reader,
        })
    }

    /// Connects over a Unix domain socket.
    pub fn connect_unix(path: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let reader = BufReader::new(Transport::Unix(stream.try_clone()?));
        Ok(Client {
            writer: Transport::Unix(stream),
            reader,
        })
    }

    /// Sends one request line and blocks for the response line.
    /// `line` must not contain a newline (the protocol is one object
    /// per line); the trailing newline is added here.
    pub fn request_line(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before responding",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}

impl std::io::Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            Transport::Unix(s) => s.flush(),
        }
    }
}
