//! The flight recorder: tail-sampled causal traces for slow requests.
//!
//! Every worker keeps a bounded [`TraceRecorder`] ring always-on (near
//! noop cost: events land in a per-request ring and are thrown away).
//! When a request's end-to-end latency breaches the configured SLO, the
//! ring — the full causal trace of exactly that request — is dumped as
//! one JSONL line keyed by the request id, together with the per-phase
//! span breakdown (queue wait vs snapshot-restore vs diagnose vs
//! render). Fast requests cost a ring clear; slow requests yield a
//! complete post-hoc trace without ever tracing the fleet.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use netdiag_obs::TraceRecorder;

use crate::proto::push_json_string;

/// Per-phase wall-clock breakdown of one diagnose request, nanoseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseNanos {
    /// Time spent queued in the worker pool (submit to pickup).
    pub queue: u64,
    /// Input parsing + baseline snapshot restoration.
    pub restore: u64,
    /// The diagnosis algorithm itself.
    pub diagnose: u64,
    /// Report structuring, narrative replay and serialization.
    pub render: u64,
}

/// Appends one JSONL dump per SLO-breaching request to a file.
pub struct FlightRecorder {
    slo_nanos: u64,
    /// Appended one full line at a time so concurrent workers never
    /// interleave partial dumps.
    out: Mutex<File>,
    dumps: AtomicU64,
}

impl FlightRecorder {
    /// Creates (truncating) the dump file. `slo_micros` is the latency
    /// threshold: requests at or above it dump their trace. Zero means
    /// every request breaches — the "trace everything" mode tests and
    /// debugging use.
    pub fn create(path: &Path, slo_micros: u64) -> std::io::Result<FlightRecorder> {
        Ok(FlightRecorder {
            slo_nanos: slo_micros.saturating_mul(1_000),
            out: Mutex::new(File::create(path)?),
            dumps: AtomicU64::new(0),
        })
    }

    /// The SLO in nanoseconds.
    pub fn slo_nanos(&self) -> u64 {
        self.slo_nanos
    }

    /// Dumps written so far.
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Tail-sampling decision point, called once per finished request:
    /// when `latency_nanos` meets the SLO, writes one JSONL line with
    /// the request id, phase breakdown and the worker's ring contents.
    /// Returns whether a dump was written.
    pub fn observe_request(
        &self,
        request_id: u64,
        seq: u64,
        latency_nanos: u64,
        phases: &PhaseNanos,
        ring: &TraceRecorder,
    ) -> bool {
        if latency_nanos < self.slo_nanos {
            return false;
        }
        let mut line = String::with_capacity(256);
        line.push_str(&format!(
            "{{\"request\":{request_id},\"seq\":{seq},\"latency_us\":{},\"slo_us\":{},\
             \"phases\":{{\"queue_us\":{},\"restore_us\":{},\"diagnose_us\":{},\
             \"render_us\":{}}},\"dropped\":{},\"trace\":",
            latency_nanos / 1_000,
            self.slo_nanos / 1_000,
            phases.queue / 1_000,
            phases.restore / 1_000,
            phases.diagnose / 1_000,
            phases.render / 1_000,
            ring.dropped(),
        ));
        push_json_string(&mut line, &ring.to_jsonl());
        line.push_str("}\n");
        let mut out = self.out.lock().expect("flight dump file mutex poisoned");
        // lint: allow(lock-across-blocking): dumps must be whole lines —
        // the write happens under the file mutex precisely so concurrent
        // workers never interleave, and SLO breaches are rare by design.
        let wrote = out.write_all(line.as_bytes()).is_ok();
        // lint: allow(lock-across-blocking): flushed under the same guard
        // so a reader tailing the file only ever sees complete dumps.
        let _ = out.flush();
        drop(out);
        if wrote {
            self.dumps.fetch_add(1, Ordering::Relaxed);
        }
        wrote
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("slo_nanos", &self.slo_nanos)
            .field("dumps", &self.dumps())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdiag_obs::{EventPayload, Recorder};

    fn ring_with_one_event() -> TraceRecorder {
        let ring = TraceRecorder::with_capacity(16);
        ring.event(netdiag_obs::Event {
            name: "hs.begin",
            placement: 1,
            trial: 0,
            phase: netdiag_obs::Phase::Diagnose,
            seq: 0,
            payload: EventPayload::new(),
        });
        ring
    }

    #[test]
    fn slo_zero_dumps_every_request_and_high_slo_none() {
        let dir = std::env::temp_dir().join(format!("flight-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("dumps.jsonl");
        let flight = FlightRecorder::create(&path, 0).expect("dump file creates");
        let ring = ring_with_one_event();
        let phases = PhaseNanos {
            queue: 1_000,
            restore: 2_000,
            diagnose: 3_000,
            render: 4_000,
        };
        assert!(flight.observe_request(42, 7, 10_000, &phases, &ring));
        assert_eq!(flight.dumps(), 1);

        // A generous SLO never fires.
        let quiet = FlightRecorder::create(&dir.join("quiet.jsonl"), u64::MAX / 2_000)
            .expect("dump file creates");
        assert!(!quiet.observe_request(43, 8, 10_000, &phases, &ring));
        assert_eq!(quiet.dumps(), 0);

        let dumped = std::fs::read_to_string(&path).expect("dump file readable");
        let lines: Vec<&str> = dumped.lines().collect();
        assert_eq!(lines.len(), 1);
        let v = netdiag_obs::json::parse(lines[0]).expect("dump line is JSON");
        assert_eq!(
            v.get("request").and_then(netdiag_obs::json::Json::as_u64),
            Some(42)
        );
        let phases_v = v.get("phases").expect("phases object");
        assert_eq!(
            phases_v
                .get("diagnose_us")
                .and_then(netdiag_obs::json::Json::as_u64),
            Some(3)
        );
        let trace = v
            .get("trace")
            .and_then(netdiag_obs::json::Json::as_str)
            .expect("trace string");
        assert!(trace.contains("hs.begin"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
