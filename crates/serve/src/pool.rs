//! A bounded worker pool for diagnosis jobs.
//!
//! The same shape as the experiment runner's trial pool — plain threads,
//! a mutex-guarded queue, no async runtime — but sized for a daemon:
//! the queue has a hard capacity and [`WorkerPool::submit`] refuses work
//! beyond it, so overload surfaces as an immediate error response
//! (backpressure) instead of unbounded memory growth. Queue depth is
//! tracked as the `serve.queue_depth` *gauge* — raised on submit,
//! lowered when a worker dequeues — so stats report the level right now
//! plus its high-water mark, not a monotone aggregate.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use netdiag_obs::{names, RecorderHandle};

/// One unit of pool work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// The queue was at capacity; the caller should report overload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolFull;

impl std::fmt::Display for PoolFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("server overloaded: diagnosis queue full")
    }
}

impl std::error::Error for PoolFull {}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    work_ready: Condvar,
    capacity: usize,
    recorder: RecorderHandle,
}

/// Fixed worker threads draining a bounded job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Starts `workers` threads with room for `capacity` queued jobs.
    pub fn new(workers: usize, capacity: usize, recorder: RecorderHandle) -> WorkerPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            work_ready: Condvar::new(),
            capacity: capacity.max(1),
            recorder,
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Enqueues a job, or reports [`PoolFull`] at capacity. Jobs carry
    /// their own reply channel; the pool never returns results.
    // hot
    pub fn submit(&self, job: Job) -> Result<(), PoolFull> {
        {
            let mut state = self
                .shared
                .state
                .lock()
                .expect("pool queue mutex poisoned: a worker panicked");
            if state.closed || state.jobs.len() >= self.shared.capacity {
                return Err(PoolFull);
            }
            state.jobs.push_back(job);
        }
        self.shared.recorder.gauge_add(names::SERVE_QUEUE_DEPTH, 1);
        self.shared.work_ready.notify_one();
        Ok(())
    }

    /// Drains queued jobs, then stops and joins every worker.
    /// Idempotent; later [`submit`](Self::submit) calls see [`PoolFull`].
    pub fn shutdown(&self) {
        {
            let mut state = self
                .shared
                .state
                .lock()
                .expect("pool queue mutex poisoned: a worker panicked");
            state.closed = true;
        }
        self.shared.work_ready.notify_all();
        let handles: Vec<JoinHandle<()>> = {
            let mut workers = self
                .workers
                .lock()
                .expect("pool worker list mutex poisoned");
            workers.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

// hot
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared
                .state
                .lock()
                .expect("pool queue mutex poisoned: a worker panicked");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.closed {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .expect("pool queue mutex poisoned: a worker panicked");
            }
        };
        shared.recorder.gauge_sub(names::SERVE_QUEUE_DEPTH, 1);
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_jobs_and_joins_cleanly() {
        let ran = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(4, 64, RecorderHandle::noop());
        for _ in 0..32 {
            let ran = Arc::clone(&ran);
            pool.submit(Box::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            }))
            .expect("queue has room");
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn refuses_work_past_capacity() {
        // One worker, blocked on the first job; capacity 2 fills up.
        let pool = WorkerPool::new(1, 2, RecorderHandle::noop());
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(Box::new(move || {
            let _ = started_tx.send(());
            let _ = block_rx.recv();
        }))
        .expect("first job fits");
        started_rx.recv().expect("worker picked up the blocker");
        pool.submit(Box::new(|| {})).expect("queue slot 1");
        pool.submit(Box::new(|| {})).expect("queue slot 2");
        assert_eq!(pool.submit(Box::new(|| {})), Err(PoolFull));
        block_tx.send(()).expect("unblock the worker");
        pool.shutdown();
    }

    #[test]
    fn tracks_queue_depth_as_a_gauge() {
        let (recorder, sink) = RecorderHandle::in_memory();
        // One worker blocked on the first job, so two more stack up and
        // the gauge's high-water mark reflects real queue occupancy.
        let pool = WorkerPool::new(1, 8, recorder);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(Box::new(move || {
            let _ = started_tx.send(());
            let _ = block_rx.recv();
        }))
        .expect("first job fits");
        started_rx.recv().expect("worker picked up the blocker");
        pool.submit(Box::new(|| {})).expect("queue slot 1");
        pool.submit(Box::new(|| {})).expect("queue slot 2");
        block_tx.send(()).expect("unblock the worker");
        pool.shutdown();
        let report = sink.report();
        let gauge = report
            .gauge(names::SERVE_QUEUE_DEPTH)
            .expect("queue depth gauge recorded");
        // All jobs drained: back to level zero, peak of the two queued
        // jobs (the blocker was dequeued before they were submitted).
        assert_eq!(gauge.current, 0);
        assert!(gauge.high_water >= 2, "high water {}", gauge.high_water);
        assert!(report.histogram(names::SERVE_QUEUE_DEPTH).is_none());
    }
}
