//! `netdiag-serve` — run, query, observe, load-test and stop the
//! diagnosis daemon.
//!
//! ```text
//! netdiag-serve run [--listen ADDR | --unix PATH] [--seed N]
//!                   [--sensors N] [--gen-ases N] [--workers N]
//!                   [--queue N] [--slo-ms N] [--flight FILE]
//!                   [--profile FILE]
//!     Converges a baseline and serves diagnose requests until a
//!     `shutdown` request arrives. Prints the bound endpoint on the
//!     first line (`listening <addr>`). `--gen-ases N` serves a seeded
//!     internet-scale generated topology of N ASes instead of the
//!     paper's 165-AS internet. `--flight FILE` mounts the flight
//!     recorder: every diagnose request whose latency breaches the
//!     `--slo-ms` budget (0 = dump all) appends its full causal trace
//!     to FILE as one JSONL line. `--profile` writes the daemon's live
//!     metrics report (serve.* counters, gauges, phase spans) on
//!     shutdown.
//!
//! netdiag-serve request (--connect ADDR | --unix PATH) --dir DIR
//!                       [--algo NAME] [--json] [--explain]
//!     Uploads a scenario directory (after.txt required; sensors.txt,
//!     before.txt, feed.txt, lg.txt, ip2as.txt attached when present)
//!     and prints the returned report text — byte-identical to
//!     `netdiag diagnose --dir DIR` on the same inputs — or the
//!     versioned report JSON with `--json`.
//!
//! netdiag-serve stats (--connect ADDR | --unix PATH)
//!                     [--watch] [--interval SECS] [--prom]
//!                     [--window SECS] [--json]
//!     Fetches a running daemon's live telemetry: health, request
//!     counters, queue-depth gauge, and rates/percentiles over the last
//!     `--window` seconds (default 10). `--watch` refreshes every
//!     `--interval` seconds (default 2); `--prom` prints the
//!     Prometheus text exposition instead; `--json` the raw response.
//!
//! netdiag-serve bench [--clients N] [--requests N] [--seed N]
//!                     [--workers N] [--queue N] [--algo NAME]
//!                     [--compare] [--profile FILE]
//!     Closed-loop load harness against an in-process daemon; prints
//!     throughput, client-observed p50/p90/p99 and the server's own
//!     service-time percentiles (fetched via `stats`), flagging when
//!     client p99 diverges >2x above server p99 (queueing). `--compare`
//!     runs telemetry-on and telemetry-off legs on one baseline and
//!     prints their throughput ratio.
//!
//! netdiag-serve stop (--connect ADDR | --unix PATH)
//!     Asks a running daemon to shut down.
//! ```

// A daemon front end talks to its user on stdout.
#![allow(clippy::print_stdout)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use netdiag_obs::json::{parse, Json};
use netdiag_obs::{names, RecorderHandle};
use netdiag_serve::bench::{compare as bench_compare, run as run_bench, BenchConfig, BenchResults};
use netdiag_serve::proto::{write_diagnose_request, DiagnoseJob};
use netdiag_serve::{Client, Endpoint, ServeConfig, Server};
use netdiagnoser::{Algorithm, DiagnosticReport};

fn usage() -> ! {
    eprintln!(
        "usage:\n  netdiag-serve run [--listen ADDR | --unix PATH] [--seed N] [--sensors N] \
         [--gen-ases N] [--workers N] [--queue N] [--slo-ms N] [--flight FILE] [--profile FILE]\n  \
         netdiag-serve request (--connect ADDR | --unix PATH) --dir DIR \
         [--algo tomo|nd-edge|nd-bgpigp|nd-lg] [--json] [--explain]\n  \
         netdiag-serve stats (--connect ADDR | --unix PATH) [--watch] [--interval SECS] \
         [--prom] [--window SECS] [--json]\n  \
         netdiag-serve bench [--clients N] [--requests N] [--seed N] [--workers N] \
         [--queue N] [--algo NAME] [--compare] [--profile FILE]\n  \
         netdiag-serve stop (--connect ADDR | --unix PATH)"
    );
    std::process::exit(2)
}

fn get_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn num_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match get_flag(args, name) {
        None => default,
        Some(raw) => match raw.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("bad value for {name}: {raw}");
                std::process::exit(2)
            }
        },
    }
}

fn algo_flag(args: &[String]) -> Algorithm {
    match get_flag(args, "--algo") {
        None => Algorithm::default(),
        Some(name) => match name.parse() {
            Ok(algo) => algo,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2)
            }
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("request") => cmd_request(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("stop") => cmd_stop(&args[1..]),
        _ => usage(),
    }
}

fn endpoint_from(args: &[String]) -> Endpoint {
    match (get_flag(args, "--listen"), get_flag(args, "--unix")) {
        (Some(_), Some(_)) => {
            eprintln!("--listen and --unix are mutually exclusive");
            std::process::exit(2)
        }
        (None, Some(path)) => Endpoint::Unix(PathBuf::from(path)),
        (addr, None) => Endpoint::Tcp(addr.unwrap_or_else(|| "127.0.0.1:4915".to_owned())),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let profile_path = get_flag(args, "--profile").map(PathBuf::from);
    let config = ServeConfig {
        seed: num_flag(args, "--seed", 1u64),
        n_sensors: num_flag(args, "--sensors", 10usize),
        gen_ases: num_flag(args, "--gen-ases", 0usize),
        workers: num_flag(args, "--workers", 0usize),
        queue: num_flag(args, "--queue", 0usize),
        recorder: RecorderHandle::noop(),
        telemetry: true,
        slo_micros: num_flag(args, "--slo-ms", 0u64).saturating_mul(1_000),
        flight_path: get_flag(args, "--flight").map(PathBuf::from),
    };
    let endpoint = endpoint_from(args);
    eprintln!(
        "converging baseline (seed {}, {} sensors)...",
        config.seed, config.n_sensors
    );
    let handle = match Server::start(config, endpoint.clone()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match (&endpoint, handle.tcp_addr()) {
        (_, Some(addr)) => println!("listening {addr}"),
        (Endpoint::Unix(path), None) => println!("listening {}", path.display()),
        (Endpoint::Tcp(addr), None) => println!("listening {addr}"),
    }
    // The registry outlives the handle: snapshot after join so the
    // profile covers the daemon's whole life.
    let live = handle.live();
    handle.join();
    if let Some(path) = profile_path {
        let Some(live) = live else {
            eprintln!("--profile needs the telemetry plane");
            return ExitCode::FAILURE;
        };
        if let Err(e) = std::fs::write(&path, live.snapshot().to_json()) {
            eprintln!("write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn connect(args: &[String]) -> Client {
    let made = match (get_flag(args, "--connect"), get_flag(args, "--unix")) {
        (Some(addr), None) => Client::connect_tcp(&addr),
        (None, Some(path)) => Client::connect_unix(Path::new(&path)),
        _ => usage(),
    };
    match made {
        Ok(client) => client,
        Err(e) => {
            eprintln!("connect: {e}");
            std::process::exit(1)
        }
    }
}

/// Reads a scenario file, `None` when absent (the daemon's baseline
/// fills it in).
fn optional_file(dir: &Path, name: &str) -> Option<String> {
    std::fs::read_to_string(dir.join(name)).ok()
}

fn cmd_request(args: &[String]) -> ExitCode {
    let Some(dir) = get_flag(args, "--dir").map(PathBuf::from) else {
        usage()
    };
    let after = match std::fs::read_to_string(dir.join("after.txt")) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("read {}: {e}", dir.join("after.txt").display());
            return ExitCode::FAILURE;
        }
    };
    let job = DiagnoseJob {
        algo: algo_flag(args),
        after,
        sensors: optional_file(&dir, "sensors.txt"),
        before: optional_file(&dir, "before.txt"),
        feed: optional_file(&dir, "feed.txt"),
        lg: optional_file(&dir, "lg.txt"),
        ip2as: optional_file(&dir, "ip2as.txt"),
        min_confidence: num_flag(args, "--min-confidence", 0.0f64),
        max_issues: num_flag(args, "--max-issues", 0usize),
        explain: args.iter().any(|a| a == "--explain"),
    };
    let mut client = connect(args);
    let response = match client.request_line(&write_diagnose_request(1, &job)) {
        Ok(response) => response,
        Err(e) => {
            eprintln!("request: {e}");
            return ExitCode::FAILURE;
        }
    };
    let v = match parse(&response) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bad response JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !matches!(v.get("ok"), Some(Json::Bool(true))) {
        let message = v.get("error").and_then(Json::as_str).unwrap_or("unknown");
        eprintln!("daemon error: {message}");
        return ExitCode::FAILURE;
    }
    if args.iter().any(|a| a == "--json") {
        let report = v
            .get("report")
            .ok_or_else(|| "response carried no report".to_owned())
            .and_then(DiagnosticReport::from_json_value);
        match report {
            Ok(report) => println!("{}", report.to_json()),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match v.get("text").and_then(Json::as_str) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("response carried no text");
                return ExitCode::FAILURE;
            }
        }
    }
    if job.explain {
        if let Some(narrative) = v.get("explain").and_then(Json::as_str) {
            println!("--- explain ---");
            print!("{narrative}");
        }
    }
    ExitCode::SUCCESS
}

/// Number at a dotted path into the stats response, e.g.
/// `["stats", "requests"]`.
fn stat_u64(v: &Json, path: &[&str]) -> Option<u64> {
    let mut node = v;
    for key in path {
        node = node.get(key)?;
    }
    node.as_u64()
}

fn stat_f64(v: &Json, path: &[&str]) -> Option<f64> {
    let mut node = v;
    for key in path {
        node = node.get(key)?;
    }
    match node {
        Json::Num(n) => Some(*n),
        _ => None,
    }
}

/// Renders one stats response as a short human summary (the check.sh
/// smoke greps `health ready` and the requests line out of this).
fn print_stats_summary(v: &Json) {
    let health = v.get("health").and_then(Json::as_str).unwrap_or("unknown");
    let uptime = stat_u64(v, &["uptime_secs"]).unwrap_or(0);
    println!("health {health}  uptime {uptime}s");
    println!(
        "requests {} total, {} errors, {} diagnoses, {} connections, {} flight dumps",
        stat_u64(v, &["stats", "requests"]).unwrap_or(0),
        stat_u64(v, &["stats", "errors"]).unwrap_or(0),
        stat_u64(v, &["stats", "diagnoses"]).unwrap_or(0),
        stat_u64(v, &["stats", "connections"]).unwrap_or(0),
        stat_u64(v, &["stats", "flight_dumps"]).unwrap_or(0),
    );
    if let Some(current) = stat_u64(
        v,
        &["report", "gauges", names::SERVE_QUEUE_DEPTH, "current"],
    ) {
        println!(
            "queue depth {current} now, {} high-water",
            stat_u64(
                v,
                &["report", "gauges", names::SERVE_QUEUE_DEPTH, "high_water"]
            )
            .unwrap_or(current),
        );
    }
    if let Some(secs) = stat_f64(v, &["window", "secs"]) {
        let rate = stat_f64(v, &["window", "rates", names::SERVE_REQUESTS]).unwrap_or(0.0);
        print!("window {secs:.1}s: {rate:.2} req/s");
        let span = &["window", "spans", names::SERVE_REQUEST];
        if let Some(count) = stat_u64(v, &[span[0], span[1], span[2], "count"]) {
            let us = |key: &str| {
                stat_u64(v, &[span[0], span[1], span[2], key]).unwrap_or(0) as f64 / 1_000.0
            };
            print!(
                ", request p50 {:.0}us p90 {:.0}us p99 {:.0}us ({count} served)",
                us("p50_ns"),
                us("p90_ns"),
                us("p99_ns"),
            );
        }
        println!();
    }
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let prom = args.iter().any(|a| a == "--prom");
    let raw = args.iter().any(|a| a == "--json");
    let watch = args.iter().any(|a| a == "--watch");
    let interval = num_flag(args, "--interval", 2u64).max(1);
    let window = num_flag(args, "--window", 10u64);
    let line = format!("{{\"op\":\"stats\",\"id\":1,\"prom\":{prom},\"window\":{window}}}");
    let mut client = connect(args);
    loop {
        let response = match client.request_line(&line) {
            Ok(response) => response,
            Err(e) => {
                eprintln!("stats: {e}");
                return ExitCode::FAILURE;
            }
        };
        let v = match parse(&response) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bad stats JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !matches!(v.get("ok"), Some(Json::Bool(true))) {
            eprintln!("daemon error: {response}");
            return ExitCode::FAILURE;
        }
        if raw {
            println!("{response}");
        } else if prom {
            match v.get("prom").and_then(Json::as_str) {
                Some(text) => print!("{text}"),
                None => {
                    eprintln!("daemon serves no Prometheus exposition (telemetry off?)");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            print_stats_summary(&v);
        }
        if !watch {
            return ExitCode::SUCCESS;
        }
        println!("---");
        std::thread::sleep(Duration::from_secs(interval));
    }
}

fn print_bench_results(results: &BenchResults) {
    println!(
        "completed {} requests ({} errors) in {:.3}s",
        results.completed, results.errors, results.elapsed_secs
    );
    println!("throughput {:.0} req/s", results.req_per_sec);
    println!(
        "client latency p50 {:.0}us  p90 {:.0}us  p99 {:.0}us",
        results.p50_us, results.p90_us, results.p99_us
    );
    if results.server_p99_us > 0.0 {
        println!(
            "server latency p50 {:.0}us  p99 {:.0}us (service time via stats)",
            results.server_p50_us, results.server_p99_us
        );
        if results.queueing_divergence() {
            println!(
                "WARNING: client p99 is more than 2x server p99 — requests are queueing \
                 (raise --workers or lower the offered load)"
            );
        }
    }
}

fn cmd_bench(args: &[String]) -> ExitCode {
    let config = BenchConfig {
        clients: num_flag(args, "--clients", 8usize),
        requests: num_flag(args, "--requests", 25usize),
        seed: num_flag(args, "--seed", 1u64),
        workers: num_flag(args, "--workers", 0usize),
        queue: num_flag(args, "--queue", 0usize),
        algo: algo_flag(args),
        telemetry: true,
    };
    eprintln!(
        "bench: {} clients x {} requests, algo {}",
        config.clients, config.requests, config.algo
    );
    if args.iter().any(|a| a == "--compare") {
        let (on, off) = match bench_compare(&config) {
            Ok(legs) => legs,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        println!("--- telemetry on ---");
        print_bench_results(&on);
        println!("--- telemetry off ---");
        print_bench_results(&off);
        let ratio = if off.req_per_sec > 0.0 {
            on.req_per_sec / off.req_per_sec
        } else {
            0.0
        };
        // bench.sh parses this line for the overhead gate.
        println!(
            "telemetry-compare: on {:.1} req/s, off {:.1} req/s, ratio {ratio:.3}",
            on.req_per_sec, off.req_per_sec
        );
        return ExitCode::SUCCESS;
    }
    let results = match run_bench(&config) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    print_bench_results(&results);
    if let Some(path) = get_flag(args, "--profile") {
        if let Err(e) = std::fs::write(&path, results.report.to_json()) {
            eprintln!("write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("profile written to {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_stop(args: &[String]) -> ExitCode {
    let mut client = connect(args);
    match client.request_line(r#"{"op":"shutdown"}"#) {
        Ok(response) => {
            println!("{response}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stop: {e}");
            ExitCode::FAILURE
        }
    }
}
