//! `netdiag-serve` — run, query, load-test and stop the diagnosis
//! daemon.
//!
//! ```text
//! netdiag-serve run [--listen ADDR | --unix PATH] [--seed N]
//!                   [--sensors N] [--gen-ases N] [--workers N]
//!                   [--queue N] [--profile FILE]
//!     Converges a baseline and serves diagnose requests until a
//!     `shutdown` request arrives. Prints the bound endpoint on the
//!     first line (`listening <addr>`). `--gen-ases N` serves a seeded
//!     internet-scale generated topology of N ASes instead of the
//!     paper's 165-AS internet. `--profile` writes the daemon's
//!     run report (serve.* counters + histograms) on shutdown.
//!
//! netdiag-serve request (--connect ADDR | --unix PATH) --dir DIR
//!                       [--algo NAME] [--json] [--explain]
//!     Uploads a scenario directory (after.txt required; sensors.txt,
//!     before.txt, feed.txt, lg.txt, ip2as.txt attached when present)
//!     and prints the returned report text — byte-identical to
//!     `netdiag diagnose --dir DIR` on the same inputs — or the
//!     versioned report JSON with `--json`.
//!
//! netdiag-serve bench [--clients N] [--requests N] [--seed N]
//!                     [--workers N] [--queue N] [--algo NAME]
//!                     [--profile FILE]
//!     Closed-loop load harness against an in-process daemon; prints
//!     throughput and p50/p90/p99 latency.
//!
//! netdiag-serve stop (--connect ADDR | --unix PATH)
//!     Asks a running daemon to shut down.
//! ```

// A daemon front end talks to its user on stdout.
#![allow(clippy::print_stdout)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use netdiag_obs::json::{parse, Json};
use netdiag_obs::{InMemoryRecorder, RecorderHandle};
use netdiag_serve::bench::{run as run_bench, BenchConfig};
use netdiag_serve::proto::{write_diagnose_request, DiagnoseJob};
use netdiag_serve::{Client, Endpoint, ServeConfig, Server};
use netdiagnoser::{Algorithm, DiagnosticReport};

fn usage() -> ! {
    eprintln!(
        "usage:\n  netdiag-serve run [--listen ADDR | --unix PATH] [--seed N] [--sensors N] \
         [--gen-ases N] [--workers N] [--queue N] [--profile FILE]\n  \
         netdiag-serve request (--connect ADDR | --unix PATH) --dir DIR \
         [--algo tomo|nd-edge|nd-bgpigp|nd-lg] [--json] [--explain]\n  \
         netdiag-serve bench [--clients N] [--requests N] [--seed N] [--workers N] \
         [--queue N] [--algo NAME] [--profile FILE]\n  \
         netdiag-serve stop (--connect ADDR | --unix PATH)"
    );
    std::process::exit(2)
}

fn get_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn num_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match get_flag(args, name) {
        None => default,
        Some(raw) => match raw.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("bad value for {name}: {raw}");
                std::process::exit(2)
            }
        },
    }
}

fn algo_flag(args: &[String]) -> Algorithm {
    match get_flag(args, "--algo") {
        None => Algorithm::default(),
        Some(name) => match name.parse() {
            Ok(algo) => algo,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2)
            }
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("request") => cmd_request(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("stop") => cmd_stop(&args[1..]),
        _ => usage(),
    }
}

fn endpoint_from(args: &[String]) -> Endpoint {
    match (get_flag(args, "--listen"), get_flag(args, "--unix")) {
        (Some(_), Some(_)) => {
            eprintln!("--listen and --unix are mutually exclusive");
            std::process::exit(2)
        }
        (None, Some(path)) => Endpoint::Unix(PathBuf::from(path)),
        (addr, None) => Endpoint::Tcp(addr.unwrap_or_else(|| "127.0.0.1:4915".to_owned())),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let profile_path = get_flag(args, "--profile").map(PathBuf::from);
    let sink = profile_path
        .is_some()
        .then(|| Arc::new(InMemoryRecorder::new()));
    let recorder = match &sink {
        Some(sink) => {
            RecorderHandle::fanout(vec![Arc::clone(sink) as Arc<dyn netdiag_obs::Recorder>])
        }
        None => RecorderHandle::noop(),
    };
    let config = ServeConfig {
        seed: num_flag(args, "--seed", 1u64),
        n_sensors: num_flag(args, "--sensors", 10usize),
        gen_ases: num_flag(args, "--gen-ases", 0usize),
        workers: num_flag(args, "--workers", 0usize),
        queue: num_flag(args, "--queue", 0usize),
        recorder,
    };
    let endpoint = endpoint_from(args);
    eprintln!(
        "converging baseline (seed {}, {} sensors)...",
        config.seed, config.n_sensors
    );
    let handle = match Server::start(config, endpoint.clone()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match (&endpoint, handle.tcp_addr()) {
        (_, Some(addr)) => println!("listening {addr}"),
        (Endpoint::Unix(path), None) => println!("listening {}", path.display()),
        (Endpoint::Tcp(addr), None) => println!("listening {addr}"),
    }
    handle.join();
    if let (Some(path), Some(sink)) = (profile_path, sink) {
        if let Err(e) = std::fs::write(&path, sink.report().to_json()) {
            eprintln!("write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn connect(args: &[String]) -> Client {
    let made = match (get_flag(args, "--connect"), get_flag(args, "--unix")) {
        (Some(addr), None) => Client::connect_tcp(&addr),
        (None, Some(path)) => Client::connect_unix(Path::new(&path)),
        _ => usage(),
    };
    match made {
        Ok(client) => client,
        Err(e) => {
            eprintln!("connect: {e}");
            std::process::exit(1)
        }
    }
}

/// Reads a scenario file, `None` when absent (the daemon's baseline
/// fills it in).
fn optional_file(dir: &Path, name: &str) -> Option<String> {
    std::fs::read_to_string(dir.join(name)).ok()
}

fn cmd_request(args: &[String]) -> ExitCode {
    let Some(dir) = get_flag(args, "--dir").map(PathBuf::from) else {
        usage()
    };
    let after = match std::fs::read_to_string(dir.join("after.txt")) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("read {}: {e}", dir.join("after.txt").display());
            return ExitCode::FAILURE;
        }
    };
    let job = DiagnoseJob {
        algo: algo_flag(args),
        after,
        sensors: optional_file(&dir, "sensors.txt"),
        before: optional_file(&dir, "before.txt"),
        feed: optional_file(&dir, "feed.txt"),
        lg: optional_file(&dir, "lg.txt"),
        ip2as: optional_file(&dir, "ip2as.txt"),
        min_confidence: num_flag(args, "--min-confidence", 0.0f64),
        max_issues: num_flag(args, "--max-issues", 0usize),
        explain: args.iter().any(|a| a == "--explain"),
    };
    let mut client = connect(args);
    let response = match client.request_line(&write_diagnose_request(1, &job)) {
        Ok(response) => response,
        Err(e) => {
            eprintln!("request: {e}");
            return ExitCode::FAILURE;
        }
    };
    let v = match parse(&response) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bad response JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !matches!(v.get("ok"), Some(Json::Bool(true))) {
        let message = v.get("error").and_then(Json::as_str).unwrap_or("unknown");
        eprintln!("daemon error: {message}");
        return ExitCode::FAILURE;
    }
    if args.iter().any(|a| a == "--json") {
        let report = v
            .get("report")
            .ok_or_else(|| "response carried no report".to_owned())
            .and_then(DiagnosticReport::from_json_value);
        match report {
            Ok(report) => println!("{}", report.to_json()),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match v.get("text").and_then(Json::as_str) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("response carried no text");
                return ExitCode::FAILURE;
            }
        }
    }
    if job.explain {
        if let Some(narrative) = v.get("explain").and_then(Json::as_str) {
            println!("--- explain ---");
            print!("{narrative}");
        }
    }
    ExitCode::SUCCESS
}

fn cmd_bench(args: &[String]) -> ExitCode {
    let config = BenchConfig {
        clients: num_flag(args, "--clients", 8usize),
        requests: num_flag(args, "--requests", 25usize),
        seed: num_flag(args, "--seed", 1u64),
        workers: num_flag(args, "--workers", 0usize),
        queue: num_flag(args, "--queue", 0usize),
        algo: algo_flag(args),
    };
    eprintln!(
        "bench: {} clients x {} requests, algo {}",
        config.clients, config.requests, config.algo
    );
    let results = match run_bench(&config) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "completed {} requests ({} errors) in {:.3}s",
        results.completed, results.errors, results.elapsed_secs
    );
    println!("throughput {:.0} req/s", results.req_per_sec);
    println!(
        "latency p50 {:.0}us  p90 {:.0}us  p99 {:.0}us",
        results.p50_us, results.p90_us, results.p99_us
    );
    if let Some(path) = get_flag(args, "--profile") {
        if let Err(e) = std::fs::write(&path, results.report.to_json()) {
            eprintln!("write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("profile written to {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_stop(args: &[String]) -> ExitCode {
    let mut client = connect(args);
    match client.request_line(r#"{"op":"shutdown"}"#) {
        Ok(response) => {
            println!("{response}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stop: {e}");
            ExitCode::FAILURE
        }
    }
}
