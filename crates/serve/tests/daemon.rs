//! End-to-end daemon tests: protocol ops over a loopback socket, byte
//! parity with the in-process facade, and concurrent clients.

use std::sync::Arc;

use netdiag_obs::json::{parse, Json};
use netdiag_serve::proto::{write_diagnose_request, DiagnoseJob};
use netdiag_serve::{Baseline, Client, Endpoint, ServeConfig, Server};
use netdiagnoser::text::parse_snapshot;
use netdiagnoser::{
    Algorithm, DiagnosticReport, NetDiagnoser, Observations, REPORT_SCHEMA_VERSION,
};

fn test_config() -> ServeConfig {
    ServeConfig {
        seed: 7,
        n_sensors: 6,
        workers: 2,
        ..Default::default()
    }
}

fn start_daemon() -> (netdiag_serve::ServerHandle, Arc<Baseline>, String) {
    let baseline = Arc::new(Baseline::prepare(&test_config()));
    let handle = Server::start_with_baseline(
        test_config(),
        Endpoint::Tcp("127.0.0.1:0".to_owned()),
        Arc::clone(&baseline),
    )
    .expect("daemon binds a loopback port");
    let addr = handle
        .tcp_addr()
        .expect("TCP endpoint resolves")
        .to_string();
    (handle, baseline, addr)
}

#[test]
fn ping_stats_and_shutdown_round_trip() {
    let (handle, _baseline, addr) = start_daemon();
    let mut client = Client::connect_tcp(&addr).expect("client connects");

    let pong = client
        .request_line(r#"{"op":"ping","id":9}"#)
        .expect("ping answered");
    let v = parse(&pong).expect("ping response is JSON");
    assert_eq!(v.get("id").and_then(Json::as_u64), Some(9));
    assert!(matches!(v.get("pong"), Some(Json::Bool(true))));

    let stats = client
        .request_line(r#"{"op":"stats","id":10}"#)
        .expect("stats answered");
    let v = parse(&stats).expect("stats response is JSON");
    let stats = v.get("stats").expect("stats object present");
    assert!(stats.get("requests").and_then(Json::as_u64).unwrap_or(0) >= 1);

    let bye = client
        .request_line(r#"{"op":"shutdown","id":11}"#)
        .expect("shutdown answered");
    let v = parse(&bye).expect("shutdown response is JSON");
    assert!(matches!(v.get("stopping"), Some(Json::Bool(true))));
    handle.join();
}

#[test]
fn diagnose_reports_match_the_in_process_facade_byte_for_byte() {
    // Full telemetry plane mounted (the default) plus a flight recorder
    // with a comfortable SLO: per-phase timing and tail sampling must
    // not perturb diagnosis output by a single byte.
    let dir = std::env::temp_dir().join(format!("netdiag-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir for the flight log");
    let flight_path = dir.join("flight.jsonl");
    let baseline = Arc::new(Baseline::prepare(&test_config()));
    let handle = Server::start_with_baseline(
        ServeConfig {
            slo_micros: 60_000_000,
            flight_path: Some(flight_path.clone()),
            ..test_config()
        },
        Endpoint::Tcp("127.0.0.1:0".to_owned()),
        Arc::clone(&baseline),
    )
    .expect("daemon binds a loopback port");
    let addr = handle
        .tcp_addr()
        .expect("TCP endpoint resolves")
        .to_string();
    let scenario = baseline.sample_scenario(3).expect("scenario sampled");

    // What the daemon says.
    let job = DiagnoseJob {
        algo: Algorithm::NdBgpIgp,
        after: scenario.after.clone(),
        feed: Some(scenario.feed.clone()),
        ..Default::default()
    };
    let mut client = Client::connect_tcp(&addr).expect("client connects");
    let response = client
        .request_line(&write_diagnose_request(5, &job))
        .expect("diagnose answered");
    let v = parse(&response).expect("diagnose response is JSON");
    assert!(matches!(v.get("ok"), Some(Json::Bool(true))), "{response}");
    assert_eq!(v.get("id").and_then(Json::as_u64), Some(5));
    let daemon_text = v
        .get("text")
        .and_then(Json::as_str)
        .expect("text rendering present")
        .to_owned();
    let report = DiagnosticReport::from_json_value(v.get("report").expect("report present"))
        .expect("report parses against the current schema");
    assert_eq!(report.schema, REPORT_SCHEMA_VERSION);

    // What the batch facade says on the same inputs.
    let obs = Observations {
        sensors: baseline.sensors().to_vec(),
        before: baseline.before().clone(),
        after: parse_snapshot(&scenario.after).expect("after parses"),
    };
    let feed = netdiagnoser::text::parse_feed(&scenario.feed).expect("feed parses");
    let local = NetDiagnoser::builder()
        .algorithm(Algorithm::NdBgpIgp)
        .routing_feed(feed)
        .looking_glass(baseline.looking_glass())
        .build()
        .report(&obs, &baseline.ip_to_as())
        .expect("in-process diagnosis runs");
    assert_eq!(daemon_text, local.to_string());
    assert_eq!(report.to_json(), local.to_json());
    assert_eq!(
        handle.flight_dumps(),
        Some(0),
        "a 60s SLO must not tail-sample a fast request"
    );
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_all_get_valid_reports() {
    let (handle, baseline, addr) = start_daemon();
    let scenario = baseline.sample_scenario(11).expect("scenario sampled");
    let mut threads = Vec::new();
    for i in 0..4u64 {
        let addr = addr.clone();
        let job = DiagnoseJob {
            after: scenario.after.clone(),
            feed: Some(scenario.feed.clone()),
            ..Default::default()
        };
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect_tcp(&addr).expect("client connects");
            for round in 0..3u64 {
                let id = i * 100 + round;
                let response = client
                    .request_line(&write_diagnose_request(id, &job))
                    .expect("diagnose answered");
                let v = parse(&response).expect("response is JSON");
                assert!(matches!(v.get("ok"), Some(Json::Bool(true))), "{response}");
                assert_eq!(v.get("id").and_then(Json::as_u64), Some(id));
                DiagnosticReport::from_json_value(v.get("report").expect("report present"))
                    .expect("report parses");
            }
        }));
    }
    for thread in threads {
        thread.join().expect("client thread succeeds");
    }
    handle.stop();
}

#[test]
fn explain_requests_carry_a_narrative() {
    let (handle, baseline, addr) = start_daemon();
    let scenario = baseline.sample_scenario(3).expect("scenario sampled");
    let job = DiagnoseJob {
        after: scenario.after,
        feed: Some(scenario.feed),
        explain: true,
        ..Default::default()
    };
    let mut client = Client::connect_tcp(&addr).expect("client connects");
    let response = client
        .request_line(&write_diagnose_request(1, &job))
        .expect("diagnose answered");
    let v = parse(&response).expect("response is JSON");
    assert!(matches!(v.get("ok"), Some(Json::Bool(true))), "{response}");
    let narrative = v
        .get("explain")
        .and_then(Json::as_str)
        .expect("narrative attached");
    assert!(!narrative.is_empty());
    handle.stop();
}

#[test]
fn bad_requests_get_structured_errors_and_the_daemon_survives() {
    let (handle, _baseline, addr) = start_daemon();
    let mut client = Client::connect_tcp(&addr).expect("client connects");
    for line in [
        "not json at all",
        r#"{"op":"diagnose","id":2}"#,
        r#"{"op":"diagnose","id":3,"after":"garbage input"}"#,
    ] {
        let response = client.request_line(line).expect("error answered");
        let v = parse(&response).expect("error response is JSON");
        assert!(matches!(v.get("ok"), Some(Json::Bool(false))), "{response}");
        assert!(v.get("error").and_then(Json::as_str).is_some());
    }
    // The connection still works afterwards.
    let pong = client
        .request_line(r#"{"op":"ping","id":4}"#)
        .expect("ping after errors");
    assert!(matches!(
        parse(&pong).expect("JSON").get("pong"),
        Some(Json::Bool(true))
    ));
    handle.stop();
}

#[test]
fn unix_socket_endpoint_serves_and_cleans_up() {
    let dir = std::env::temp_dir().join(format!("netdiag-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir for the socket");
    let path = dir.join("daemon.sock");
    let handle = Server::start(test_config(), Endpoint::Unix(path.clone()))
        .expect("daemon binds a unix socket");
    let mut client = Client::connect_unix(&path).expect("client connects over unix");
    let pong = client
        .request_line(r#"{"op":"ping","id":1}"#)
        .expect("ping answered");
    assert!(matches!(
        parse(&pong).expect("JSON").get("pong"),
        Some(Json::Bool(true))
    ));
    handle.stop();
    assert!(!path.exists(), "socket file removed on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn health_and_stats_expose_the_live_plane() {
    let (handle, baseline, addr) = start_daemon();
    let scenario = baseline.sample_scenario(3).expect("scenario sampled");
    let mut client = Client::connect_tcp(&addr).expect("client connects");

    // Readiness first: cheap, no report attached.
    let health = client
        .request_line(r#"{"op":"health","id":1}"#)
        .expect("health answered");
    let v = parse(&health).expect("health response is JSON");
    assert_eq!(v.get("health").and_then(Json::as_str), Some("ready"));
    assert!(v.get("uptime_secs").and_then(Json::as_u64).is_some());

    // Run one diagnosis so the live report has something to say.
    let job = DiagnoseJob {
        after: scenario.after,
        feed: Some(scenario.feed),
        ..Default::default()
    };
    let response = client
        .request_line(&write_diagnose_request(2, &job))
        .expect("diagnose answered");
    assert!(response.contains("\"ok\":true"), "{response}");

    let stats = client
        .request_line(r#"{"op":"stats","id":3,"prom":true}"#)
        .expect("stats answered");
    let v = parse(&stats).expect("stats response is JSON");
    assert_eq!(v.get("health").and_then(Json::as_str), Some("ready"));
    let report = v.get("report").expect("live report attached");
    let counter = |name: &str| {
        report
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    assert!(counter("serve.requests") >= 2, "{stats}");
    assert_eq!(counter("serve.errors"), 0, "{stats}");
    // Per-phase spans and the queue gauge made it into the report.
    let spans = report.get("spans").expect("spans section");
    for phase in [
        "serve.request",
        "serve.phase.queue",
        "serve.phase.restore",
        "serve.phase.diagnose",
        "serve.phase.render",
    ] {
        assert!(spans.get(phase).is_some(), "span {phase} missing: {stats}");
    }
    assert!(
        report
            .get("gauges")
            .and_then(|g| g.get("serve.queue_depth"))
            .and_then(|g| g.get("high_water"))
            .and_then(Json::as_u64)
            .is_some(),
        "{stats}"
    );
    // Prometheus exposition rides along as an escaped string.
    let prom = v
        .get("prom")
        .and_then(Json::as_str)
        .expect("prom text attached");
    assert!(prom.contains("netdiag_serve_requests_total"));
    assert!(prom.contains("netdiag_serve_queue_depth"));
    handle.stop();
}

#[test]
fn slo_zero_flight_dumps_every_request_with_phases() {
    let dir = std::env::temp_dir().join(format!("netdiag-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir for the flight log");
    let flight_path = dir.join("flight.jsonl");
    let baseline = Arc::new(Baseline::prepare(&test_config()));
    let handle = Server::start_with_baseline(
        ServeConfig {
            // SLO of zero: every request breaches, every request dumps.
            slo_micros: 0,
            flight_path: Some(flight_path.clone()),
            ..test_config()
        },
        Endpoint::Tcp("127.0.0.1:0".to_owned()),
        Arc::clone(&baseline),
    )
    .expect("daemon binds a loopback port");
    let addr = handle
        .tcp_addr()
        .expect("TCP endpoint resolves")
        .to_string();
    let scenario = baseline.sample_scenario(3).expect("scenario sampled");
    let job = DiagnoseJob {
        after: scenario.after,
        feed: Some(scenario.feed),
        ..Default::default()
    };
    let mut client = Client::connect_tcp(&addr).expect("client connects");
    let response = client
        .request_line(&write_diagnose_request(77, &job))
        .expect("diagnose answered");
    assert!(response.contains("\"ok\":true"), "{response}");
    assert_eq!(handle.flight_dumps(), Some(1), "exactly one dump");
    handle.stop();

    let log = std::fs::read_to_string(&flight_path).expect("flight log written");
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 1, "one request, one JSONL line: {log}");
    let dump = parse(lines[0]).expect("dump line is JSON");
    assert_eq!(dump.get("request").and_then(Json::as_u64), Some(77));
    assert!(dump.get("latency_us").and_then(Json::as_u64).is_some());
    let phases = dump.get("phases").expect("per-phase timings attached");
    for phase in ["queue_us", "restore_us", "diagnose_us", "render_us"] {
        assert!(
            phases.get(phase).and_then(Json::as_u64).is_some(),
            "phase {phase} missing: {}",
            lines[0]
        );
    }
    // The dump embeds the request's own causal trace (JSONL, escaped).
    let trace = dump
        .get("trace")
        .and_then(Json::as_str)
        .expect("trace attached");
    assert!(trace.contains("\"name\""), "trace events present: {trace}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn strict_algorithms_error_without_a_feed() {
    // nd-bgpigp with no uploaded feed runs against an EMPTY default
    // feed (lenient daemon default), but still succeeds — the error
    // path is a malformed feed.
    let (handle, baseline, addr) = start_daemon();
    let scenario = baseline.sample_scenario(3).expect("scenario sampled");
    let job = DiagnoseJob {
        algo: Algorithm::NdBgpIgp,
        after: scenario.after,
        feed: Some("not a feed line".to_owned()),
        ..Default::default()
    };
    let mut client = Client::connect_tcp(&addr).expect("client connects");
    let response = client
        .request_line(&write_diagnose_request(1, &job))
        .expect("answered");
    let v = parse(&response).expect("response is JSON");
    assert!(matches!(v.get("ok"), Some(Json::Bool(false))), "{response}");
    assert!(v
        .get("error")
        .and_then(Json::as_str)
        .expect("error message")
        .contains("feed"));
    handle.stop();
}
