//! Property-based tests of the topology layer: generator invariants over
//! random configurations and prefix/address-plan laws.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use proptest::prelude::*;

use netdiag_topology::builders::{build_internet, InternetConfig};
use netdiag_topology::{LinkKind, PeerKind, Prefix, PrefixTable};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generator always produces a valid topology with the requested
    /// shape, for any seed and a range of sizes.
    #[test]
    fn generator_shape_invariants(
        seed in 0u64..10_000,
        n_tier2 in 2usize..8,
        n_stub in 2usize..20,
        t2_frac in 0.0f64..1.0,
        stub_frac in 0.0f64..1.0,
    ) {
        let cfg = InternetConfig {
            n_tier2,
            tier2_size: 5,
            n_stub,
            tier2_multihomed_frac: t2_frac,
            stub_multihomed_frac: stub_frac,
            seed,
            ..InternetConfig::default()
        };
        let net = build_internet(&cfg);
        let t = &net.topology;
        prop_assert_eq!(t.as_count(), 3 + n_tier2 + n_stub);
        // Prefixes are disjoint across ASes.
        for a in t.ases() {
            for b in t.ases() {
                if a.id != b.id {
                    prop_assert!(!a.prefix.covers(&b.prefix));
                }
            }
        }
        // Every stub has at least one provider; every tier-2 a core above.
        for stub in &net.stubs {
            let has_provider = t.ases().iter().any(|other| {
                t.relationship(stub.as_id, other.id) == Some(PeerKind::Provider)
            });
            prop_assert!(has_provider);
        }
        // Inter links connect distinct ASes with a declared relationship.
        for l in t.links() {
            let (a, b) = (t.as_of_router(l.a), t.as_of_router(l.b));
            match l.kind {
                LinkKind::Intra => prop_assert_eq!(a, b),
                LinkKind::Inter => {
                    prop_assert_ne!(a, b);
                    prop_assert!(t.relationship(a, b).is_some());
                }
            }
        }
    }

    /// All interface and loopback addresses are globally unique and map
    /// back to their owners.
    #[test]
    fn address_plan_is_injective(seed in 0u64..2_000) {
        let net = build_internet(&InternetConfig::small(seed));
        let t = &net.topology;
        let mut seen = BTreeSet::new();
        for l in t.links() {
            prop_assert!(seen.insert(l.addr_a), "dup {}", l.addr_a);
            prop_assert!(seen.insert(l.addr_b), "dup {}", l.addr_b);
        }
        for r in t.routers() {
            prop_assert!(seen.insert(r.loopback), "dup {}", r.loopback);
        }
        for addr in seen {
            prop_assert!(t.ip_owner(addr).is_some());
            prop_assert!(t.as_of_ip(addr).is_some());
        }
    }

    /// Prefix::contains agrees with bit arithmetic; host() stays inside.
    #[test]
    fn prefix_laws(addr: u32, len in 0u8..=32, host in 0u32..1024) {
        let p = Prefix::new(Ipv4Addr::from(addr), len);
        prop_assert!(p.contains(p.network()));
        if 32 - len >= 10 {
            // host index < 1024 always fits in >= 10 host bits.
            prop_assert!(p.contains(p.host(host)));
        }
        // Canonicalization is idempotent.
        let q = Prefix::new(p.network(), len);
        prop_assert_eq!(p, q);
    }

    /// The prefix table always returns the longest matching prefix.
    #[test]
    fn table_lpm_law(addr: u32, lens in proptest::collection::btree_set(0u8..=24, 1..6)) {
        let ip = Ipv4Addr::from(addr);
        let mut table = PrefixTable::new();
        for &len in &lens {
            table.insert(Prefix::new(ip, len), len);
        }
        let (got, v) = table.lookup(ip).expect("some prefix matches");
        let longest = *lens.iter().max().unwrap();
        prop_assert_eq!(got.len(), longest);
        prop_assert_eq!(*v, longest);
    }
}

#[test]
fn relationships_are_antisymmetric_everywhere() {
    let net = build_internet(&InternetConfig::default());
    let t = &net.topology;
    for a in t.ases() {
        for b in t.ases() {
            if let Some(rel) = t.relationship(a.id, b.id) {
                assert_eq!(t.relationship(b.id, a.id), Some(rel.reverse()));
            }
        }
    }
}
