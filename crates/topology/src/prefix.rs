//! IPv4 prefixes and longest-prefix-match helpers.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 prefix (`address/len`).
///
/// The address is stored in canonical form: all bits below the prefix length
/// are zero. Construction through [`Prefix::new`] enforces this.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    bits: u32,
    len: u8,
}

impl Prefix {
    /// Creates a prefix, masking the address down to `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        let bits = u32::from(addr) & Self::mask(len);
        Prefix { bits, len }
    }

    /// The canonical network address of this prefix.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// The prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // a mask width, not a container
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the zero-length (default-route) prefix.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Does this prefix contain the given address?
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & Self::mask(self.len)) == self.bits
    }

    /// Does this prefix fully contain (or equal) `other`?
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && (other.bits & Self::mask(self.len)) == self.bits
    }

    /// Returns the `i`-th host address inside the prefix.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit in the host part.
    pub fn host(&self, i: u32) -> Ipv4Addr {
        let host_bits = 32 - self.len;
        assert!(
            host_bits == 32 || u64::from(i) < (1u64 << host_bits),
            "host index {i} out of range for /{}",
            self.len
        );
        Ipv4Addr::from(self.bits | i)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

/// Error returned when parsing a [`Prefix`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError(String);

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| ParsePrefixError(format!("missing '/' in {s:?}")))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|e| ParsePrefixError(format!("{s:?}: {e}")))?;
        let len: u8 = len
            .parse()
            .map_err(|e| ParsePrefixError(format!("{s:?}: {e}")))?;
        if len > 32 {
            return Err(ParsePrefixError(format!("{s:?}: length > 32")));
        }
        Ok(Prefix::new(addr, len))
    }
}

/// A longest-prefix-match table mapping prefixes to opaque values.
///
/// This is a simple sorted-scan implementation: the tables in this project
/// hold at most a few hundred prefixes, so an O(n) match keeps the code
/// obviously correct without a trie.
#[derive(Clone, Debug, Default)]
pub struct PrefixTable<T> {
    /// Entries sorted by descending prefix length so the first match wins.
    entries: Vec<(Prefix, T)>,
}

impl<T> PrefixTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        PrefixTable {
            entries: Vec::new(),
        }
    }

    /// Inserts or replaces the value for `prefix`.
    pub fn insert(&mut self, prefix: Prefix, value: T) {
        match self.entries.iter_mut().find(|(p, _)| *p == prefix) {
            Some(slot) => slot.1 = value,
            None => {
                let pos = self
                    .entries
                    .partition_point(|(p, _)| p.len() >= prefix.len());
                self.entries.insert(pos, (prefix, value));
            }
        }
    }

    /// Removes the entry for exactly `prefix`, returning its value.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<T> {
        let pos = self.entries.iter().position(|(p, _)| p == prefix)?;
        Some(self.entries.remove(pos).1)
    }

    /// Longest-prefix match for `addr`.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(&Prefix, &T)> {
        self.entries
            .iter()
            .find(|(p, _)| p.contains(addr))
            .map(|(p, t)| (p, t))
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Prefix) -> Option<&T> {
        self.entries
            .iter()
            .find(|(p, _)| p == prefix)
            .map(|(_, t)| t)
    }

    /// Iterates over all entries (most-specific first).
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &T)> {
        self.entries.iter().map(|(p, t)| (p, t))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn new_masks_host_bits() {
        let pre = Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(pre.network(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(pre.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn contains_respects_mask() {
        let pre = p("10.1.0.0/16");
        assert!(pre.contains(Ipv4Addr::new(10, 1, 255, 255)));
        assert!(!pre.contains(Ipv4Addr::new(10, 2, 0, 1)));
    }

    #[test]
    fn default_route_contains_everything() {
        let pre = p("0.0.0.0/0");
        assert!(pre.is_default());
        assert!(pre.contains(Ipv4Addr::new(255, 255, 255, 255)));
    }

    #[test]
    fn covers_is_reflexive_and_ordered() {
        let wide = p("10.0.0.0/8");
        let narrow = p("10.1.0.0/16");
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(wide.covers(&wide));
    }

    #[test]
    fn host_addresses() {
        let pre = p("10.1.0.0/16");
        assert_eq!(pre.host(1), Ipv4Addr::new(10, 1, 0, 1));
        assert_eq!(pre.host(257), Ipv4Addr::new(10, 1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn host_out_of_range_panics() {
        p("10.1.2.0/30").host(4);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("x/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn table_longest_match_wins() {
        let mut t = PrefixTable::new();
        t.insert(p("10.0.0.0/8"), "coarse");
        t.insert(p("10.1.0.0/16"), "fine");
        let (pre, v) = t.lookup(Ipv4Addr::new(10, 1, 2, 3)).unwrap();
        assert_eq!(*v, "fine");
        assert_eq!(pre.len(), 16);
        let (_, v) = t.lookup(Ipv4Addr::new(10, 9, 0, 1)).unwrap();
        assert_eq!(*v, "coarse");
        assert!(t.lookup(Ipv4Addr::new(11, 0, 0, 1)).is_none());
    }

    #[test]
    fn table_insert_replaces() {
        let mut t = PrefixTable::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.0.0.0/8"), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(*t.get(&p("10.0.0.0/8")).unwrap(), 2);
    }

    #[test]
    fn table_remove() {
        let mut t = PrefixTable::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(1));
        assert!(t.is_empty());
        assert_eq!(t.remove(&p("10.0.0.0/8")), None);
    }
}
