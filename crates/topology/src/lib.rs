//! Multi-AS network topology model for the NetDiagnoser reproduction.
//!
//! This crate provides the static description of an internetwork:
//!
//! * strongly-typed ids ([`AsId`], [`RouterId`], [`LinkId`], [`SensorId`]);
//! * IPv4 [`Prefix`]es and a longest-prefix-match [`PrefixTable`];
//! * the [`Topology`] itself — ASes, routers, links, business relationships,
//!   and the addressing plan — built through [`TopologyBuilder`];
//! * [`builders`] with embedded router-level maps of Abilene, GEANT and WIDE,
//!   a hub-and-spoke generator, and [`builders::build_internet`], which
//!   reproduces the paper's 165-AS evaluation topology.
//!
//! Everything here is immutable ground truth; protocol state lives in the
//! `netdiag-igp`, `netdiag-bgp` and `netdiag-netsim` crates.
//!
//! # Example
//!
//! ```
//! use netdiag_topology::builders::{build_internet, InternetConfig};
//!
//! let net = build_internet(&InternetConfig::default());
//! assert_eq!(net.topology.as_count(), 165);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod builders;
pub mod export;
pub mod gen;
mod ids;
mod prefix;
pub mod text;
mod topology;

pub use ids::{AsId, LinkId, RouterId, SensorId};
pub use prefix::{ParsePrefixError, Prefix, PrefixTable};
pub use topology::{
    AdjEntry, AsKind, AsNode, IpOwner, Link, LinkKind, LinkRelationship, PeerKind, Router,
    Topology, TopologyBuilder, TopologyError,
};
