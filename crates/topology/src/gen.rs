//! Deterministic internet-scale topology generator.
//!
//! [`builders`](crate::builders) reproduces the paper's 165-AS evaluation
//! internet with embedded real-world core maps; this module scales the
//! *topology axis*: a seeded generator producing Gao-Rexford-valid
//! internets of thousands of ASes with a power-law customer-degree
//! distribution, suitable for convergence-scaling experiments well beyond
//! what the paper's inferred topologies cover.
//!
//! The model is a standard three-tier hierarchy grown by preferential
//! attachment:
//!
//! * a clique of **tier-1** ASes, pairwise settlement-free peers, each a
//!   small multi-router backbone;
//! * **transit** ASes that buy transit from one or more earlier-created
//!   providers (tier-1 or transit) and resell it downward;
//! * **stub** ASes that buy transit and originate a single prefix.
//!
//! Provider choice is degree-proportional (each provider's weight is its
//! current customer count plus a smoothing constant), which yields the
//! heavy-tailed degree distribution observed in the real AS graph.
//! Because every customer→provider edge points at an *earlier* AS and the
//! tier-1 clique is fully peered, every generated internet is valley-free
//! reachable: each AS's prefix propagates up its provider chain(s) to a
//! tier-1, across the clique, and back down — a full RIB everywhere.
//!
//! Determinism: the only randomness source is an [`StdRng`] seeded from
//! [`GenConfig::seed`]; the same config is guaranteed to produce a
//! byte-identical [`Topology`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ids::{AsId, RouterId};
use crate::topology::{AsKind, LinkRelationship, Topology, TopologyBuilder, TopologyError};

/// Knobs for [`generate`]. Start from [`GenConfig::new`] and override
/// fields as needed.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// RNG seed; the sole source of randomness.
    pub seed: u64,
    /// Total number of ASes (tier-1 + transit + stubs).
    pub n_ases: usize,
    /// Size of the tier-1 clique (clamped to `n_ases`).
    pub n_tier1: usize,
    /// Probability that a non-tier-1 AS is a transit provider rather than
    /// a stub.
    pub transit_frac: f64,
    /// Probability that a non-tier-1 AS buys transit from a second,
    /// distinct provider (multihoming knob).
    pub multihoming: f64,
    /// Expected number of extra settlement-free peerings per transit AS
    /// (peering-density knob; links are placed between transit ASes with
    /// no existing relationship).
    pub peering_density: f64,
    /// Routers per tier-1 AS (ring backbone).
    pub tier1_routers: usize,
    /// Routers per transit AS.
    pub transit_routers: usize,
    /// Routers per stub AS.
    pub stub_routers: usize,
}

impl GenConfig {
    /// The default shape at a given scale: an 8-wide tier-1 clique, 15%
    /// transit ASes, 30% multihoming, half an extra peering per transit.
    pub fn new(n_ases: usize, seed: u64) -> Self {
        GenConfig {
            seed,
            n_ases,
            n_tier1: 8,
            transit_frac: 0.15,
            multihoming: 0.3,
            peering_density: 0.5,
            tier1_routers: 3,
            transit_routers: 2,
            stub_routers: 1,
        }
    }
}

/// A generated internet: the topology plus the tier classification the
/// generator assigned (AS ids are dense and creation-ordered: tier-1
/// first, then transit/stubs interleaved).
#[derive(Clone, Debug)]
pub struct GeneratedInternet {
    /// The built topology.
    pub topology: Topology,
    /// The tier-1 clique.
    pub tier1: Vec<AsId>,
    /// Transit ASes (customer-degree > 0 possible).
    pub transits: Vec<AsId>,
    /// Stub ASes.
    pub stubs: Vec<AsId>,
}

/// Per-AS bookkeeping while growing the graph.
struct GrowAs {
    as_id: AsId,
    routers: Vec<RouterId>,
    /// Current customer count (preferential-attachment weight).
    customers: usize,
    /// Round-robin cursor for border-router selection.
    next_border: usize,
}

impl GrowAs {
    /// The next border router, rotating through the AS's routers so
    /// inter-domain links spread across the backbone.
    fn border(&mut self) -> RouterId {
        let r = self.routers[self.next_border % self.routers.len()];
        self.next_border += 1;
        r
    }
}

/// Picks a provider index from `pool` with probability proportional to
/// `customers + SMOOTH`, skipping `exclude` (a previously-picked provider
/// for the same customer).
fn pick_provider(rng: &mut StdRng, pool: &[usize], grown: &[GrowAs], exclude: usize) -> usize {
    const SMOOTH: usize = 1;
    let total: usize = pool
        .iter()
        .filter(|&&i| i != exclude)
        .map(|&i| grown[i].customers + SMOOTH)
        .sum();
    debug_assert!(total > 0, "provider pool must not be empty");
    let mut ticket = rng.gen_range(0..total);
    for &i in pool {
        if i == exclude {
            continue;
        }
        let w = grown[i].customers + SMOOTH;
        if ticket < w {
            return i;
        }
        ticket -= w;
    }
    // Unreachable: the ticket is drawn below the total weight.
    pool[pool.len() - 1]
}

/// Adds the intra-domain backbone of an AS: a single router for stubs, a
/// ring with unit-jittered weights otherwise.
fn add_backbone(b: &mut TopologyBuilder, rng: &mut StdRng, routers: &[RouterId]) {
    match routers.len() {
        0 | 1 => {}
        2 => {
            b.add_intra_link(routers[0], routers[1], 1 + rng.gen_range(0u32..4));
        }
        n => {
            for i in 0..n {
                b.add_intra_link(routers[i], routers[(i + 1) % n], 1 + rng.gen_range(0u32..4));
            }
        }
    }
}

/// Generates a seeded internet-scale topology (see the module docs for
/// the model). Errors surface the usual [`TopologyBuilder`] validation,
/// e.g. address-space exhaustion past the plan's AS capacity.
pub fn generate(cfg: &GenConfig) -> Result<GeneratedInternet, TopologyError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = TopologyBuilder::new();
    let n_tier1 = cfg.n_tier1.clamp(1, cfg.n_ases);

    let mut grown: Vec<GrowAs> = Vec::with_capacity(cfg.n_ases);
    // Transit candidates by growth index (tier-1s and transits), the
    // preferential-attachment pool.
    let mut providers: Vec<usize> = Vec::new();
    // Growth indices of transit (non-tier-1) ASes, for peering placement.
    let mut transit_ix: Vec<usize> = Vec::new();
    let mut tier1 = Vec::new();
    let mut transits = Vec::new();
    let mut stubs = Vec::new();

    // Tier-1 clique.
    for i in 0..n_tier1 {
        let as_id = b.add_as(AsKind::Core, format!("T1-{i:02}"));
        let routers: Vec<RouterId> = (0..cfg.tier1_routers.max(1))
            .map(|k| b.add_router(as_id, format!("t1-{i:02}-r{k}")))
            .collect();
        add_backbone(&mut b, &mut rng, &routers);
        providers.push(grown.len());
        tier1.push(as_id);
        grown.push(GrowAs {
            as_id,
            routers,
            customers: 0,
            next_border: 0,
        });
    }
    for i in 0..n_tier1 {
        for j in (i + 1)..n_tier1 {
            let ra = grown[i].border();
            let rb = grown[j].border();
            b.add_inter_link(ra, rb, LinkRelationship::PeerPeer);
        }
    }

    // Transit and stub growth by preferential attachment.
    for i in n_tier1..cfg.n_ases {
        let is_transit = rng.gen_bool(cfg.transit_frac);
        let (kind, name, n_routers) = if is_transit {
            (AsKind::Tier2, format!("TR-{i:04}"), cfg.transit_routers)
        } else {
            (AsKind::Stub, format!("ST-{i:04}"), cfg.stub_routers)
        };
        let as_id = b.add_as(kind, name);
        let routers: Vec<RouterId> = (0..n_routers.max(1))
            .map(|k| b.add_router(as_id, format!("as{i}-r{k}")))
            .collect();
        add_backbone(&mut b, &mut rng, &routers);
        let me = grown.len();
        grown.push(GrowAs {
            as_id,
            routers,
            customers: 0,
            next_border: 0,
        });

        let primary = pick_provider(&mut rng, &providers, &grown, usize::MAX);
        let pr = grown[primary].border();
        let cr = grown[me].border();
        b.add_inter_link(pr, cr, LinkRelationship::ProviderCustomer);
        grown[primary].customers += 1;

        if providers.len() > 1 && rng.gen_bool(cfg.multihoming) {
            let second = pick_provider(&mut rng, &providers, &grown, primary);
            let pr = grown[second].border();
            let cr = grown[me].border();
            b.add_inter_link(pr, cr, LinkRelationship::ProviderCustomer);
            grown[second].customers += 1;
        }

        if is_transit {
            providers.push(me);
            transit_ix.push(me);
            transits.push(as_id);
        } else {
            stubs.push(as_id);
        }
    }

    // Settlement-free peerings among transit ASes. A peering is only
    // placed between ASes with no existing relationship, so provider
    // chains stay acyclic and relationships stay consistent.
    if transit_ix.len() >= 2 {
        let n_peerings = (cfg.peering_density * transit_ix.len() as f64) as usize;
        let mut placed = 0usize;
        let mut attempts = 0usize;
        while placed < n_peerings && attempts < n_peerings * 8 {
            attempts += 1;
            let x = transit_ix[rng.gen_range(0..transit_ix.len())];
            let y = transit_ix[rng.gen_range(0..transit_ix.len())];
            if x == y {
                continue;
            }
            if b.relationship_between(grown[x].as_id, grown[y].as_id)
                .is_some()
            {
                continue;
            }
            let ra = grown[x].border();
            let rb = grown[y].border();
            b.add_inter_link(ra, rb, LinkRelationship::PeerPeer);
            placed += 1;
        }
    }

    let topology = b.build()?;
    Ok(GeneratedInternet {
        topology,
        tier1,
        transits,
        stubs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkKind, PeerKind};

    #[test]
    fn same_seed_is_byte_identical() {
        let cfg = GenConfig::new(300, 42);
        let a = generate(&cfg).unwrap();
        let c = generate(&cfg).unwrap();
        assert_eq!(a.topology.as_count(), c.topology.as_count());
        assert_eq!(a.topology.router_count(), c.topology.router_count());
        assert_eq!(a.topology.link_count(), c.topology.link_count());
        for (la, lc) in a.topology.links().iter().zip(c.topology.links()) {
            assert_eq!((la.a, la.b, la.kind), (lc.a, lc.b, lc.kind));
            assert_eq!((la.weight_ab, la.weight_ba), (lc.weight_ab, lc.weight_ba));
        }
        for (na, nc) in a.topology.ases().iter().zip(c.topology.ases()) {
            assert_eq!(na.prefix, nc.prefix);
            assert_eq!(na.name, nc.name);
            assert_eq!(na.kind, nc.kind);
        }
    }

    #[test]
    fn different_seed_differs() {
        let a = generate(&GenConfig::new(300, 1)).unwrap();
        let c = generate(&GenConfig::new(300, 2)).unwrap();
        let links_a: Vec<_> = a.topology.links().iter().map(|l| (l.a, l.b)).collect();
        let links_c: Vec<_> = c.topology.links().iter().map(|l| (l.a, l.b)).collect();
        assert_ne!(links_a, links_c);
    }

    #[test]
    fn tiering_and_clique_shape() {
        let net = generate(&GenConfig::new(500, 7)).unwrap();
        assert_eq!(net.tier1.len(), 8);
        assert_eq!(
            net.tier1.len() + net.transits.len() + net.stubs.len(),
            net.topology.as_count()
        );
        // Tier-1s are pairwise peers.
        for (i, &a) in net.tier1.iter().enumerate() {
            for &c in &net.tier1[i + 1..] {
                assert_eq!(
                    net.topology.relationship(a, c),
                    Some(PeerKind::Peer),
                    "tier-1 clique must be fully peered"
                );
            }
        }
        // Every non-tier-1 AS has at least one provider.
        for n in &net.topology.ases()[net.tier1.len()..] {
            let has_provider = net
                .topology
                .ases()
                .iter()
                .any(|m| net.topology.relationship(n.id, m.id) == Some(PeerKind::Provider));
            assert!(has_provider, "{} has no provider", n.name);
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let net = generate(&GenConfig::new(2000, 11)).unwrap();
        let t = &net.topology;
        // AS-level degree: number of distinct neighbor ASes.
        let mut degree = vec![0usize; t.as_count()];
        let mut seen = std::collections::BTreeSet::new();
        for l in t.inter_links() {
            let (a, c) = (t.as_of_router(l.a), t.as_of_router(l.b));
            if seen.insert((a, c)) {
                degree[a.index()] += 1;
                degree[c.index()] += 1;
            }
        }
        let mut sorted = degree.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let max = *sorted.last().unwrap();
        // Heavy tail: the hub's degree dwarfs the median (a uniform
        // attachment model would put max within a small factor of median).
        assert!(median <= 3, "median degree {median} too high");
        assert!(
            max >= 20 * median.max(1),
            "no hub: max degree {max}, median {median}"
        );
        // And the tail decays: far fewer ASes at >=10x median than at the
        // median itself.
        let at_median = degree.iter().filter(|&&d| d == median).count();
        let in_tail = degree.iter().filter(|&&d| d >= 10 * median.max(1)).count();
        assert!(
            in_tail * 10 < at_median,
            "tail too fat: {in_tail} vs {at_median}"
        );
    }

    #[test]
    fn knobs_move_the_graph() {
        let base = GenConfig::new(400, 5);
        let lo = generate(&GenConfig {
            multihoming: 0.0,
            peering_density: 0.0,
            ..base.clone()
        })
        .unwrap();
        let hi = generate(&GenConfig {
            multihoming: 0.9,
            peering_density: 2.0,
            ..base
        })
        .unwrap();
        let inter = |t: &Topology| {
            t.links()
                .iter()
                .filter(|l| l.kind == LinkKind::Inter)
                .count()
        };
        assert!(
            inter(&hi.topology) > inter(&lo.topology) + 100,
            "multihoming/peering knobs must add inter-domain links ({} vs {})",
            inter(&hi.topology),
            inter(&lo.topology)
        );
    }

    #[test]
    fn scales_past_the_wide_address_tier() {
        // 1000 ASes crosses the 224 /16 boundary into the /24 tier.
        let net = generate(&GenConfig::new(1000, 3)).unwrap();
        assert_eq!(net.topology.as_count(), 1000);
        let n = net.topology.as_node(AsId(999));
        assert_eq!(n.prefix.len(), 24);
        assert!(!net.topology.as_node(AsId(999)).routers.is_empty());
    }
}
