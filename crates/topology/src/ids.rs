//! Strongly-typed identifiers for topology entities.
//!
//! All entities are referred to by dense `u32` indices wrapped in newtypes so
//! they cannot be confused with one another. Indices are assigned in creation
//! order by [`crate::TopologyBuilder`] and are stable for the lifetime of a
//! [`crate::Topology`].

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $tag:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of an autonomous system (dense index, *not* an ASN).
    AsId,
    "AS"
);
define_id!(
    /// Identifier of a router (global across all ASes).
    RouterId,
    "r"
);
define_id!(
    /// Identifier of a link (global across all ASes).
    LinkId,
    "l"
);
define_id!(
    /// Identifier of a sensor (an end host participating in the probe mesh).
    SensorId,
    "s"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_tag() {
        assert_eq!(AsId(3).to_string(), "AS3");
        assert_eq!(RouterId(14).to_string(), "r14");
        assert_eq!(LinkId(7).to_string(), "l7");
        assert_eq!(SensorId(0).to_string(), "s0");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(RouterId(1) < RouterId(2));
        assert_eq!(LinkId(5).index(), 5);
    }

    #[test]
    fn debug_matches_display() {
        assert_eq!(format!("{:?}", AsId(9)), "AS9");
    }
}
