//! Plain-text topology format — bring your own network.
//!
//! The simulator is not tied to the generated research Internet: any
//! topology can be described in a small line-oriented format and loaded
//! with [`parse_topology`]. Lines (comments start with `#`):
//!
//! ```text
//! as <name> core|tier2|stub          # declares an AS
//! router <as-name> <router-name>     # adds a router to an AS
//! link <router> <router> <w> [<w-reverse>]  # intra-domain link; one
//!                                    # weight = symmetric, two = per
//!                                    # direction (a->b then b->a)
//! peer <router> <router>             # inter-domain settlement-free peering
//! provider <router> <router>         # inter-domain: first AS provides
//!                                    # transit to the second
//! ```
//!
//! Router names must be globally unique. The addressing plan is assigned
//! exactly as [`crate::TopologyBuilder`] does for generated topologies.

use std::collections::HashMap;
use std::fmt;

use crate::ids::RouterId;
use crate::topology::{AsKind, LinkRelationship, Topology, TopologyBuilder, TopologyError};

/// A parse or validation failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTopologyError {
    /// 1-based line number (0 for builder validation errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTopologyError {}

impl From<TopologyError> for ParseTopologyError {
    fn from(e: TopologyError) -> Self {
        ParseTopologyError {
            line: 0,
            message: e.to_string(),
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseTopologyError {
    ParseTopologyError {
        line,
        message: message.into(),
    }
}

/// Parses a topology description.
///
/// ```
/// use netdiag_topology::text::parse_topology;
///
/// let t = parse_topology(
///     "as Core core\n\
///      as Edge stub\n\
///      router Core c1\n\
///      router Edge e1\n\
///      provider c1 e1\n",
/// )
/// .unwrap();
/// assert_eq!(t.as_count(), 2);
/// assert_eq!(t.link_count(), 1);
/// ```
pub fn parse_topology(text: &str) -> Result<Topology, ParseTopologyError> {
    let mut b = TopologyBuilder::new();
    let mut ases: HashMap<String, crate::ids::AsId> = HashMap::new();
    let mut routers: HashMap<String, RouterId> = HashMap::new();

    for (n, raw) in text.lines().enumerate() {
        let n = n + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["as", name, kind] => {
                let kind = match *kind {
                    "core" => AsKind::Core,
                    "tier2" => AsKind::Tier2,
                    "stub" => AsKind::Stub,
                    other => return Err(err(n, format!("unknown AS kind {other:?}"))),
                };
                if ases.contains_key(*name) {
                    return Err(err(n, format!("duplicate AS {name:?}")));
                }
                ases.insert(name.to_string(), b.add_as(kind, *name));
            }
            ["router", as_name, name] => {
                let &as_id = ases
                    .get(*as_name)
                    .ok_or_else(|| err(n, format!("unknown AS {as_name:?}")))?;
                if routers.contains_key(*name) {
                    return Err(err(n, format!("duplicate router {name:?}")));
                }
                routers.insert(name.to_string(), b.add_router(as_id, *name));
            }
            ["link", a, c, rest @ ..] if !rest.is_empty() && rest.len() <= 2 => {
                let (&ra, &rc) = (
                    routers
                        .get(*a)
                        .ok_or_else(|| err(n, format!("unknown router {a:?}")))?,
                    routers
                        .get(*c)
                        .ok_or_else(|| err(n, format!("unknown router {c:?}")))?,
                );
                let parse_w = |w: &str| {
                    w.parse::<u32>()
                        .ok()
                        .filter(|&w| w >= 1)
                        .ok_or_else(|| err(n, "weight must be an integer >= 1"))
                };
                let w_ab = parse_w(rest[0])?;
                let w_ba = if rest.len() == 2 {
                    parse_w(rest[1])?
                } else {
                    w_ab
                };
                b.add_intra_link_asym(ra, rc, w_ab, w_ba);
            }
            ["peer", a, c] | ["provider", a, c] => {
                let (&ra, &rc) = (
                    routers
                        .get(*a)
                        .ok_or_else(|| err(n, format!("unknown router {a:?}")))?,
                    routers
                        .get(*c)
                        .ok_or_else(|| err(n, format!("unknown router {c:?}")))?,
                );
                let rel = if parts[0] == "peer" {
                    LinkRelationship::PeerPeer
                } else {
                    LinkRelationship::ProviderCustomer
                };
                b.add_inter_link(ra, rc, rel);
            }
            _ => return Err(err(n, format!("unrecognized line: {line:?}"))),
        }
    }
    Ok(b.build()?)
}

/// Serializes a topology back into the text format (round-trippable up to
/// creation order).
pub fn write_topology(t: &Topology) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("# as <name> core|tier2|stub / router / link / peer / provider\n");
    for asn in t.ases() {
        let kind = match asn.kind {
            AsKind::Core => "core",
            AsKind::Tier2 => "tier2",
            AsKind::Stub => "stub",
        };
        let _ = writeln!(out, "as {} {kind}", asn.name);
    }
    for r in t.routers() {
        let _ = writeln!(out, "router {} {}", t.as_node(r.as_id).name, r.name);
    }
    for l in t.links() {
        let (a, b) = (t.router(l.a), t.router(l.b));
        match l.kind {
            crate::topology::LinkKind::Intra => {
                if l.weight_ab == l.weight_ba {
                    let _ = writeln!(out, "link {} {} {}", a.name, b.name, l.weight_ab);
                } else {
                    let _ = writeln!(
                        out,
                        "link {} {} {} {}",
                        a.name, b.name, l.weight_ab, l.weight_ba
                    );
                }
            }
            crate::topology::LinkKind::Inter => {
                let rel = t
                    .relationship(a.as_id, b.as_id)
                    .expect("inter link has relationship");
                let verb = match rel {
                    crate::topology::PeerKind::Customer => "provider",
                    crate::topology::PeerKind::Peer => "peer",
                    // a pays b: write it from the provider side.
                    crate::topology::PeerKind::Provider => {
                        let _ = writeln!(out, "provider {} {}", b.name, a.name);
                        continue;
                    }
                };
                let _ = writeln!(out, "{verb} {} {}", a.name, b.name);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::PeerKind;

    const SAMPLE: &str = "\
# a tiny transit triangle
as Core core
as T tier2
as S stub
router Core c1
router Core c2
router T t1
router S s1
link c1 c2 10
provider c2 t1
provider t1 s1
";

    #[test]
    fn parses_sample() {
        let t = parse_topology(SAMPLE).unwrap();
        assert_eq!(t.as_count(), 3);
        assert_eq!(t.router_count(), 4);
        assert_eq!(t.link_count(), 3);
        // provider c2 t1 => Core is T's provider.
        let core = t.ases()[0].id;
        let tier = t.ases()[1].id;
        assert_eq!(t.relationship(tier, core), Some(PeerKind::Provider));
    }

    #[test]
    fn roundtrips() {
        let t = parse_topology(SAMPLE).unwrap();
        let text = write_topology(&t);
        let t2 = parse_topology(&text).unwrap();
        assert_eq!(t.as_count(), t2.as_count());
        assert_eq!(t.router_count(), t2.router_count());
        assert_eq!(t.link_count(), t2.link_count());
        for (a, b) in t.links().iter().zip(t2.links()) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.weight_ab, b.weight_ab);
            assert_eq!(a.weight_ba, b.weight_ba);
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_topology("as X coreish").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_topology("as X core\nrouter Y r1").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_topology("as X core\nrouter X r1\nlink r1 r9 5").unwrap_err();
        assert_eq!(e.line, 3);
        let e = parse_topology("as X core\nrouter X r1\nrouter X r2\nlink r1 r2 0").unwrap_err();
        assert!(e.message.contains(">= 1"));
        let e = parse_topology("bananas").unwrap_err();
        assert!(e.message.contains("unrecognized"));
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(parse_topology("as X core\nas X stub").is_err());
        assert!(parse_topology("as X core\nrouter X r1\nrouter X r1").is_err());
    }

    #[test]
    fn builder_validation_propagates() {
        // Disconnected AS caught at build time (line 0).
        let e = parse_topology("as X core\nrouter X r1\nrouter X r2").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("not internally connected"));
    }

    #[test]
    fn figure2_roundtrips_through_text() {
        let fig = crate::builders::paper_figure2();
        let text = write_topology(&fig.topology);
        let parsed = parse_topology(&text).unwrap();
        assert_eq!(parsed.as_count(), 5);
        assert_eq!(parsed.link_count(), fig.topology.link_count());
    }
}
