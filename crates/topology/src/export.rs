//! Graphviz export of topologies — for eyeballing generated internets and
//! illustrating diagnosis results.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::ids::LinkId;
use crate::topology::{AsKind, LinkKind, Topology};

/// Options for the DOT rendering.
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Links to highlight (drawn red and bold) — e.g. failed links or a
    /// diagnosis hypothesis.
    pub highlight: BTreeSet<LinkId>,
    /// Skip stub ASes (keeps large topologies readable).
    pub hide_stubs: bool,
}

/// Renders the topology as a Graphviz `dot` graph: one cluster per AS,
/// routers as nodes, links as edges (inter-domain edges dashed).
pub fn to_dot(topology: &Topology, opts: &DotOptions) -> String {
    let mut out = String::from("graph topology {\n  layout=sfdp;\n  overlap=false;\n");
    let hidden = |as_idx: usize| opts.hide_stubs && topology.ases()[as_idx].kind == AsKind::Stub;
    for asn in topology.ases() {
        if hidden(asn.id.index()) {
            continue;
        }
        let _ = writeln!(out, "  subgraph cluster_{} {{", asn.id.0);
        let _ = writeln!(out, "    label=\"{} ({})\";", asn.name, asn.prefix);
        let shape = match asn.kind {
            AsKind::Core => "doublecircle",
            AsKind::Tier2 => "circle",
            AsKind::Stub => "box",
        };
        for &r in &asn.routers {
            let router = topology.router(r);
            let _ = writeln!(
                out,
                "    r{} [label=\"{}\", shape={shape}];",
                r.0, router.name
            );
        }
        let _ = writeln!(out, "  }}");
    }
    for link in topology.links() {
        let a_as = topology.as_of_router(link.a).index();
        let b_as = topology.as_of_router(link.b).index();
        if hidden(a_as) || hidden(b_as) {
            continue;
        }
        let mut attrs: Vec<String> = Vec::new();
        if link.kind == LinkKind::Inter {
            attrs.push("style=dashed".into());
        } else {
            if link.weight_ab == link.weight_ba {
                attrs.push(format!("label=\"{}\"", link.weight_ab));
            } else {
                attrs.push(format!("label=\"{}/{}\"", link.weight_ab, link.weight_ba));
            }
        }
        if opts.highlight.contains(&link.id) {
            attrs.push("color=red".into());
            attrs.push("penwidth=3".into());
        }
        let _ = writeln!(
            out,
            "  r{} -- r{} [{}];",
            link.a.0,
            link.b.0,
            attrs.join(", ")
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkRelationship, TopologyBuilder};

    fn sample() -> Topology {
        let mut b = TopologyBuilder::new();
        let core = b.add_as(AsKind::Core, "Core");
        let stub = b.add_as(AsKind::Stub, "Stub");
        let c1 = b.add_router(core, "c1");
        let c2 = b.add_router(core, "c2");
        b.add_intra_link(c1, c2, 7);
        let s1 = b.add_router(stub, "s1");
        b.add_inter_link(c2, s1, LinkRelationship::ProviderCustomer);
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_clusters_and_edges() {
        let t = sample();
        let dot = to_dot(&t, &DotOptions::default());
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("subgraph cluster_1"));
        assert!(dot.contains("r0 -- r1 [label=\"7\"]"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.starts_with("graph topology {"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn highlight_marks_links_red() {
        let t = sample();
        let opts = DotOptions {
            highlight: BTreeSet::from([LinkId(1)]),
            hide_stubs: false,
        };
        let dot = to_dot(&t, &opts);
        assert!(dot.contains("color=red"));
    }

    #[test]
    fn hide_stubs_removes_them() {
        let t = sample();
        let opts = DotOptions {
            highlight: BTreeSet::new(),
            hide_stubs: true,
        };
        let dot = to_dot(&t, &opts);
        assert!(!dot.contains("cluster_1"));
        assert!(!dot.contains("style=dashed"), "stub uplink hidden too");
    }
}
