//! Internet-scale topology generators.
//!
//! [`build_internet`] produces the paper's evaluation topology (§5): a
//! 165-AS "research Internet" with three backbone cores in full mesh
//! (router-level maps shaped after the 2007-era Abilene, GEANT and WIDE
//! backbones), 22 tier-2 transit ASes (12-router hub-and-spoke by
//! default, 50% multihomed), and 140 single-router stub ASes (25%
//! multihomed). [`paper_figure2`] builds the five-AS running example of
//! the paper's Figure 2 exactly as §2.2/§3.1 narrate it.
//!
//! Everything is deterministic in the [`InternetConfig::seed`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ids::{AsId, RouterId};
use crate::topology::{AsKind, LinkRelationship, Topology, TopologyBuilder};

/// Intradomain graph style of the generated tier-2 ASes (used by the
/// robustness study; the paper's tier-2s are hub-and-spoke).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier2Style {
    /// One hub router, spokes attached to it (the default).
    HubSpoke,
    /// A single cycle.
    Ring,
    /// Two parallel rails with rungs between them.
    Ladder,
}

/// Parameters of [`build_internet`].
#[derive(Clone, Debug)]
pub struct InternetConfig {
    /// Seed of all random choices (attachment points, multihoming).
    pub seed: u64,
    /// Number of tier-2 transit ASes (paper: 22).
    pub n_tier2: usize,
    /// Number of stub ASes (paper: 140).
    pub n_stub: usize,
    /// Routers per tier-2 AS (paper: 12).
    pub tier2_size: usize,
    /// Intradomain style of the tier-2 ASes.
    pub tier2_style: Tier2Style,
    /// Fraction of tier-2 ASes homed to two cores (paper: 50%).
    pub tier2_multihomed_frac: f64,
    /// Fraction of stubs homed to two tier-2 ASes (paper: 25%).
    pub stub_multihomed_frac: f64,
    /// Use the full embedded core maps (11/22/14 routers). `false`
    /// replaces them with three 4-router mini cores for fast tests.
    pub full_cores: bool,
}

impl Default for InternetConfig {
    fn default() -> Self {
        InternetConfig {
            seed: 1,
            n_tier2: 22,
            n_stub: 140,
            tier2_size: 12,
            tier2_style: Tier2Style::HubSpoke,
            tier2_multihomed_frac: 0.5,
            stub_multihomed_frac: 0.25,
            full_cores: true,
        }
    }
}

impl InternetConfig {
    /// A small instance for tests: mini cores, 4 tier-2 ASes of 4 routers,
    /// 12 stubs.
    pub fn small(seed: u64) -> Self {
        InternetConfig {
            seed,
            n_tier2: 4,
            n_stub: 12,
            tier2_size: 4,
            full_cores: false,
            ..InternetConfig::default()
        }
    }
}

/// One generated AS with its routers (creation order).
#[derive(Clone, Debug)]
pub struct BuiltAs {
    /// The AS.
    pub as_id: AsId,
    /// Its routers, index 0 first-created.
    pub routers: Vec<RouterId>,
}

/// A generated internetwork: the topology plus the role lists the
/// experiment harness samples from.
#[derive(Clone, Debug)]
pub struct Internet {
    /// The built topology.
    pub topology: Topology,
    /// Core (tier-1) ASes.
    pub cores: Vec<BuiltAs>,
    /// Tier-2 transit ASes.
    pub tier2: Vec<BuiltAs>,
    /// Stub ASes.
    pub stubs: Vec<BuiltAs>,
}

impl Internet {
    /// Classifies an externally built topology (e.g. parsed from text)
    /// into the role lists, using each AS's [`AsKind`].
    pub fn from_topology(topology: Topology) -> Internet {
        let mut cores = Vec::new();
        let mut tier2 = Vec::new();
        let mut stubs = Vec::new();
        for node in topology.ases() {
            let built = BuiltAs {
                as_id: node.id,
                routers: node.routers.clone(),
            };
            match node.kind {
                AsKind::Core => cores.push(built),
                AsKind::Tier2 => tier2.push(built),
                AsKind::Stub => stubs.push(built),
            }
        }
        Internet {
            topology,
            cores,
            tier2,
            stubs,
        }
    }
}

/// An embedded core backbone map: router names and weighted adjacency.
struct CoreMap {
    name: &'static str,
    routers: &'static [&'static str],
    links: &'static [(usize, usize, u32)],
}

/// 11-node Abilene backbone (2007-era public map; weights are rough
/// latency-derived metrics — exact values are not load-bearing, the path
/// diversity is).
const ABILENE: CoreMap = CoreMap {
    name: "Abilene",
    routers: &[
        "Seattle",
        "Sunnyvale",
        "LosAngeles",
        "Denver",
        "KansasCity",
        "Houston",
        "Chicago",
        "Indianapolis",
        "Atlanta",
        "WashingtonDC",
        "NewYork",
    ],
    links: &[
        (0, 1, 10),
        (0, 3, 12),
        (1, 2, 6),
        (1, 3, 11),
        (2, 5, 14),
        (3, 4, 6),
        (4, 5, 8),
        (4, 7, 5),
        (5, 8, 10),
        (7, 6, 3),
        (7, 8, 7),
        (6, 10, 9),
        (8, 9, 6),
        (9, 10, 3),
    ],
};

/// 22-node GEANT backbone approximation (hub countries DE/UK/FR/IT plus
/// the 2007 ring spurs).
const GEANT: CoreMap = CoreMap {
    name: "GEANT",
    routers: &[
        "UK", "FR", "DE", "IT", "ES", "NL", "BE", "CH", "AT", "CZ", "PL", "HU", "SK", "SI", "GR",
        "PT", "IE", "SE", "DK", "FI", "EE", "LU",
    ],
    links: &[
        (0, 1, 7),   // UK-FR
        (0, 5, 6),   // UK-NL
        (0, 16, 9),  // UK-IE
        (0, 17, 14), // UK-SE
        (1, 4, 10),  // FR-ES
        (1, 7, 6),   // FR-CH
        (1, 21, 4),  // FR-LU
        (2, 5, 5),   // DE-NL
        (2, 18, 6),  // DE-DK
        (2, 10, 8),  // DE-PL
        (2, 9, 5),   // DE-CZ
        (2, 8, 7),   // DE-AT
        (2, 7, 6),   // DE-CH
        (5, 6, 3),   // NL-BE
        (6, 21, 3),  // BE-LU
        (4, 15, 6),  // ES-PT
        (3, 7, 5),   // IT-CH
        (3, 8, 8),   // IT-AT
        (3, 14, 12), // IT-GR
        (8, 11, 4),  // AT-HU
        (8, 13, 3),  // AT-SI
        (9, 12, 4),  // CZ-SK
        (17, 19, 6), // SE-FI
        (19, 20, 4), // FI-EE
        (17, 18, 5), // SE-DK
        (11, 12, 3), // HU-SK
        (15, 0, 13), // PT-UK
        (16, 5, 12), // IE-NL
        (14, 8, 10), // GR-AT
        (13, 11, 5), // SI-HU
        (10, 9, 6),  // PL-CZ
        (20, 10, 9), // EE-PL
    ],
};

/// 14-node WIDE backbone approximation (domestic ring plus the two US
/// landing points).
const WIDE: CoreMap = CoreMap {
    name: "WIDE",
    routers: &[
        "Sapporo",
        "Sendai",
        "Tsukuba",
        "TokyoA",
        "TokyoB",
        "Yokohama",
        "Nagoya",
        "Kyoto",
        "Osaka",
        "Hiroshima",
        "Fukuoka",
        "Okinawa",
        "SanFrancisco",
        "LosAngelesUS",
    ],
    links: &[
        (0, 1, 8),
        (1, 3, 6),
        (2, 3, 2),
        (2, 4, 2),
        (3, 4, 1),
        (4, 5, 1),
        (3, 6, 5),
        (6, 8, 3),
        (8, 7, 1),
        (8, 9, 4),
        (9, 10, 3),
        (10, 11, 8),
        (4, 12, 80),
        (12, 13, 8),
        (3, 13, 85),
        (0, 3, 12),
        (3, 5, 2),
        (6, 7, 2),
        (3, 10, 11),
        (9, 11, 9),
    ],
};

/// 4-router mini core (ring plus one chord) used by
/// [`InternetConfig::small`].
const MINI_LINKS: &[(usize, usize, u32)] = &[(0, 1, 2), (1, 2, 3), (2, 3, 2), (3, 0, 3), (0, 2, 5)];

fn add_core(b: &mut TopologyBuilder, map: &CoreMap) -> BuiltAs {
    let as_id = b.add_as(AsKind::Core, map.name);
    let routers: Vec<RouterId> = map
        .routers
        .iter()
        .map(|name| b.add_router(as_id, format!("{}-{name}", map.name)))
        .collect();
    for &(i, j, w) in map.links {
        b.add_intra_link(routers[i], routers[j], w);
    }
    BuiltAs { as_id, routers }
}

fn add_mini_core(b: &mut TopologyBuilder, idx: usize) -> BuiltAs {
    let name = format!("Core{idx}");
    let as_id = b.add_as(AsKind::Core, &name);
    let routers: Vec<RouterId> = (0..4)
        .map(|k| b.add_router(as_id, format!("{name}-r{k}")))
        .collect();
    for &(i, j, w) in MINI_LINKS {
        b.add_intra_link(routers[i], routers[j], w);
    }
    BuiltAs { as_id, routers }
}

/// Builds a tier-2 AS with the configured intradomain style; returns the
/// built AS and the indices of routers suitable as uplink attach points.
fn add_tier2(
    b: &mut TopologyBuilder,
    idx: usize,
    size: usize,
    style: Tier2Style,
    rng: &mut StdRng,
) -> BuiltAs {
    let size = size.max(2);
    let name = format!("T2-{idx:02}");
    let as_id = b.add_as(AsKind::Tier2, &name);
    let routers: Vec<RouterId> = (0..size)
        .map(|k| b.add_router(as_id, format!("{name}-r{k}")))
        .collect();
    match style {
        Tier2Style::HubSpoke => {
            // Router 0 is the hub.
            for (k, &spoke) in routers.iter().enumerate().skip(1) {
                let w = 1 + ((k * 3) % 5) as u32;
                b.add_intra_link(routers[0], spoke, w);
            }
        }
        Tier2Style::Ring => {
            for k in 0..size {
                let w = 1 + rng.gen_range(0u32..4);
                let next = (k + 1) % size;
                if size == 2 && k == 1 {
                    break; // avoid the duplicate back-link on a 2-ring
                }
                b.add_intra_link(routers[k], routers[next], w);
            }
        }
        Tier2Style::Ladder => {
            // Rails 0..half and half..size, rungs between aligned slots.
            let half = (size / 2).max(1);
            for k in 0..half.saturating_sub(1) {
                b.add_intra_link(routers[k], routers[k + 1], 1 + (k % 3) as u32);
            }
            for k in half..size.saturating_sub(1) {
                b.add_intra_link(routers[k], routers[k + 1], 1 + (k % 3) as u32);
            }
            for k in 0..half.min(size - half) {
                b.add_intra_link(routers[k], routers[half + k], 2 + (k % 2) as u32);
            }
        }
    }
    BuiltAs { as_id, routers }
}

/// Picks a router of `built` to terminate an uplink.
fn attach_point(built: &BuiltAs, rng: &mut StdRng) -> RouterId {
    built.routers[rng.gen_range(0..built.routers.len())]
}

/// Generates the evaluation internetwork described by `cfg`.
///
/// Shape: cores in full mesh with **two** interconnection points per core
/// pair (see DESIGN.md §6.5), tier-2 ASes as customers of one or two
/// cores, stubs as customers of one or two tier-2 ASes.
pub fn build_internet(cfg: &InternetConfig) -> Internet {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = TopologyBuilder::new();

    // Cores.
    let cores: Vec<BuiltAs> = if cfg.full_cores {
        [&ABILENE, &GEANT, &WIDE]
            .into_iter()
            .map(|m| add_core(&mut b, m))
            .collect()
    } else {
        (0..3).map(|i| add_mini_core(&mut b, i)).collect()
    };

    // Full mesh between cores, two interconnection points per pair.
    for i in 0..cores.len() {
        for j in i + 1..cores.len() {
            let (ca, cb) = (&cores[i], &cores[j]);
            let a1 = rng.gen_range(0..ca.routers.len());
            let mut a2 = rng.gen_range(0..ca.routers.len());
            if a2 == a1 {
                a2 = (a1 + 1) % ca.routers.len();
            }
            for a_idx in [a1, a2] {
                let b_side = attach_point(cb, &mut rng);
                b.add_inter_link(ca.routers[a_idx], b_side, LinkRelationship::PeerPeer);
            }
        }
    }

    // Tier-2 transit ASes, customers of one or two cores.
    let mut tier2 = Vec::with_capacity(cfg.n_tier2);
    let mut multihomed_t2 = Vec::new();
    for idx in 0..cfg.n_tier2 {
        let t2 = add_tier2(&mut b, idx, cfg.tier2_size, cfg.tier2_style, &mut rng);
        // Hub-and-spoke transit terminates its uplinks at the hub: a chain
        // through the provider then shares no interior intra-domain hop
        // with the per-customer spokes, so the diagnoser's candidate edges
        // tie instead of an interior hub link out-scoring the true uplink.
        let uplink_at = |t2: &BuiltAs, rng: &mut StdRng| match cfg.tier2_style {
            Tier2Style::HubSpoke => t2.routers[0],
            _ => attach_point(t2, rng),
        };
        let primary = rng.gen_range(0..cores.len());
        let up1 = uplink_at(&t2, &mut rng);
        b.add_inter_link(
            attach_point(&cores[primary], &mut rng),
            up1,
            LinkRelationship::ProviderCustomer,
        );
        if cores.len() > 1 && rng.gen_bool(cfg.tier2_multihomed_frac) {
            let mut second = rng.gen_range(0..cores.len());
            if second == primary {
                second = (second + 1) % cores.len();
            }
            let up2 = uplink_at(&t2, &mut rng);
            b.add_inter_link(
                attach_point(&cores[second], &mut rng),
                up2,
                LinkRelationship::ProviderCustomer,
            );
            multihomed_t2.push(idx);
        }
        tier2.push(t2);
    }

    // Stubs: single router, customer of one or two tier-2 ASes. Under a
    // hub-and-spoke provider, customers round-robin over the spokes so two
    // stubs (and the hub uplink) rarely share an attachment router.
    let mut spoke_rr = vec![0usize; tier2.len()];
    let stub_attach = |j: usize, spoke_rr: &mut [usize], rng: &mut StdRng| {
        let t2: &BuiltAs = &tier2[j];
        match cfg.tier2_style {
            Tier2Style::HubSpoke if t2.routers.len() > 1 => {
                let n = t2.routers.len() - 1;
                let r = t2.routers[1 + spoke_rr[j] % n];
                spoke_rr[j] += 1;
                r
            }
            _ => attach_point(t2, rng),
        }
    };
    let mut stubs = Vec::with_capacity(cfg.n_stub);
    for idx in 0..cfg.n_stub {
        let name = format!("S-{idx:03}");
        let as_id = b.add_as(AsKind::Stub, &name);
        let r = b.add_router(as_id, format!("{name}-r0"));
        let built = BuiltAs {
            as_id,
            routers: vec![r],
        };
        let multihomed = tier2.len() > 1 && rng.gen_bool(cfg.stub_multihomed_frac);
        // Multihomed stubs home under multihomed tier-2 providers: a
        // provider that can itself reroute never strands its single-homed
        // customers while the multihomed stub survives and reroutes around
        // them, which would leave the shared provider chain half-exonerated.
        let all: Vec<usize> = (0..tier2.len()).collect();
        let pool: &[usize] = if multihomed && multihomed_t2.len() >= 2 {
            &multihomed_t2
        } else {
            &all
        };
        let primary = pool[rng.gen_range(0..pool.len())];
        let a1 = stub_attach(primary, &mut spoke_rr, &mut rng);
        b.add_inter_link(a1, r, LinkRelationship::ProviderCustomer);
        if multihomed {
            let mut si = rng.gen_range(0..pool.len());
            if pool[si] == primary {
                si = (si + 1) % pool.len();
            }
            let a2 = stub_attach(pool[si], &mut spoke_rr, &mut rng);
            b.add_inter_link(a2, r, LinkRelationship::ProviderCustomer);
        }
        stubs.push(built);
    }

    let topology = b.build().expect("generated internet must validate");
    Internet {
        topology,
        cores,
        tier2,
        stubs,
    }
}

/// The paper's Figure 2 network: five ASes A, X, Y, B, C.
///
/// Router arrays use the paper's names: `a[0]` is a1, `y[3]` is y4, etc.
#[derive(Clone, Debug)]
pub struct Figure2 {
    /// The built topology.
    pub topology: Topology,
    /// AS A's routers a1, a2.
    pub a: [RouterId; 2],
    /// AS X's routers x1, x2.
    pub x: [RouterId; 2],
    /// AS Y's routers y1..y4.
    pub y: [RouterId; 4],
    /// AS B's routers b1, b2.
    pub b: [RouterId; 2],
    /// AS C's router c1.
    pub c: [RouterId; 1],
}

impl Figure2 {
    /// The AS ids in the order `[A, X, Y, B, C]`.
    pub fn as_ids(&self) -> [AsId; 5] {
        [AsId(0), AsId(1), AsId(2), AsId(3), AsId(4)]
    }
}

/// Builds the Figure 2 network: `s1-s2` routes a1 a2 x1 x2 y1 y4 b1 b2,
/// `s1-s3` routes a1 a2 x1 x2 y1 y3 c1 (§2.2).
pub fn paper_figure2() -> Figure2 {
    let mut b = TopologyBuilder::new();
    let as_a = b.add_as(AsKind::Stub, "A");
    let as_x = b.add_as(AsKind::Core, "X");
    let as_y = b.add_as(AsKind::Core, "Y");
    let as_b = b.add_as(AsKind::Stub, "B");
    let as_c = b.add_as(AsKind::Stub, "C");

    let a = [b.add_router(as_a, "a1"), b.add_router(as_a, "a2")];
    let x = [b.add_router(as_x, "x1"), b.add_router(as_x, "x2")];
    let y = [
        b.add_router(as_y, "y1"),
        b.add_router(as_y, "y2"),
        b.add_router(as_y, "y3"),
        b.add_router(as_y, "y4"),
    ];
    let bb = [b.add_router(as_b, "b1"), b.add_router(as_b, "b2")];
    let c = [b.add_router(as_c, "c1")];

    b.add_intra_link(a[0], a[1], 1);
    b.add_intra_link(x[0], x[1], 1);
    b.add_intra_link(y[0], y[1], 1);
    b.add_intra_link(y[0], y[2], 1);
    b.add_intra_link(y[0], y[3], 1);
    b.add_intra_link(bb[0], bb[1], 1);

    // X is A's provider; X and Y peer; Y is the provider of B and C.
    b.add_inter_link(x[0], a[1], LinkRelationship::ProviderCustomer);
    b.add_inter_link(x[1], y[0], LinkRelationship::PeerPeer);
    b.add_inter_link(y[3], bb[0], LinkRelationship::ProviderCustomer);
    b.add_inter_link(y[2], c[0], LinkRelationship::ProviderCustomer);

    Figure2 {
        topology: b.build().expect("figure 2 network must validate"),
        a,
        x,
        y,
        b: bb,
        c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{AsKind, LinkKind, PeerKind};

    #[test]
    fn paper_scale_shape() {
        let net = build_internet(&InternetConfig::default());
        assert_eq!(net.topology.as_count(), 165);
        assert_eq!(net.cores.len(), 3);
        assert_eq!(net.tier2.len(), 22);
        assert_eq!(net.stubs.len(), 140);
        assert_eq!(net.cores[0].routers.len(), 11, "Abilene");
        assert_eq!(net.cores[1].routers.len(), 22, "GEANT");
        assert_eq!(net.cores[2].routers.len(), 14, "WIDE");
        assert!(net.tier2.iter().all(|t| t.routers.len() == 12));
        assert!(net.stubs.iter().all(|s| s.routers.len() == 1));
    }

    #[test]
    fn cores_fully_meshed_with_two_interconnects() {
        let net = build_internet(&InternetConfig::default());
        for i in 0..3 {
            for j in i + 1..3 {
                let (a, b) = (net.cores[i].as_id, net.cores[j].as_id);
                assert_eq!(net.topology.relationship(a, b), Some(PeerKind::Peer));
                let count = net
                    .topology
                    .inter_links()
                    .filter(|l| {
                        let (la, lb) = (
                            net.topology.as_of_router(l.a),
                            net.topology.as_of_router(l.b),
                        );
                        (la, lb) == (a, b) || (la, lb) == (b, a)
                    })
                    .count();
                assert_eq!(count, 2, "two interconnection points per core pair");
            }
        }
    }

    #[test]
    fn every_tier2_and_stub_has_a_provider() {
        let net = build_internet(&InternetConfig::default());
        for t2 in &net.tier2 {
            assert!(net
                .cores
                .iter()
                .any(|c| net.topology.relationship(t2.as_id, c.as_id) == Some(PeerKind::Provider)));
        }
        for s in &net.stubs {
            assert!(net
                .tier2
                .iter()
                .any(|t| net.topology.relationship(s.as_id, t.as_id) == Some(PeerKind::Provider)));
        }
    }

    #[test]
    fn multihoming_fractions_roughly_hold() {
        let net = build_internet(&InternetConfig::default());
        let multi_stub = net
            .stubs
            .iter()
            .filter(|s| net.topology.router(s.routers[0]).links.len() >= 2)
            .count();
        let frac = multi_stub as f64 / net.stubs.len() as f64;
        assert!((0.1..0.45).contains(&frac), "stub multihoming {frac}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = build_internet(&InternetConfig::default());
        let b = build_internet(&InternetConfig::default());
        assert_eq!(a.topology.link_count(), b.topology.link_count());
        let c = build_internet(&InternetConfig {
            seed: 99,
            ..InternetConfig::default()
        });
        // Same shape, different wiring (with overwhelming probability).
        assert_eq!(a.topology.as_count(), c.topology.as_count());
    }

    #[test]
    fn small_instance_has_enough_roles() {
        let net = build_internet(&InternetConfig::small(11));
        assert_eq!(net.cores.len(), 3);
        assert!(net.tier2.len() >= 2);
        assert!(net.stubs.len() >= 6);
    }

    #[test]
    fn styles_build_and_stay_connected() {
        for style in [Tier2Style::HubSpoke, Tier2Style::Ring, Tier2Style::Ladder] {
            let net = build_internet(&InternetConfig {
                tier2_style: style,
                ..InternetConfig::small(5)
            });
            assert!(net.topology.as_count() > 0, "{style:?} builds");
        }
    }

    #[test]
    fn from_topology_classifies_roles() {
        let fig = paper_figure2();
        let net = Internet::from_topology(fig.topology);
        assert_eq!(net.cores.len(), 2);
        assert_eq!(net.stubs.len(), 3);
    }

    #[test]
    fn figure2_matches_the_paper() {
        let fig = paper_figure2();
        assert_eq!(fig.topology.as_count(), 5);
        assert_eq!(fig.topology.router_count(), 11);
        let x_as = fig.as_ids()[1];
        let y_as = fig.as_ids()[2];
        assert_eq!(fig.topology.relationship(x_as, y_as), Some(PeerKind::Peer));
        assert_eq!(fig.topology.as_node(AsId(0)).kind, AsKind::Stub);
        assert!(fig
            .topology
            .links()
            .iter()
            .any(|l| l.kind == LinkKind::Inter));
    }
}
