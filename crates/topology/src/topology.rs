//! The multi-AS topology model and its builder.
//!
//! A [`Topology`] is an immutable description of the network: autonomous
//! systems, routers, links (intra- and inter-domain), business relationships
//! between ASes, and the IPv4 addressing plan. Dynamic state (which links are
//! currently up, routing tables, ...) lives in the simulator crates.

use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

use crate::ids::{AsId, LinkId, RouterId};
use crate::prefix::Prefix;

/// Role of an AS in the internetwork hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AsKind {
    /// Backbone / tier-1 network (Abilene, GEANT, WIDE in the paper).
    Core,
    /// Regional transit network.
    Tier2,
    /// Edge network with no customers of its own.
    Stub,
}

/// Business relationship of a neighbor AS, from the local AS's perspective.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PeerKind {
    /// The neighbor pays us for transit.
    Customer,
    /// Settlement-free peer.
    Peer,
    /// We pay the neighbor for transit.
    Provider,
}

impl PeerKind {
    /// The same relationship seen from the other side.
    pub fn reverse(self) -> PeerKind {
        match self {
            PeerKind::Customer => PeerKind::Provider,
            PeerKind::Peer => PeerKind::Peer,
            PeerKind::Provider => PeerKind::Customer,
        }
    }
}

/// Relationship attached to an inter-domain link at build time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkRelationship {
    /// The AS of the link's `a` endpoint is the provider of `b`'s AS.
    ProviderCustomer,
    /// The two ASes are settlement-free peers.
    PeerPeer,
}

/// An autonomous system.
#[derive(Clone, Debug)]
pub struct AsNode {
    /// Dense identifier.
    pub id: AsId,
    /// Human-readable name ("Abilene", "T2-04", ...).
    pub name: String,
    /// Hierarchy role.
    pub kind: AsKind,
    /// The address block originated by this AS.
    pub prefix: Prefix,
    /// Routers belonging to this AS, in creation order.
    pub routers: Vec<RouterId>,
}

/// A router.
#[derive(Clone, Debug)]
pub struct Router {
    /// Global identifier.
    pub id: RouterId,
    /// Owning AS.
    pub as_id: AsId,
    /// Human-readable name.
    pub name: String,
    /// Loopback address (inside the AS prefix); used as the router identifier
    /// address in routing protocols.
    pub loopback: Ipv4Addr,
    /// Links incident to this router.
    pub links: Vec<LinkId>,
}

/// Whether a link connects routers of the same AS or of two ASes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Both endpoints in the same AS.
    Intra,
    /// Endpoints in different ASes.
    Inter,
}

/// A bidirectional point-to-point link between two routers.
#[derive(Clone, Debug)]
pub struct Link {
    /// Global identifier.
    pub id: LinkId,
    /// First endpoint (order fixed at creation).
    pub a: RouterId,
    /// Second endpoint.
    pub b: RouterId,
    /// Intra- or inter-domain.
    pub kind: LinkKind,
    /// IGP weight in the `a` → `b` direction (intra-domain SPF; ignored
    /// for inter links).
    pub weight_ab: u32,
    /// IGP weight in the `b` → `a` direction (real IS-IS metrics may be
    /// asymmetric; the symmetric builder sets both equal).
    pub weight_ba: u32,
    /// Interface address on the `a` side.
    pub addr_a: Ipv4Addr,
    /// Interface address on the `b` side.
    pub addr_b: Ipv4Addr,
}

impl Link {
    /// The endpoint opposite to `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not an endpoint of this link.
    pub fn other(&self, r: RouterId) -> RouterId {
        if r == self.a {
            self.b
        } else if r == self.b {
            self.a
        } else {
            // lint: allow(panic-macro): documented `# Panics` contract — a
            // non-endpoint RouterId here is a caller bug, not an input error
            panic!("{r} is not an endpoint of link {}", self.id)
        }
    }

    /// The interface address on `r`'s side.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not an endpoint of this link.
    pub fn addr_of(&self, r: RouterId) -> Ipv4Addr {
        if r == self.a {
            self.addr_a
        } else if r == self.b {
            self.addr_b
        } else {
            // lint: allow(panic-macro): documented `# Panics` contract — a
            // non-endpoint RouterId here is a caller bug, not an input error
            panic!("{r} is not an endpoint of link {}", self.id)
        }
    }

    /// True if `r` is one of the endpoints.
    pub fn has_endpoint(&self, r: RouterId) -> bool {
        r == self.a || r == self.b
    }

    /// The IGP weight when leaving `r` over this link.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not an endpoint of this link.
    pub fn weight_from(&self, r: RouterId) -> u32 {
        if r == self.a {
            self.weight_ab
        } else if r == self.b {
            self.weight_ba
        } else {
            // lint: allow(panic-macro): documented `# Panics` contract — a
            // non-endpoint RouterId here is a caller bug, not an input error
            panic!("{r} is not an endpoint of link {}", self.id)
        }
    }
}

/// Errors detected while building a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A link was requested between a router and itself.
    SelfLoop(RouterId),
    /// A second link between the same router pair was requested.
    DuplicateLink(RouterId, RouterId),
    /// An intra-domain link was requested between routers of different ASes,
    /// or an inter-domain link between routers of the same AS.
    LinkKindMismatch(RouterId, RouterId),
    /// The intra-domain links of an AS do not connect all its routers.
    DisconnectedAs(AsId),
    /// Two inter-domain links between the same AS pair carry conflicting
    /// relationships.
    ConflictingRelationship(AsId, AsId),
    /// More ASes or routers than the addressing plan supports.
    AddressSpaceExhausted(&'static str),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::SelfLoop(r) => write!(f, "self-loop at {r}"),
            TopologyError::DuplicateLink(a, b) => write!(f, "duplicate link {a}-{b}"),
            TopologyError::LinkKindMismatch(a, b) => {
                write!(f, "link {a}-{b} crosses AS boundary inconsistently")
            }
            TopologyError::DisconnectedAs(a) => {
                write!(f, "{a} is not internally connected")
            }
            TopologyError::ConflictingRelationship(a, b) => {
                write!(f, "conflicting AS relationship between {a} and {b}")
            }
            TopologyError::AddressSpaceExhausted(what) => {
                write!(f, "address space exhausted for {what}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The owner of an observed IPv4 address, as ground truth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpOwner {
    /// A link interface: (router, link it sits on).
    Interface(RouterId, LinkId),
    /// A router loopback.
    Loopback(RouterId),
}

/// One adjacency entry of the CSR substrate: a link incident to a
/// router, with the fields the SPF and data-plane hot loops touch on
/// every visit denormalized so they never chase into the [`Link`] array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdjEntry {
    /// The link.
    pub link: LinkId,
    /// The far endpoint.
    pub peer: RouterId,
    /// IGP weight leaving the local router over this link.
    pub weight: u32,
    /// Intra- or inter-domain.
    pub kind: LinkKind,
}

/// An immutable multi-AS topology.
///
/// Built via [`TopologyBuilder`]; see the crate-level docs for the addressing
/// plan.
///
/// Beyond the entity tables, the topology carries a flat CSR substrate
/// computed once at build time: contiguous adjacency rows per router
/// ([`Topology::adjacency`]), a sorted relationship table behind
/// [`Topology::relationship`], a border-router bitmap, and dense per-AS
/// router indices ([`Topology::local_router_index`]). The convergence
/// hot paths (IGP SPF, BGP import/export) iterate these arrays instead
/// of pointer/map chasing.
#[derive(Clone, Debug)]
pub struct Topology {
    ases: Vec<AsNode>,
    routers: Vec<Router>,
    links: Vec<Link>,
    /// Ground-truth reverse map from interface/loopback address to owner.
    ip_owner: HashMap<Ipv4Addr, IpOwner>,
    /// CSR adjacency: the entries of router `r` are
    /// `adj[adj_off[r] .. adj_off[r + 1]]`, in link-insertion order.
    adj_off: Vec<u32>,
    adj: Vec<AdjEntry>,
    /// `border[r]`: router `r` has at least one inter-domain link.
    border: Vec<bool>,
    /// CSR relationships: the neighbors of AS `a`, sorted by [`AsId`],
    /// are `rel[rel_off[a] .. rel_off[a + 1]]` (role from `a`'s
    /// perspective). Replaces a `HashMap<(AsId, AsId), PeerKind>` on the
    /// BGP export hot path.
    rel_off: Vec<u32>,
    rel: Vec<(AsId, PeerKind)>,
    /// Position of each router within its AS's `routers` list (dense
    /// per-AS indexing for the flat SPF state).
    local_ix: Vec<u32>,
}

impl Topology {
    /// All ASes, indexed by [`AsId`].
    pub fn ases(&self) -> &[AsNode] {
        &self.ases
    }

    /// All routers, indexed by [`RouterId`].
    pub fn routers(&self) -> &[Router] {
        &self.routers
    }

    /// All links, indexed by [`LinkId`].
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Looks up an AS.
    pub fn as_node(&self, a: AsId) -> &AsNode {
        &self.ases[a.index()]
    }

    /// Looks up a router.
    pub fn router(&self, r: RouterId) -> &Router {
        &self.routers[r.index()]
    }

    /// Looks up a link.
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.index()]
    }

    /// The AS owning router `r`.
    pub fn as_of_router(&self, r: RouterId) -> AsId {
        self.router(r).as_id
    }

    /// The CSR adjacency row of `r`: one entry per incident link, in
    /// link-insertion order, with peer / weight / kind denormalized.
    pub fn adjacency(&self, r: RouterId) -> &[AdjEntry] {
        &self.adj[self.adj_off[r.index()] as usize..self.adj_off[r.index() + 1] as usize]
    }

    /// Iterates over `(link, neighbor)` pairs incident to `r`.
    pub fn neighbors(&self, r: RouterId) -> impl Iterator<Item = (LinkId, RouterId)> + '_ {
        self.adjacency(r).iter().map(|e| (e.link, e.peer))
    }

    /// The link between `a` and `b`, if one exists.
    pub fn link_between(&self, a: RouterId, b: RouterId) -> Option<LinkId> {
        self.adjacency(a)
            .iter()
            .find(|e| e.peer == b)
            .map(|e| e.link)
    }

    /// Relationship of `b` from `a`'s perspective (None if not neighbors).
    pub fn relationship(&self, a: AsId, b: AsId) -> Option<PeerKind> {
        let lo = *self.rel_off.get(a.index())? as usize;
        let hi = *self.rel_off.get(a.index() + 1)? as usize;
        let row = &self.rel[lo..hi];
        row.binary_search_by_key(&b, |&(n, _)| n)
            .ok()
            .map(|i| row[i].1)
    }

    /// The position of `r` within its AS's router list (a dense index in
    /// `0..as_node(as_of_router(r)).routers.len()`).
    pub fn local_router_index(&self, r: RouterId) -> usize {
        self.local_ix[r.index()] as usize
    }

    /// Ground-truth owner of an address (interface or loopback).
    pub fn ip_owner(&self, addr: Ipv4Addr) -> Option<IpOwner> {
        self.ip_owner.get(&addr).copied()
    }

    /// Ground-truth AS of an address: interface/loopback owner's AS, or the
    /// AS whose prefix contains the address (covers sensor host addresses).
    pub fn as_of_ip(&self, addr: Ipv4Addr) -> Option<AsId> {
        if let Some(owner) = self.ip_owner(addr) {
            let r = match owner {
                IpOwner::Interface(r, _) => r,
                IpOwner::Loopback(r) => r,
            };
            return Some(self.as_of_router(r));
        }
        // AS prefixes are disjoint and monotone in AsId (the addressing
        // plan guarantees both), so the unique containing prefix — if any —
        // is the last one whose network address is <= addr.
        let bits = u32::from(addr);
        let idx = self
            .ases
            .partition_point(|n| u32::from(n.prefix.network()) <= bits);
        idx.checked_sub(1)
            .map(|i| &self.ases[i])
            .filter(|n| n.prefix.contains(addr))
            .map(|n| n.id)
    }

    /// Intra-domain links of an AS.
    pub fn intra_links_of(&self, a: AsId) -> impl Iterator<Item = &Link> + '_ {
        self.links
            .iter()
            .filter(move |l| l.kind == LinkKind::Intra && self.as_of_router(l.a) == a)
    }

    /// All inter-domain links.
    pub fn inter_links(&self) -> impl Iterator<Item = &Link> + '_ {
        self.links.iter().filter(|l| l.kind == LinkKind::Inter)
    }

    /// True if `r` has at least one inter-domain link.
    pub fn is_border_router(&self, r: RouterId) -> bool {
        self.border[r.index()]
    }

    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }
}

/// Incremental builder for [`Topology`].
///
/// The builder assigns the addressing plan:
///
/// * AS `i < 224` originates `10.i.0.0/16`; AS `i >= 224` originates the
///   `/24` block `11.(j / 256).(j % 256).0/24` with `j = i - 224`. Both
///   tiers are monotone in `i`, so sorting all AS prefixes reproduces
///   [`AsId`] order — the dense-prefix interning in the BGP engine relies
///   on exactly this.
/// * Router `k` of a `/16` AS gets loopback `10.i.(k+1).1`; in a `/24` AS
///   it gets host `k + 1` of the block (at most
///   [`MAX_ROUTERS_PER_SMALL_AS`] routers, keeping `.200+` free for
///   simulator-assigned sensor hosts).
/// * Link `j` gets the point-to-point block `172.16.0.0/12 + 4j`, with the
///   `a` side at offset 1 and the `b` side at offset 2.
/// * Host (sensor) addresses are `prefix.host(200 + k)`, assigned by the
///   simulator.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    ases: Vec<AsNode>,
    routers: Vec<Router>,
    links: Vec<Link>,
    relationships: HashMap<(AsId, AsId), PeerKind>,
    errors: Vec<TopologyError>,
}

/// ASes with ids below this originate a `10.i.0.0/16`; from here on they
/// originate `/24`s out of `11.0.0.0/8`.
const WIDE_AS_LIMIT: usize = 224;
/// Maximum number of ASes supported by the two-tier addressing plan
/// (`224` wide `/16`s plus a `/24` per `11.x.y.0` block).
const MAX_ASES: usize = WIDE_AS_LIMIT + (1 << 16);
/// Maximum routers per AS supported by the `10.i.(k+1).1` loopback plan.
const MAX_ROUTERS_PER_AS: usize = 254;
/// Maximum routers in a `/24` AS: loopbacks occupy hosts `1..=199` so the
/// sensor host range (`.200+`) never collides.
pub const MAX_ROUTERS_PER_SMALL_AS: usize = 199;
/// Maximum links supported by the `172.16/12` point-to-point pool.
const MAX_LINKS: usize = (1 << 20) / 4;

/// The prefix AS `i` originates under the addressing plan (monotone in
/// `i`, so ascending-prefix iteration equals ascending-[`AsId`] order).
/// Out-of-plan ids fold back into range; [`TopologyBuilder::add_as`]
/// reports [`TopologyError::AddressSpaceExhausted`] for them instead.
fn as_plan_prefix(i: usize) -> Prefix {
    if i < WIDE_AS_LIMIT {
        Prefix::new(Ipv4Addr::new(10, (i % 256) as u8, 0, 0), 16)
    } else {
        let j = (i - WIDE_AS_LIMIT) % (1 << 16);
        Prefix::new(Ipv4Addr::new(11, (j >> 8) as u8, (j & 0xFF) as u8, 0), 24)
    }
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an AS and returns its id.
    pub fn add_as(&mut self, kind: AsKind, name: impl Into<String>) -> AsId {
        let id = AsId(self.ases.len() as u32);
        if self.ases.len() >= MAX_ASES {
            self.errors
                .push(TopologyError::AddressSpaceExhausted("ASes"));
        }
        let prefix = as_plan_prefix(id.index());
        self.ases.push(AsNode {
            id,
            name: name.into(),
            kind,
            prefix,
            routers: Vec::new(),
        });
        id
    }

    /// Adds a router to an AS and returns its id.
    pub fn add_router(&mut self, as_id: AsId, name: impl Into<String>) -> RouterId {
        let id = RouterId(self.routers.len() as u32);
        let local = self.ases[as_id.index()].routers.len();
        let prefix = self.ases[as_id.index()].prefix;
        let cap = if prefix.len() == 16 {
            MAX_ROUTERS_PER_AS
        } else {
            MAX_ROUTERS_PER_SMALL_AS
        };
        if local >= cap {
            self.errors
                .push(TopologyError::AddressSpaceExhausted("routers"));
        }
        let loopback = if prefix.len() == 16 {
            Ipv4Addr::new(
                prefix.network().octets()[0],
                prefix.network().octets()[1],
                ((local + 1) % 256) as u8,
                1,
            )
        } else {
            prefix.host(((local % MAX_ROUTERS_PER_SMALL_AS) + 1) as u32)
        };
        self.ases[as_id.index()].routers.push(id);
        self.routers.push(Router {
            id,
            as_id,
            name: name.into(),
            loopback,
            links: Vec::new(),
        });
        id
    }

    /// The relationship recorded so far between two ASes, if any (`b`'s
    /// role from `a`'s perspective). Generators use this to avoid placing
    /// conflicting links.
    pub fn relationship_between(&self, a: AsId, b: AsId) -> Option<PeerKind> {
        self.relationships.get(&(a, b)).copied()
    }

    /// Adds an intra-domain link with the given (symmetric) IGP weight.
    pub fn add_intra_link(&mut self, a: RouterId, b: RouterId, weight: u32) -> LinkId {
        self.add_intra_link_asym(a, b, weight, weight)
    }

    /// Adds an intra-domain link with per-direction IGP weights
    /// (`weight_ab` applies to traffic from `a` to `b`).
    pub fn add_intra_link_asym(
        &mut self,
        a: RouterId,
        b: RouterId,
        weight_ab: u32,
        weight_ba: u32,
    ) -> LinkId {
        if self.routers[a.index()].as_id != self.routers[b.index()].as_id {
            self.errors.push(TopologyError::LinkKindMismatch(a, b));
        }
        self.push_link(a, b, LinkKind::Intra, weight_ab, weight_ba)
    }

    /// Adds an inter-domain link carrying the given relationship
    /// (`ProviderCustomer` means `a`'s AS is the provider of `b`'s AS).
    pub fn add_inter_link(&mut self, a: RouterId, b: RouterId, rel: LinkRelationship) -> LinkId {
        let as_a = self.routers[a.index()].as_id;
        let as_b = self.routers[b.index()].as_id;
        if as_a == as_b {
            self.errors.push(TopologyError::LinkKindMismatch(a, b));
        }
        let (role_of_b, role_of_a) = match rel {
            LinkRelationship::ProviderCustomer => (PeerKind::Customer, PeerKind::Provider),
            LinkRelationship::PeerPeer => (PeerKind::Peer, PeerKind::Peer),
        };
        for (key, role) in [((as_a, as_b), role_of_b), ((as_b, as_a), role_of_a)] {
            match self.relationships.get(&key) {
                Some(existing) if *existing != role => {
                    self.errors
                        .push(TopologyError::ConflictingRelationship(key.0, key.1));
                }
                _ => {
                    self.relationships.insert(key, role);
                }
            }
        }
        self.push_link(a, b, LinkKind::Inter, 1, 1)
    }

    fn push_link(
        &mut self,
        a: RouterId,
        b: RouterId,
        kind: LinkKind,
        weight_ab: u32,
        weight_ba: u32,
    ) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        if a == b {
            self.errors.push(TopologyError::SelfLoop(a));
        }
        if self.links.len() >= MAX_LINKS {
            self.errors
                .push(TopologyError::AddressSpaceExhausted("links"));
        }
        if self.routers[a.index()]
            .links
            .iter()
            .any(|&l| self.links[l.index()].has_endpoint(b))
        {
            self.errors.push(TopologyError::DuplicateLink(a, b));
        }
        let base = 0xAC10_0000u32 + (id.0 * 4);
        let link = Link {
            id,
            a,
            b,
            kind,
            weight_ab,
            weight_ba,
            addr_a: Ipv4Addr::from(base + 1),
            addr_b: Ipv4Addr::from(base + 2),
        };
        self.routers[a.index()].links.push(id);
        self.routers[b.index()].links.push(id);
        self.links.push(link);
        id
    }

    /// Validates and finalizes the topology.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        // Validate intra-AS connectivity (an AS with a partitioned backbone
        // would make routing semantics ambiguous from the start).
        for asn in &self.ases {
            if asn.routers.len() <= 1 {
                continue;
            }
            let mut seen = vec![false; self.routers.len()];
            let start = asn.routers[0];
            let mut stack = vec![start];
            seen[start.index()] = true;
            while let Some(r) = stack.pop() {
                for &l in &self.routers[r.index()].links {
                    let link = &self.links[l.index()];
                    if link.kind != LinkKind::Intra {
                        continue;
                    }
                    let o = link.other(r);
                    if !seen[o.index()] {
                        seen[o.index()] = true;
                        stack.push(o);
                    }
                }
            }
            if asn.routers.iter().any(|r| !seen[r.index()]) {
                return Err(TopologyError::DisconnectedAs(asn.id));
            }
        }

        let mut ip_owner = HashMap::new();
        for link in &self.links {
            ip_owner.insert(link.addr_a, IpOwner::Interface(link.a, link.id));
            ip_owner.insert(link.addr_b, IpOwner::Interface(link.b, link.id));
        }
        for router in &self.routers {
            ip_owner.insert(router.loopback, IpOwner::Loopback(router.id));
        }

        // CSR adjacency + border bitmap, in the routers' link-insertion
        // order (so `neighbors` keeps its historical iteration order).
        let mut adj_off = Vec::with_capacity(self.routers.len() + 1);
        let mut adj = Vec::with_capacity(2 * self.links.len());
        let mut border = vec![false; self.routers.len()];
        adj_off.push(0u32);
        for r in &self.routers {
            for &l in &r.links {
                let link = &self.links[l.index()];
                adj.push(AdjEntry {
                    link: l,
                    peer: link.other(r.id),
                    weight: link.weight_from(r.id),
                    kind: link.kind,
                });
                if link.kind == LinkKind::Inter {
                    border[r.id.index()] = true;
                }
            }
            adj_off.push(adj.len() as u32);
        }

        // Relationship rows, sorted by (local AS, neighbor AS).
        let mut rel_pairs: Vec<((AsId, AsId), PeerKind)> = self
            .relationships
            .iter() // lint: allow(hash-iter): sorted right below, order cannot leak
            .map(|(&k, &v)| (k, v))
            .collect();
        rel_pairs.sort_unstable_by_key(|&(key, _)| key);
        let mut rel_off = Vec::with_capacity(self.ases.len() + 1);
        let mut rel = Vec::with_capacity(rel_pairs.len());
        rel_off.push(0u32);
        let mut next = 0usize;
        for a in 0..self.ases.len() {
            while next < rel_pairs.len() && rel_pairs[next].0 .0.index() == a {
                rel.push((rel_pairs[next].0 .1, rel_pairs[next].1));
                next += 1;
            }
            rel_off.push(rel.len() as u32);
        }

        // Dense per-AS router indices.
        let mut local_ix = vec![0u32; self.routers.len()];
        for asn in &self.ases {
            for (i, &r) in asn.routers.iter().enumerate() {
                local_ix[r.index()] = i as u32;
            }
        }

        Ok(Topology {
            ases: self.ases,
            routers: self.routers,
            links: self.links,
            ip_owner,
            adj_off,
            adj,
            border,
            rel_off,
            rel,
            local_ix,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_as_topology() -> Topology {
        let mut b = TopologyBuilder::new();
        let as_a = b.add_as(AsKind::Core, "A");
        let as_b = b.add_as(AsKind::Stub, "B");
        let a1 = b.add_router(as_a, "a1");
        let a2 = b.add_router(as_a, "a2");
        let b1 = b.add_router(as_b, "b1");
        b.add_intra_link(a1, a2, 10);
        b.add_inter_link(a2, b1, LinkRelationship::ProviderCustomer);
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_dense_ids_and_prefixes() {
        let t = two_as_topology();
        assert_eq!(t.as_count(), 2);
        assert_eq!(t.router_count(), 3);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.as_node(AsId(0)).prefix.to_string(), "10.0.0.0/16");
        assert_eq!(t.as_node(AsId(1)).prefix.to_string(), "10.1.0.0/16");
        assert_eq!(t.router(RouterId(0)).loopback, Ipv4Addr::new(10, 0, 1, 1));
        assert_eq!(t.router(RouterId(1)).loopback, Ipv4Addr::new(10, 0, 2, 1));
    }

    #[test]
    fn link_endpoints_and_addresses() {
        let t = two_as_topology();
        let l = t.link(LinkId(0));
        assert_eq!(l.other(RouterId(0)), RouterId(1));
        assert_eq!(l.addr_of(RouterId(0)), l.addr_a);
        assert_eq!(l.addr_of(RouterId(1)), l.addr_b);
        assert_ne!(l.addr_a, l.addr_b);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn link_other_panics_for_non_endpoint() {
        let t = two_as_topology();
        t.link(LinkId(0)).other(RouterId(2));
    }

    #[test]
    fn relationships_are_symmetric() {
        let t = two_as_topology();
        assert_eq!(t.relationship(AsId(0), AsId(1)), Some(PeerKind::Customer));
        assert_eq!(t.relationship(AsId(1), AsId(0)), Some(PeerKind::Provider));
        assert_eq!(t.relationship(AsId(0), AsId(0)), None);
    }

    #[test]
    fn ip_owner_ground_truth() {
        let t = two_as_topology();
        let l = t.link(LinkId(1));
        assert_eq!(
            t.ip_owner(l.addr_a),
            Some(IpOwner::Interface(l.a, LinkId(1)))
        );
        assert_eq!(t.as_of_ip(l.addr_a), Some(AsId(0)));
        assert_eq!(t.as_of_ip(l.addr_b), Some(AsId(1)));
        // A host address inside an AS prefix maps to the AS itself.
        assert_eq!(t.as_of_ip(Ipv4Addr::new(10, 1, 0, 101)), Some(AsId(1)));
        assert_eq!(t.as_of_ip(Ipv4Addr::new(192, 168, 0, 1)), None);
    }

    #[test]
    fn border_router_detection() {
        let t = two_as_topology();
        assert!(!t.is_border_router(RouterId(0)));
        assert!(t.is_border_router(RouterId(1)));
        assert!(t.is_border_router(RouterId(2)));
    }

    #[test]
    fn neighbors_iteration() {
        let t = two_as_topology();
        let n: Vec<_> = t.neighbors(RouterId(1)).collect();
        assert_eq!(n.len(), 2);
        assert!(n.contains(&(LinkId(0), RouterId(0))));
        assert!(n.contains(&(LinkId(1), RouterId(2))));
        assert_eq!(t.link_between(RouterId(0), RouterId(2)), None);
        assert_eq!(t.link_between(RouterId(1), RouterId(2)), Some(LinkId(1)));
    }

    #[test]
    fn csr_substrate_matches_entity_tables() {
        let t = two_as_topology();
        for r in t.routers() {
            let row = t.adjacency(r.id);
            assert_eq!(row.len(), r.links.len());
            for (entry, &l) in row.iter().zip(&r.links) {
                let link = t.link(l);
                assert_eq!(entry.link, l);
                assert_eq!(entry.peer, link.other(r.id));
                assert_eq!(entry.weight, link.weight_from(r.id));
                assert_eq!(entry.kind, link.kind);
            }
            assert_eq!(
                t.is_border_router(r.id),
                r.links.iter().any(|&l| t.link(l).kind == LinkKind::Inter)
            );
        }
        for asn in t.ases() {
            for (i, &r) in asn.routers.iter().enumerate() {
                assert_eq!(t.local_router_index(r), i);
            }
        }
    }

    #[test]
    fn small_as_tier_addressing_is_monotone() {
        // Prefixes across the /16 -> /24 boundary sort in AsId order.
        let mut b = TopologyBuilder::new();
        for i in 0..(WIDE_AS_LIMIT + 600) {
            b.add_as(AsKind::Stub, format!("AS{i}"));
        }
        let t = b.build().unwrap();
        assert_eq!(t.as_node(AsId(223)).prefix.to_string(), "10.223.0.0/16");
        assert_eq!(t.as_node(AsId(224)).prefix.to_string(), "11.0.0.0/24");
        assert_eq!(t.as_node(AsId(225)).prefix.to_string(), "11.0.1.0/24");
        assert_eq!(t.as_node(AsId(224 + 256)).prefix.to_string(), "11.1.0.0/24");
        let mut prev = t.as_node(AsId(0)).prefix;
        for n in &t.ases()[1..] {
            assert!(n.prefix > prev, "prefixes must ascend with AsId");
            prev = n.prefix;
        }
        // as_of_ip's binary search agrees with containment on both tiers.
        assert_eq!(t.as_of_ip(Ipv4Addr::new(10, 100, 7, 7)), Some(AsId(100)));
        assert_eq!(t.as_of_ip(Ipv4Addr::new(11, 0, 3, 250)), Some(AsId(227)));
        assert_eq!(t.as_of_ip(Ipv4Addr::new(11, 3, 0, 1)), None);
        assert_eq!(t.as_of_ip(Ipv4Addr::new(12, 0, 0, 1)), None);
    }

    #[test]
    fn small_as_loopbacks_avoid_sensor_hosts() {
        let mut b = TopologyBuilder::new();
        for i in 0..WIDE_AS_LIMIT {
            b.add_as(AsKind::Stub, format!("AS{i}"));
        }
        let small = b.add_as(AsKind::Stub, "small");
        let r0 = b.add_router(small, "r0");
        let r1 = b.add_router(small, "r1");
        b.add_intra_link(r0, r1, 1);
        let t = b.build().unwrap();
        assert_eq!(t.router(r0).loopback, Ipv4Addr::new(11, 0, 0, 1));
        assert_eq!(t.router(r1).loopback, Ipv4Addr::new(11, 0, 0, 2));
        // The sensor host range of the /24 stays clear of loopbacks.
        let sensor = t.as_node(small).prefix.host(200);
        assert_eq!(t.ip_owner(sensor), None);
        assert_eq!(t.as_of_ip(sensor), Some(small));
    }

    #[test]
    fn small_as_router_cap_enforced() {
        let mut b = TopologyBuilder::new();
        for i in 0..=WIDE_AS_LIMIT {
            b.add_as(AsKind::Stub, format!("AS{i}"));
        }
        let small = AsId(WIDE_AS_LIMIT as u32);
        for k in 0..=MAX_ROUTERS_PER_SMALL_AS {
            b.add_router(small, format!("r{k}"));
        }
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::AddressSpaceExhausted("routers")
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Stub, "A");
        let r = b.add_router(a, "r");
        b.add_intra_link(r, r, 1);
        assert_eq!(b.build().unwrap_err(), TopologyError::SelfLoop(r));
    }

    #[test]
    fn duplicate_link_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Stub, "A");
        let r1 = b.add_router(a, "r1");
        let r2 = b.add_router(a, "r2");
        b.add_intra_link(r1, r2, 1);
        b.add_intra_link(r2, r1, 1);
        assert_eq!(b.build().unwrap_err(), TopologyError::DuplicateLink(r2, r1));
    }

    #[test]
    fn cross_as_intra_link_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Stub, "A");
        let c = b.add_as(AsKind::Stub, "C");
        let r1 = b.add_router(a, "r1");
        let r2 = b.add_router(c, "r2");
        b.add_intra_link(r1, r2, 1);
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::LinkKindMismatch(_, _)
        ));
    }

    #[test]
    fn disconnected_as_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Core, "A");
        b.add_router(a, "r1");
        b.add_router(a, "r2");
        assert_eq!(b.build().unwrap_err(), TopologyError::DisconnectedAs(a));
    }

    #[test]
    fn conflicting_relationship_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Core, "A");
        let c = b.add_as(AsKind::Core, "C");
        let a1 = b.add_router(a, "a1");
        let a2 = b.add_router(a, "a2");
        b.add_intra_link(a1, a2, 1);
        let c1 = b.add_router(c, "c1");
        let c2 = b.add_router(c, "c2");
        b.add_intra_link(c1, c2, 1);
        b.add_inter_link(a1, c1, LinkRelationship::ProviderCustomer);
        b.add_inter_link(a2, c2, LinkRelationship::PeerPeer);
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::ConflictingRelationship(_, _)
        ));
    }
}
