//! Property tests for the lint lexer: it must never panic (the linter
//! scans every workspace file, including ones mid-edit), and string or
//! comment state must never leak into identifier tokens — the lints key
//! off `Ident` tokens, so a leak would produce phantom findings.

use proptest::prelude::*;

use netdiag_xtask::lexer::{lex, TokKind};

/// Characters chosen to stress the lexer's tricky states: quote kinds,
/// raw-string fences, escapes, comment openers/closers and newlines.
fn tricky_char() -> impl Strategy<Value = char> {
    prop_oneof![
        Just('"'),
        Just('\''),
        Just('\\'),
        Just('r'),
        Just('b'),
        Just('#'),
        Just('/'),
        Just('*'),
        Just('\n'),
        Just('x'),
        Just('_'),
        Just('0'),
        Just('.'),
        Just('('),
        Just('}'),
    ]
}

/// Every literal/comment form the lexer knows, each carrying the marker.
/// All forms are self-terminating, so whatever follows starts from a
/// clean lexer state.
fn marked_literal() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("\"leak_mark a\""),
        Just("\"esc \\\" leak_mark\""),
        Just("b\"leak_mark\""),
        Just("r\"leak_mark\""),
        Just("r#\"inner \" leak_mark\"#"),
        Just("r##\"fence \"# leak_mark\"##"),
        Just("// leak_mark eol\n"),
        Just("/* leak_mark */"),
        Just("/* outer /* leak_mark */ still */"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (lossily decoded) never panic the lexer.
    #[test]
    fn lex_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = lex(&src);
    }

    /// Dense streams of quote/escape/comment characters — the inputs most
    /// likely to leave a scanner stuck in a bad state — never panic either,
    /// and token lines stay in range and nondecreasing (forward scan only).
    #[test]
    fn lex_never_panics_on_tricky_streams(chars in proptest::collection::vec(tricky_char(), 0..128)) {
        let src: String = chars.into_iter().collect();
        let toks = lex(&src);
        let lines = src.lines().count().max(1);
        for t in &toks {
            prop_assert!(t.line >= 1 && t.line <= lines,
                "token {:?} on line {} of {} lines", t.text, t.line, lines);
        }
        for w in toks.windows(2) {
            prop_assert!(w[0].line <= w[1].line);
        }
    }

    /// A marker planted inside any literal or comment form never surfaces
    /// as an `Ident`, no matter what garbage follows the literal — and the
    /// identifier planted *outside* is still found, so the check cannot
    /// pass vacuously (e.g. by the lexer dropping everything).
    #[test]
    fn string_and_comment_state_cannot_leak_into_idents(
        lit in marked_literal(),
        suffix in proptest::collection::vec(tricky_char(), 0..32),
    ) {
        let src = format!("real_ident {lit} {}", String::from_iter(suffix));
        let toks = lex(&src);
        prop_assert!(
            toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "real_ident")
        );
        for t in &toks {
            if t.kind == TokKind::Ident {
                prop_assert!(
                    !t.text.contains("leak_mark"),
                    "leaked {:?} out of {:?} into an Ident",
                    t.text,
                    lit
                );
            }
        }
    }
}
