//! Fixture corpus for every lint ID: each lint has at least one seeded
//! bad source (findings fire, and gate the exit code) and one seeded
//! good source (no findings), plus end-to-end runs of the real binary
//! against seeded workspaces and against this repository itself.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use netdiag_xtask::engine::{run, Level, Lint, SrcFile};
use netdiag_xtask::lints::run_one;

fn fixture(name: &str) -> &'static str {
    match name {
        "hash_iter_bad" => include_str!("fixtures/hash_iter_bad.rs"),
        "hash_iter_good" => include_str!("fixtures/hash_iter_good.rs"),
        "hash_iter_allowed" => include_str!("fixtures/hash_iter_allowed.rs"),
        "nondet_bad" => include_str!("fixtures/nondet_bad.rs"),
        "nondet_good" => include_str!("fixtures/nondet_good.rs"),
        "panic_bad" => include_str!("fixtures/panic_bad.rs"),
        "panic_good" => include_str!("fixtures/panic_good.rs"),
        "unwrap_bad" => include_str!("fixtures/unwrap_bad.rs"),
        "unwrap_good" => include_str!("fixtures/unwrap_good.rs"),
        "slice_index_bad" => include_str!("fixtures/slice_index_bad.rs"),
        "slice_index_good" => include_str!("fixtures/slice_index_good.rs"),
        "allow_bad" => include_str!("fixtures/allow_bad.rs"),
        "lock_order_bad" => include_str!("fixtures/lock_order_bad.rs"),
        "lock_order_good" => include_str!("fixtures/lock_order_good.rs"),
        "lock_blocking_bad" => include_str!("fixtures/lock_blocking_bad.rs"),
        "lock_blocking_good" => include_str!("fixtures/lock_blocking_good.rs"),
        "hot_alloc_bad" => include_str!("fixtures/hot_alloc_bad.rs"),
        "hot_alloc_good" => include_str!("fixtures/hot_alloc_good.rs"),
        "layering_bad" => include_str!("fixtures/layering_bad.rs"),
        "layering_good" => include_str!("fixtures/layering_good.rs"),
        "stale_allow_bad" => include_str!("fixtures/stale_allow_bad.rs"),
        "stale_allow_good" => include_str!("fixtures/stale_allow_good.rs"),
        "obs_names" => include_str!("fixtures/obs/names.rs"),
        "obs_call_bad" => include_str!("fixtures/obs/call_bad.rs"),
        "obs_call_good" => include_str!("fixtures/obs/call_good.rs"),
        other => panic!("unknown fixture {other}"),
    }
}

fn lints_of(crate_name: &str, src: &str) -> Vec<Lint> {
    run_one(crate_name, "fixture.rs", src)
        .into_iter()
        .map(|f| f.lint)
        .collect()
}

// --- hash-iter ---------------------------------------------------------------

#[test]
fn hash_iter_bad_fires_on_every_iteration_site() {
    let found = lints_of("netsim", fixture("hash_iter_bad"));
    assert_eq!(
        found.iter().filter(|&&l| l == Lint::HashIter).count(),
        3,
        "for-loop over .iter(), .keys() chain and for-over-set: {found:?}"
    );
}

#[test]
fn hash_iter_good_is_clean() {
    assert!(lints_of("netsim", fixture("hash_iter_good")).is_empty());
}

#[test]
fn hash_iter_allow_directive_suppresses_with_justification() {
    assert!(lints_of("netsim", fixture("hash_iter_allowed")).is_empty());
}

#[test]
fn hash_iter_does_not_apply_outside_deterministic_crates() {
    assert!(!lints_of("netsim", fixture("hash_iter_bad")).is_empty());
    assert!(lints_of("obs", fixture("hash_iter_bad"))
        .iter()
        .all(|&l| l != Lint::HashIter));
}

// --- nondet-source -----------------------------------------------------------

#[test]
fn nondet_bad_fires_on_clock_rng_and_env() {
    let found = lints_of("core", fixture("nondet_bad"));
    assert_eq!(
        found.iter().filter(|&&l| l == Lint::NondetSource).count(),
        4,
        "Instant::now, SystemTime::now, thread_rng, std::env: {found:?}"
    );
}

#[test]
fn nondet_good_is_clean_including_strings_and_comments() {
    assert!(lints_of("core", fixture("nondet_good")).is_empty());
}

// --- panic-macro -------------------------------------------------------------

#[test]
fn panic_bad_fires_on_all_four_macros() {
    let found = lints_of("igp", fixture("panic_bad"));
    assert_eq!(found.iter().filter(|&&l| l == Lint::PanicMacro).count(), 4);
}

#[test]
fn panic_good_exempts_test_modules() {
    assert!(lints_of("igp", fixture("panic_good")).is_empty());
}

// --- unwrap ------------------------------------------------------------------

#[test]
fn unwrap_bad_fires_on_unwrap_and_undocumented_expect() {
    let found = lints_of("bgp", fixture("unwrap_bad"));
    assert_eq!(
        found.iter().filter(|&&l| l == Lint::Unwrap).count(),
        3,
        ".unwrap(), short .expect, non-literal .expect: {found:?}"
    );
}

#[test]
fn unwrap_good_accepts_documented_expect_and_test_unwraps() {
    assert!(lints_of("bgp", fixture("unwrap_good")).is_empty());
}

// --- slice-index -------------------------------------------------------------

#[test]
fn slice_index_bad_fires_per_bracket() {
    let found = lints_of("topology", fixture("slice_index_bad"));
    // v[0] plus both brackets of m[i][j].
    assert_eq!(found.iter().filter(|&&l| l == Lint::SliceIndex).count(), 3);
}

#[test]
fn slice_index_good_ignores_types_literals_macros_and_patterns() {
    assert!(lints_of("topology", fixture("slice_index_good")).is_empty());
}

#[test]
fn slice_index_warns_by_default_but_gates_under_deny_override() {
    let files = [SrcFile {
        crate_name: "topology".to_string(),
        path: "fixture.rs".to_string(),
        src: fixture("slice_index_bad").to_string(),
    }];
    let default_run = run(&files, &BTreeMap::new());
    assert!(!default_run.gates(), "advisory by default");
    assert!(default_run.warnings().count() >= 3);

    let mut overrides = BTreeMap::new();
    overrides.insert("slice-index".to_string(), Level::Deny);
    assert!(run(&files, &overrides).gates(), "gates when promoted");
}

// --- bad-allow ---------------------------------------------------------------

#[test]
fn allow_bad_flags_unjustified_and_unknown_directives() {
    let found = lints_of("core", fixture("allow_bad"));
    assert_eq!(found.iter().filter(|&&l| l == Lint::BadAllow).count(), 2);
    // The unjustified directive does NOT suppress the unwrap it covers.
    assert!(found.contains(&Lint::Unwrap));
}

// --- lock-order --------------------------------------------------------------

#[test]
fn lock_order_bad_flags_both_sides_of_the_inversion() {
    let found = lints_of("serve", fixture("lock_order_bad"));
    assert_eq!(
        found.iter().filter(|&&l| l == Lint::LockOrder).count(),
        2,
        "queue->done and done->queue both sit on the cycle: {found:?}"
    );
}

#[test]
fn lock_order_good_accepts_a_consistent_global_order() {
    assert!(lints_of("serve", fixture("lock_order_good")).is_empty());
}

// --- lock-across-blocking ----------------------------------------------------

#[test]
fn lock_blocking_bad_flags_guards_held_across_recv_and_join() {
    let found = lints_of("serve", fixture("lock_blocking_bad"));
    assert_eq!(
        found
            .iter()
            .filter(|&&l| l == Lint::LockAcrossBlocking)
            .count(),
        2,
        "state guard across recv, workers guard across join: {found:?}"
    );
}

#[test]
fn lock_blocking_good_accepts_dropped_and_scoped_guards() {
    assert!(lints_of("serve", fixture("lock_blocking_good")).is_empty());
}

// --- hot-alloc ---------------------------------------------------------------

#[test]
fn hot_alloc_bad_flags_direct_and_callee_allocations() {
    let found = lints_of("bgp", fixture("hot_alloc_bad"));
    assert_eq!(
        found.iter().filter(|&&l| l == Lint::HotAlloc).count(),
        4,
        "Vec::new, push on a growth local, format!, Box::new via helper: {found:?}"
    );
}

#[test]
fn hot_alloc_good_accepts_reused_buffers_and_cold_allocations() {
    assert!(lints_of("bgp", fixture("hot_alloc_good")).is_empty());
}

// --- layering ----------------------------------------------------------------

#[test]
fn layering_bad_flags_each_upward_import() {
    let found = lints_of("topology", fixture("layering_bad"));
    assert_eq!(
        found.iter().filter(|&&l| l == Lint::Layering).count(),
        2,
        "topology must not import bgp or serve: {found:?}"
    );
}

#[test]
fn layering_good_accepts_imports_at_or_below_the_crate() {
    assert!(lints_of("bgp", fixture("layering_good")).is_empty());
}

#[test]
fn layering_same_imports_gate_from_a_lower_crate() {
    // The good fixture's imports are fine for bgp but not for topology:
    // igp sits above it (obs/rand stay legal, self-use is skipped).
    let found = lints_of("topology", fixture("layering_good"));
    assert_eq!(
        found.iter().filter(|&&l| l == Lint::Layering).count(),
        1,
        "igp sits above topology: {found:?}"
    );
}

// --- stale-allow -------------------------------------------------------------

#[test]
fn stale_allow_bad_flags_a_directive_that_suppresses_nothing() {
    let found = lints_of("core", fixture("stale_allow_bad"));
    assert_eq!(
        found.iter().filter(|&&l| l == Lint::StaleAllow).count(),
        1,
        "{found:?}"
    );
}

#[test]
fn stale_allow_good_credits_a_directive_that_fires() {
    assert!(lints_of("core", fixture("stale_allow_good")).is_empty());
}

// --- obs names ---------------------------------------------------------------

fn obs_files(call_fixture: &str) -> Vec<SrcFile> {
    vec![
        SrcFile {
            crate_name: "obs".to_string(),
            path: "crates/obs/src/names.rs".to_string(),
            src: fixture("obs_names").to_string(),
        },
        SrcFile {
            crate_name: "netsim".to_string(),
            path: "crates/netsim/src/probe.rs".to_string(),
            src: fixture(call_fixture).to_string(),
        },
    ]
}

#[test]
fn obs_bad_flags_rogue_literal_unknown_const_and_bare_const() {
    let report = run(&obs_files("obs_call_bad"), &BTreeMap::new());
    let unknown = report
        .errors()
        .filter(|f| f.lint == Lint::ObsUnknownName)
        .count();
    assert_eq!(
        unknown, 4,
        "literal, names:: path, bare const and event literal"
    );
    assert!(report.gates());
}

#[test]
fn obs_good_passes_call_check_but_flags_the_dead_name() {
    let report = run(&obs_files("obs_call_good"), &BTreeMap::new());
    let findings: Vec<_> = report.errors().collect();
    assert!(findings.iter().all(|f| f.lint != Lint::ObsUnknownName));
    let dead: Vec<_> = findings
        .iter()
        .filter(|f| f.lint == Lint::ObsDeadName)
        .collect();
    assert_eq!(dead.len(), 1);
    assert!(dead[0].message.contains("DEAD_METRIC"));
    assert!(dead[0].file.ends_with("names.rs"));
}

#[test]
fn every_lint_id_has_a_firing_fixture() {
    // The corpus above covers the whole catalog; this guards against a
    // new lint landing without fixtures.
    let mut fired = std::collections::BTreeSet::new();
    for (crate_name, fixture_name) in [
        ("netsim", "hash_iter_bad"),
        ("core", "nondet_bad"),
        ("igp", "panic_bad"),
        ("bgp", "unwrap_bad"),
        ("topology", "slice_index_bad"),
        ("core", "allow_bad"),
        ("serve", "lock_order_bad"),
        ("serve", "lock_blocking_bad"),
        ("bgp", "hot_alloc_bad"),
        ("topology", "layering_bad"),
        ("core", "stale_allow_bad"),
    ] {
        fired.extend(lints_of(crate_name, fixture(fixture_name)));
    }
    for f in run(&obs_files("obs_call_bad"), &BTreeMap::new())
        .errors()
        .chain(run(&obs_files("obs_call_good"), &BTreeMap::new()).errors())
    {
        fired.insert(f.lint);
    }
    for lint in Lint::ALL {
        assert!(fired.contains(&lint), "no fixture fires {}", lint.id());
    }
}

// --- end-to-end binary runs --------------------------------------------------

/// Builds a throwaway workspace skeleton under the target tmp dir.
fn seeded_workspace(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("lint-ws-{tag}"));
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("stale seeded workspace must be removable");
    }
    std::fs::create_dir_all(root.join("crates/obs/src")).expect("create obs src dir");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write Cargo.toml");
    std::fs::write(
        root.join("crates/obs/src/names.rs"),
        fixture("obs_names").to_string() + "\n// keep fixture vocab alive\n",
    )
    .expect("write names.rs");
    for (rel, body) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("fixture paths have parents"))
            .expect("create fixture dir");
        std::fs::write(path, body).expect("write fixture file");
    }
    root
}

fn run_binary_on(root: &Path) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_netdiag-xtask"))
        .args(["lint", "--root"])
        .arg(root)
        // The seeded vocabulary has no call sites in these minimal
        // workspaces; dead names are exercised by engine-level tests.
        .args(["--warn", "obs-dead-name"])
        .output()
        .expect("spawn netdiag-xtask")
}

#[test]
fn binary_exits_nonzero_on_each_seeded_bad_workspace() {
    for (tag, bad) in [
        ("hash", "hash_iter_bad"),
        ("nondet", "nondet_bad"),
        ("panic", "panic_bad"),
        ("unwrap", "unwrap_bad"),
        ("allow", "allow_bad"),
        ("obs", "obs_call_bad"),
        ("stale", "stale_allow_bad"),
    ] {
        let root = seeded_workspace(tag, &[("crates/core/src/lib.rs", fixture(bad))]);
        let out = run_binary_on(&root);
        assert!(
            !out.status.success(),
            "{tag}: expected a gating exit code; stdout:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn binary_exits_nonzero_on_each_seeded_graph_violation() {
    // Graph lints are placed in the crate whose rules they break.
    for (tag, rel, bad) in [
        ("lockord", "crates/serve/src/lib.rs", "lock_order_bad"),
        ("lockblk", "crates/serve/src/lib.rs", "lock_blocking_bad"),
        ("hotalloc", "crates/bgp/src/lib.rs", "hot_alloc_bad"),
        ("layering", "crates/topology/src/lib.rs", "layering_bad"),
    ] {
        let root = seeded_workspace(tag, &[(rel, fixture(bad))]);
        let out = run_binary_on(&root);
        assert!(
            !out.status.success(),
            "{tag}: expected a gating exit code; stdout:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn binary_exits_zero_on_a_clean_seeded_workspace() {
    let root = seeded_workspace(
        "clean",
        &[
            ("crates/core/src/lib.rs", fixture("hash_iter_good")),
            ("crates/netsim/src/lib.rs", fixture("unwrap_good")),
            ("crates/serve/src/lib.rs", fixture("lock_blocking_good")),
            ("crates/bgp/src/lib.rs", fixture("hot_alloc_good")),
            ("crates/bgp/src/layering.rs", fixture("layering_good")),
        ],
    );
    let out = run_binary_on(&root);
    assert!(
        out.status.success(),
        "stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn binary_exits_zero_on_this_repository() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels under the workspace root");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_netdiag-xtask"))
        .args(["lint", "--root"])
        .arg(root)
        .output()
        .expect("spawn netdiag-xtask");
    assert!(
        out.status.success(),
        "the workspace gate is red:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
