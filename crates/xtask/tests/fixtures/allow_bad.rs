//! Seeded-bad fixture: malformed allow directives.
pub fn naked_allow(v: Option<u32>) -> u32 {
    // lint: allow(unwrap)
    v.unwrap()
}

pub fn unknown_id() -> u32 {
    // lint: allow(no-such-lint): confidently wrong
    7
}
