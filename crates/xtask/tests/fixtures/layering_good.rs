// Linted as crate `bgp` — everything imported here sits at or below
// bgp's layer (topology, igp, the obs spine, the rand stub, std).
use std::collections::BTreeMap;

use netdiag_igp::AsIgp;
use netdiag_obs::Recorder;
use netdiag_topology::Topo;
use rand::Rng;

pub fn layered(t: &Topo) -> BTreeMap<u32, u32> {
    let _ = t;
    BTreeMap::new()
}
