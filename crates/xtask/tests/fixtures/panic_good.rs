//! Seeded-good fixture: panics only in test code.
pub fn lib_path(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        if 1 + 1 != 2 {
            panic!("arithmetic broke");
        }
    }
}
