// A `// hot` function that allocates four ways — growth ctor, push on
// that local, format! — plus a direct callee that boxes. All flagged.

// hot
pub fn deliver_fast(input: &[u32]) -> u32 {
    let mut scratch = Vec::new();
    for v in input {
        scratch.push(*v + 1);
    }
    let label = format!("{}", scratch.len());
    helper(label.len() as u32)
}

fn helper(n: u32) -> u32 {
    let boxed = Box::new(n);
    *boxed
}
