//! Seeded-good fixture: documented expects; test code may unwrap.
pub fn first(v: &[u32]) -> u32 {
    *v.first().expect("caller guarantees a non-empty slice (validated at parse)")
}

pub fn not_code() -> &'static str {
    ".unwrap() inside a string literal is not a call"
}

// A comment mentioning .unwrap() is not a call either.

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
