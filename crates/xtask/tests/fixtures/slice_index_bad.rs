//! Seeded-bad fixture: direct indexing expressions.
pub fn head(v: &[u32]) -> u32 {
    v[0]
}

pub fn cell(m: &[Vec<u32>], i: usize, j: usize) -> u32 {
    m[i][j]
}
