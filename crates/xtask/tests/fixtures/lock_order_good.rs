// Same two mutexes, but every path takes them in the same global order
// (queue before done) — the lock graph has an edge but no cycle.
use std::sync::Mutex;

pub struct Shared {
    pub queue: Mutex<Vec<u32>>,
    pub done: Mutex<Vec<u32>>,
}

pub fn forward(s: &Shared) {
    let q = s.queue.lock().expect("queue lock poisoned in forward");
    let mut d = s.done.lock().expect("done lock poisoned in forward");
    d.extend(q.iter().copied());
}

pub fn forward_twice(s: &Shared) {
    let q = s.queue.lock().expect("queue lock poisoned in forward_twice");
    let mut d = s.done.lock().expect("done lock poisoned in forward_twice");
    d.extend(q.iter().copied());
    d.extend(q.iter().copied());
}
