// The directive earns its keep: it suppresses a real unwrap finding, so
// the stale-allow audit stays quiet.
pub fn get(v: &[u32]) -> u32 {
    // lint: allow(unwrap): fixture slice is nonempty by construction
    *v.first().unwrap()
}
