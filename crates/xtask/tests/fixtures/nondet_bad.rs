//! Seeded-bad fixture: ambient clock, RNG and environment reads.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t = Instant::now();
    t.elapsed().as_nanos()
}

pub fn epoch() -> SystemTime {
    SystemTime::now()
}

pub fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.gen()
}

pub fn config() -> Option<String> {
    std::env::var("NETDIAG_MODE").ok()
}
