// Guards held across blocking operations: a channel recv and a thread
// join. Every acquirer of `state`/`workers` stalls for the blocking
// duration — or deadlocks if the blocked side needs the lock.
use std::sync::mpsc::Receiver;
use std::sync::Mutex;
use std::thread::JoinHandle;

pub struct Inbox {
    pub state: Mutex<Vec<u32>>,
    pub workers: Mutex<Vec<JoinHandle<()>>>,
}

pub fn drain(inbox: &Inbox, rx: &Receiver<u32>) {
    let mut st = inbox.state.lock().expect("state lock poisoned in drain");
    while let Ok(v) = rx.recv() {
        st.push(v);
    }
}

pub fn shutdown(inbox: &Inbox) {
    let mut ws = inbox.workers.lock().expect("workers lock poisoned in shutdown");
    for w in ws.drain(..) {
        let _ = w.join();
    }
}
