// The same work with guards scoped correctly: dropped before the recv
// loop, re-taken per item; handles drained under the lock but joined
// after the guard's block ends.
use std::sync::mpsc::Receiver;
use std::sync::Mutex;
use std::thread::JoinHandle;

pub struct Inbox {
    pub state: Mutex<Vec<u32>>,
    pub workers: Mutex<Vec<JoinHandle<()>>>,
}

pub fn drain(inbox: &Inbox, rx: &Receiver<u32>) {
    let mut st = inbox.state.lock().expect("state lock poisoned in drain");
    st.clear();
    drop(st);
    while let Ok(v) = rx.recv() {
        let mut st = inbox.state.lock().expect("state lock poisoned per item");
        st.push(v);
    }
}

pub fn shutdown(inbox: &Inbox) {
    let handles: Vec<JoinHandle<()>> = {
        let mut ws = inbox.workers.lock().expect("workers lock poisoned in shutdown");
        ws.drain(..).collect()
    };
    for w in handles {
        let _ = w.join();
    }
}
