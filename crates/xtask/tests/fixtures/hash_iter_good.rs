//! Seeded-good fixture: ordered containers iterate; hash containers only look up.
use std::collections::{BTreeMap, HashMap};

pub fn ordered_dump(table: &BTreeMap<u32, String>) -> Vec<String> {
    table.values().cloned().collect()
}

pub fn lookups_are_fine(index: &HashMap<u32, u32>, key: u32) -> Option<u32> {
    index.get(&key).copied()
}

pub fn insert_only(mut cache: HashMap<u32, u32>) -> usize {
    cache.insert(1, 2);
    cache.len()
}
