// Two mutexes taken in opposite orders on different paths: the classic
// AB-BA deadlock. Both orders must be flagged.
use std::sync::Mutex;

pub struct Shared {
    pub queue: Mutex<Vec<u32>>,
    pub done: Mutex<Vec<u32>>,
}

pub fn forward(s: &Shared) {
    let q = s.queue.lock().expect("queue lock poisoned in forward");
    let mut d = s.done.lock().expect("done lock poisoned in forward");
    d.extend(q.iter().copied());
}

pub fn requeue(s: &Shared) {
    let d = s.done.lock().expect("done lock poisoned in requeue");
    let mut q = s.queue.lock().expect("queue lock poisoned in requeue");
    q.extend(d.iter().copied());
}
