// Linted as crate `topology` — the DAG's base layer must not import the
// control planes or the daemon above it.
use netdiag_bgp::RouterId;
use netdiag_serve::Request;

pub fn inverted(r: RouterId) -> Request {
    Request::from_router(r)
}
