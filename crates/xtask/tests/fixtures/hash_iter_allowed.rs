//! Seeded fixture: hash iteration behind a justified allow directive.
use std::collections::HashMap;

pub fn order_insensitive_sum(table: &HashMap<u32, u64>) -> u64 {
    // lint: allow(hash-iter): summation is commutative; order cannot leak
    table.values().sum()
}
