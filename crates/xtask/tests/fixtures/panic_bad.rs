//! Seeded-bad fixture: panic-family macros in library code.
pub fn explode(v: Option<u32>) -> u32 {
    match v {
        Some(x) if x > 0 => x,
        Some(_) => panic!("zero is not allowed"),
        None => todo!(),
    }
}

pub fn later() {
    unimplemented!()
}

pub fn cant_happen(flag: bool) -> u32 {
    if flag {
        1
    } else {
        unreachable!("flag is always true")
    }
}
