//! Seeded-bad fixture: unwraps and undocumented expects.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn second(v: &[u32]) -> u32 {
    *v.get(1).expect("oops")
}

pub fn third(v: &[u32], msg: &str) -> u32 {
    *v.get(2).expect(msg)
}
