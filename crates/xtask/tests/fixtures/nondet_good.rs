//! Seeded-good fixture: randomness flows from the seed, time is passed in.
pub fn roll(seed: u64) -> u64 {
    seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

pub fn label() -> &'static str {
    // The words Instant and now in prose (or "Instant::now()" quoted)
    // must not trip the lint.
    "call Instant::now() elsewhere"
}
