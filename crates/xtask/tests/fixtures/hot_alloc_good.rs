// The same hot path written allocation-free: the caller owns the
// scratch buffer and the hot fn only reuses it. A cold fn may still
// allocate freely.

// hot
pub fn deliver_fast(input: &[u32], scratch: &mut Vec<u32>) -> u32 {
    scratch.clear();
    for v in input {
        scratch.push(*v + 1);
    }
    let mut acc = 0;
    for v in scratch.iter() {
        acc += *v;
    }
    acc
}

pub fn setup() -> Vec<u32> {
    let mut v = Vec::new();
    v.push(1);
    v
}
