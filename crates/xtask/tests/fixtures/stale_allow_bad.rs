// A justified allow directive whose hazard no longer exists: the line
// it covers does not unwrap, so the directive itself is the finding.

// lint: allow(unwrap): the value was validated at parse time
pub fn get(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}
