//! Seeded-good fixture: call sites use the vocabulary.
use crate::names;

pub fn instrument(recorder: &Recorder) {
    recorder.add(names::PROBES_SENT, 1);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_ad_hoc_names() {
        let (h, _rec) = recorder();
        h.add("test.only", 1);
    }
}

pub fn instrument_event(recorder: &Recorder) {
    recorder.event(names::EV_SPF, EventPayload::new);
}
