//! Seeded-bad fixture: rogue metric names.
use crate::names;

pub fn rogue_literal(recorder: &Recorder) {
    recorder.add("rogue.name", 1);
}

pub fn unknown_const(recorder: &Recorder) {
    recorder.observe(names::NOT_DEFINED, 2);
}

pub fn bare_unknown_const(recorder: &Recorder) {
    recorder.add(ROGUE_BARE_CONST, 3);
}

pub fn rogue_event(recorder: &Recorder) {
    recorder.event("rogue.event", EventPayload::new);
}
