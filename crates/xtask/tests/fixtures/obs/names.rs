//! Fixture metric vocabulary.

/// Counter: probes sent.
pub const PROBES_SENT: &str = "probe.sent";
/// Counter: never referenced anywhere — must be flagged dead.
pub const DEAD_METRIC: &str = "dead.metric";
/// Event: one SPF recompute.
pub const EV_SPF: &str = "igp.spf";
