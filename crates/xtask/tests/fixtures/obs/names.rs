//! Fixture metric vocabulary.

/// Counter: probes sent.
pub const PROBES_SENT: &str = "probe.sent";
/// Counter: never referenced anywhere — must be flagged dead.
pub const DEAD_METRIC: &str = "dead.metric";
