//! Seeded-bad fixture: hash iteration feeding ordered output.
use std::collections::{HashMap, HashSet};

pub fn ordered_dump(table: &HashMap<u32, String>) -> Vec<String> {
    let mut out = Vec::new();
    for (_k, v) in table.iter() {
        out.push(v.clone());
    }
    out
}

pub fn keys_leak(routes: HashMap<u32, u32>) -> Vec<u32> {
    routes.keys().copied().collect()
}

pub fn set_for_loop(seen: &HashSet<u32>) -> u32 {
    let mut sum = 0;
    for v in seen {
        sum += v;
    }
    sum
}
