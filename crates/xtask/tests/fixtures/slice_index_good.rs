//! Seeded-good fixture: checked access; brackets that are not indexing.
pub fn head(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

#[derive(Clone, Copy)]
pub struct Block {
    pub words: u8,
}

pub fn zeros() -> [u8; 4] {
    [0u8; 4]
}

pub fn build() -> Vec<u32> {
    vec![1, 2, 3]
}

pub fn destructure(pair: [u32; 2]) -> u32 {
    let [a, b] = pair;
    a + b
}
