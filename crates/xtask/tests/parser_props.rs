//! Property tests for the item parser: the graph passes run over every
//! workspace file, including ones mid-edit, so `parse` must never panic
//! on arbitrary or malformed token streams, and a broken item must not
//! swallow the rest of the file — the parser recovers at `;` and `}`.

use proptest::prelude::*;

use netdiag_xtask::parser::parse;

/// Characters that stress the parser's structural states: item keywords
/// get built from idents, plus every delimiter and recovery anchor.
fn structural_char() -> impl Strategy<Value = char> {
    prop_oneof![
        Just('f'),
        Just('n'),
        Just('i'),
        Just('m'),
        Just('p'),
        Just('l'),
        Just('u'),
        Just('s'),
        Just('e'),
        Just(' '),
        Just('\n'),
        Just('{'),
        Just('}'),
        Just('('),
        Just(')'),
        Just('<'),
        Just('>'),
        Just(':'),
        Just(';'),
        Just(','),
        Just('#'),
        Just('['),
        Just(']'),
        Just('!'),
        Just('&'),
        Just('.'),
        Just('_'),
    ]
}

/// Truncated or mangled item heads: each ends mid-declaration, so the
/// parser must bail out without consuming what follows.
fn broken_item() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("fn"),
        Just("fn ;"),
        Just("fn (x: u32)"),
        Just("impl"),
        Just("impl <"),
        Just("impl for"),
        Just("mod"),
        Just("mod {"),
        Just("use"),
        Just("use ;"),
        Just("trait"),
        Just("#["),
        Just("fn broken(x: Vec<"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (lossily decoded) never panic the parser.
    #[test]
    fn parse_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = parse(&src);
    }

    /// Dense streams of keywords and delimiters — unbalanced braces,
    /// truncated generics, attribute openers — never panic either, and
    /// every recorded item points at an in-range token.
    #[test]
    fn parse_never_panics_on_structural_soup(chars in proptest::collection::vec(structural_char(), 0..192)) {
        let src: String = chars.into_iter().collect();
        let parsed = parse(&src);
        let n = parsed.tokens.len();
        for f in &parsed.fns {
            if let Some((open, close)) = f.body {
                prop_assert!(open < n && close < n && open <= close,
                    "fn {:?} body ({open}, {close}) out of {n} tokens", f.name);
            }
        }
    }

    /// A broken item followed by a `;` or `}` recovery anchor must not
    /// swallow the well-formed fn after it: the parser resynchronises
    /// and still finds `survivor`, including its `// hot` mark.
    #[test]
    fn parse_recovers_after_a_broken_item(
        broken in broken_item(),
        anchor in prop_oneof![Just(";"), Just("}")],
    ) {
        let src = format!("{broken} {anchor}\n// hot\nfn survivor() {{ work(); }}\n");
        let parsed = parse(&src);
        let survivor = parsed.fns.iter().find(|f| f.name == "survivor");
        prop_assert!(
            survivor.is_some_and(|f| f.hot),
            "parser lost the fn after {broken:?} {anchor:?}: {:?}",
            parsed.fns.iter().map(|f| &f.name).collect::<Vec<_>>()
        );
    }
}
