//! Lint engine: file model, test-code exemption, allow directives and
//! finding collection.
//!
//! The engine prepares each source file once — tokenizing it, locating
//! `#[cfg(test)]`/`#[test]` regions (exempt from every lint) and parsing
//! `// lint: allow(<id>): <justification>` escape hatches — then hands
//! the prepared file to each lint pass in [`crate::lints`].

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::lexer::{lex, Tok, TokKind};

/// Severity of a lint at report time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Gates the exit code.
    Deny,
    /// Reported but does not gate.
    Warn,
}

/// Every lint the checker knows, with its stable ID.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// `hash-iter`: HashMap/HashSet iteration in deterministic crates.
    HashIter,
    /// `nondet-source`: wall clocks, `thread_rng`, `std::env` in sim code.
    NondetSource,
    /// `panic-macro`: `panic!`/`todo!`/`unimplemented!`/`unreachable!`.
    PanicMacro,
    /// `unwrap`: `.unwrap()` or an undocumented `.expect(..)`.
    Unwrap,
    /// `slice-index`: direct `x[i]` indexing (advisory by default).
    SliceIndex,
    /// `obs-unknown-name`: recorder name not in `crates/obs/src/names.rs`.
    ObsUnknownName,
    /// `obs-dead-name`: name in `names.rs` with no instrumented call site.
    ObsDeadName,
    /// `bad-allow`: malformed or unjustified allow directive.
    BadAllow,
    /// `lock-order`: a lock acquisition that closes a cycle in the
    /// workspace lock-ordering graph (potential deadlock).
    LockOrder,
    /// `lock-across-blocking`: a `Mutex`/`RwLock` guard held across a
    /// blocking call (`.recv()`, socket/file I/O, `JoinHandle::join`).
    LockAcrossBlocking,
    /// `hot-alloc`: an allocation inside a `// hot` function or a
    /// function it calls directly.
    HotAlloc,
    /// `layering`: a `use` that violates the crate DAG.
    Layering,
    /// `stale-allow`: an allow directive that suppresses no finding.
    StaleAllow,
}

impl Lint {
    /// Every lint, in reporting order.
    pub const ALL: [Lint; 13] = [
        Lint::HashIter,
        Lint::NondetSource,
        Lint::PanicMacro,
        Lint::Unwrap,
        Lint::SliceIndex,
        Lint::ObsUnknownName,
        Lint::ObsDeadName,
        Lint::BadAllow,
        Lint::LockOrder,
        Lint::LockAcrossBlocking,
        Lint::HotAlloc,
        Lint::Layering,
        Lint::StaleAllow,
    ];

    /// The stable machine-readable ID (used in diagnostics and in
    /// `lint: allow(<id>)` directives).
    pub fn id(self) -> &'static str {
        match self {
            Lint::HashIter => "hash-iter",
            Lint::NondetSource => "nondet-source",
            Lint::PanicMacro => "panic-macro",
            Lint::Unwrap => "unwrap",
            Lint::SliceIndex => "slice-index",
            Lint::ObsUnknownName => "obs-unknown-name",
            Lint::ObsDeadName => "obs-dead-name",
            Lint::BadAllow => "bad-allow",
            Lint::LockOrder => "lock-order",
            Lint::LockAcrossBlocking => "lock-across-blocking",
            Lint::HotAlloc => "hot-alloc",
            Lint::Layering => "layering",
            Lint::StaleAllow => "stale-allow",
        }
    }

    /// Parses a lint ID.
    pub fn from_id(id: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.id() == id)
    }

    /// The level applied when the caller does not override it.
    pub fn default_level(self) -> Level {
        match self {
            // Dense ID-indexed arrays are the workspace's dominant idiom;
            // flagging every `links[l.index()]` would bury the signal, so
            // indexing stays advisory until checked accessors land.
            Lint::SliceIndex => Level::Warn,
            _ => Level::Deny,
        }
    }

    /// One-line rationale, shown by `netdiag-xtask list`.
    pub fn rationale(self) -> &'static str {
        match self {
            Lint::HashIter => {
                "hash iteration order varies between runs; parity of trial \
                 outputs (tests/parallel_parity.rs) requires ordered iteration"
            }
            Lint::NondetSource => {
                "wall clocks, ambient RNGs and environment reads make trials \
                 irreproducible; all randomness must flow from the seed"
            }
            Lint::PanicMacro => {
                "a panic in library code kills a whole trial batch; return an \
                 error or document the invariant"
            }
            Lint::Unwrap => {
                "`.unwrap()` hides why the value must exist; use `?`, or \
                 `.expect(..)` with a message stating the invariant"
            }
            Lint::SliceIndex => {
                "direct indexing panics on bad input; prefer `.get(..)` on \
                 untrusted indices (advisory: dense ID indexing is idiomatic \
                 here)"
            }
            Lint::ObsUnknownName => {
                "metric names must live in crates/obs/src/names.rs so run \
                 reports stay a closed vocabulary"
            }
            Lint::ObsDeadName => {
                "a name with no call site is a stale vocabulary entry; delete \
                 it or re-instrument"
            }
            Lint::BadAllow => {
                "an allow directive without a justification defeats the audit \
                 trail the escape hatch exists for"
            }
            Lint::LockOrder => {
                "two locks taken in opposite orders on different code paths \
                 deadlock under contention; keep the lock graph acyclic"
            }
            Lint::LockAcrossBlocking => {
                "a guard held across `.recv()`/file/socket I/O or a thread \
                 join stalls every other acquirer for the blocking duration \
                 (or deadlocks if the blocked side needs the lock)"
            }
            Lint::HotAlloc => {
                "allocation in a `// hot` function (or a direct callee) is a \
                 per-iteration cost the benchmarks gate on; preallocate or \
                 reuse scratch buffers"
            }
            Lint::Layering => {
                "the crate DAG is topology → igp/bgp → netsim → core → \
                 experiments/serve with obs orthogonal and stubs leaf-only; \
                 an inverted `use` makes the layers unbuildable apart"
            }
            Lint::StaleAllow => {
                "an allow directive that suppresses nothing documents a \
                 hazard that no longer exists; delete it so real suppressions \
                 stay auditable"
            }
        }
    }
}

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Which lint fired.
    pub lint: Lint,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.lint.id(),
            self.message
        )
    }
}

/// An input source file.
#[derive(Clone, Debug)]
pub struct SrcFile {
    /// Short crate name (`"bgp"`, `"core"`, …, `"root"` for the root
    /// package) — lints scope themselves by it.
    pub crate_name: String,
    /// Workspace-relative path, used verbatim in diagnostics.
    pub path: String,
    /// File contents.
    pub src: String,
}

/// A tokenized file with exemptions resolved.
pub struct PreparedFile<'a> {
    /// The input.
    pub file: &'a SrcFile,
    /// Token stream with comments stripped (lints scan this).
    pub tokens: Vec<Tok>,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(usize, usize)>,
    /// `line → lint IDs` allowed there (directive lines plus, for each
    /// directive, the next line that carries code).
    pub allows: BTreeMap<usize, BTreeSet<Lint>>,
    /// Malformed allow directives found while parsing comments.
    pub bad_allows: Vec<Finding>,
    /// Well-formed allow directives as written: `(directive line, lint)`.
    pub directives: Vec<(usize, Lint)>,
    /// `(covered line, lint) → directive line` — who gets credit when a
    /// suppression fires at a covered line.
    directive_for: BTreeMap<(usize, Lint), usize>,
    /// Directives that suppressed at least one would-be finding this run
    /// (interior mutability: passes hold `&PreparedFile`).
    hits: RefCell<BTreeSet<(usize, Lint)>>,
}

impl PreparedFile<'_> {
    /// Is `line` inside test-exempt code?
    pub fn in_test(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Is `lint` allowed at `line` by a directive on it or above it?
    pub fn allowed(&self, lint: Lint, line: usize) -> bool {
        self.allows.get(&line).is_some_and(|s| s.contains(&lint))
    }

    /// Records `finding` unless the line is test-exempt or allowed.
    /// A suppressing directive is credited so [`Self::stale_allows`] can
    /// tell live escape hatches from stale ones.
    pub fn push(&self, out: &mut Vec<Finding>, lint: Lint, line: usize, message: String) {
        if self.in_test(line) {
            return;
        }
        if self.allowed(lint, line) {
            if let Some(&directive_line) = self.directive_for.get(&(line, lint)) {
                self.hits.borrow_mut().insert((directive_line, lint));
            }
            return;
        }
        out.push(Finding {
            file: self.file.path.clone(),
            line,
            lint,
            message,
        });
    }

    /// Reports every directive that suppressed nothing. Call after all
    /// other passes have run over this file.
    pub fn stale_allows(&self, out: &mut Vec<Finding>) {
        let stale: Vec<(usize, Lint)> = {
            let hits = self.hits.borrow();
            self.directives
                .iter()
                .filter(|d| !hits.contains(d))
                .copied()
                .collect()
        };
        for (line, lint) in stale {
            self.push(
                out,
                Lint::StaleAllow,
                line,
                format!(
                    "`lint: allow({})` suppresses no finding here; the hazard \
                     is gone — delete the directive",
                    lint.id()
                ),
            );
        }
    }
}

/// Tokenizes `file` and resolves its exemptions.
pub fn prepare(file: &SrcFile) -> PreparedFile<'_> {
    let all_tokens = lex(&file.src);
    let mut allows: BTreeMap<usize, BTreeSet<Lint>> = BTreeMap::new();
    let mut bad_allows = Vec::new();
    for t in &all_tokens {
        if t.kind != TokKind::Comment {
            continue;
        }
        parse_allow_directive(file, t, &mut allows, &mut bad_allows);
    }
    let tokens: Vec<Tok> = all_tokens
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    // A directive covers its own line (trailing-comment form) and the
    // next line carrying code (comment-above form — justification
    // comments may continue over several lines before the code).
    let mut directives = Vec::new();
    let mut directive_for: BTreeMap<(usize, Lint), usize> = BTreeMap::new();
    for (directive_line, lints) in allows.clone() {
        let code_line = tokens.iter().map(|t| t.line).find(|&l| l > directive_line);
        for lint in &lints {
            directives.push((directive_line, *lint));
            directive_for.insert((directive_line, *lint), directive_line);
            if let Some(code_line) = code_line {
                directive_for.insert((code_line, *lint), directive_line);
            }
        }
        if let Some(code_line) = code_line {
            allows.entry(code_line).or_default().extend(lints);
        }
    }
    let test_ranges = find_test_ranges(&tokens);
    PreparedFile {
        file,
        tokens,
        test_ranges,
        allows,
        bad_allows,
        directives,
        directive_for,
        hits: RefCell::new(BTreeSet::new()),
    }
}

/// Parses `lint: allow(<id>): <justification>` out of one comment.
fn parse_allow_directive(
    file: &SrcFile,
    comment: &Tok,
    allows: &mut BTreeMap<usize, BTreeSet<Lint>>,
    bad: &mut Vec<Finding>,
) {
    const MARKER: &str = "lint: allow(";
    // Anchored to the comment's start (after doc-comment `/`/`!`/`*`
    // sigils and whitespace) so prose *mentioning* the directive syntax
    // — e.g. this linter's own docs — is not parsed as a directive.
    let body = comment
        .text
        .trim_start_matches(['/', '!', '*'])
        .trim_start();
    if !body.starts_with(MARKER) {
        return;
    }
    let rest = body.get(MARKER.len()..).unwrap_or("");
    let mut fail = |msg: String| {
        bad.push(Finding {
            file: file.path.clone(),
            line: comment.line,
            lint: Lint::BadAllow,
            message: msg,
        });
    };
    let Some(close) = rest.find(')') else {
        fail("unclosed `lint: allow(` directive".to_string());
        return;
    };
    let id = rest.get(..close).unwrap_or("").trim();
    let Some(lint) = Lint::from_id(id) else {
        fail(format!(
            "unknown lint id {id:?} (run `netdiag-xtask list` for the catalog)"
        ));
        return;
    };
    let after = rest.get(close + 1..).unwrap_or("").trim_start();
    let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if justification.is_empty() {
        fail(format!(
            "allow({id}) needs a justification: `// lint: allow({id}): <why this is sound>`"
        ));
        return;
    }
    allows.entry(comment.line).or_default().insert(lint);
}

/// Keywords that introduce an item whose body an exempting attribute
/// covers (we exempt from the attribute through the item's last brace).
const ITEM_KEYWORDS: [&str; 7] = ["mod", "fn", "impl", "struct", "enum", "trait", "const"];

/// Finds line ranges covered by `#[cfg(test)]` / `#[test]` items by
/// scanning the comment-free token stream and matching braces.
fn find_test_ranges(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_line = tokens[i].line;
        let (attr_tokens, after_attr) = attribute_body(tokens, i + 2);
        // `#[test]` or a `cfg` mentioning `test` — but not `cfg(not(test))`,
        // which marks *non*-test code.
        let exempts = attr_tokens.iter().any(|t| t.is_ident("test"))
            && !attr_tokens.iter().any(|t| t.is_ident("not"))
            && (attr_tokens.len() == 1 || attr_tokens.iter().any(|t| t.is_ident("cfg")));
        if !exempts {
            i = after_attr;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = after_attr;
        while j < tokens.len()
            && tokens[j].is_punct('#')
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            j = attribute_body(tokens, j + 2).1;
        }
        // Advance to the item's opening brace (or a `;` for out-of-line
        // items like `#[cfg(test)] mod tests;`).
        let mut saw_item = false;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == TokKind::Ident && ITEM_KEYWORDS.contains(&t.text.as_str()) {
                saw_item = true;
            }
            if t.is_punct(';') && saw_item {
                ranges.push((attr_line, t.line));
                j += 1;
                break;
            }
            if t.is_punct('{') {
                let close = matching_brace(tokens, j);
                let end_line = tokens.get(close).map_or(t.line, |t| t.line);
                ranges.push((attr_line, end_line));
                j = close + 1;
                break;
            }
            j += 1;
        }
        i = j.max(after_attr);
    }
    ranges
}

/// Given the index just past `#[`, returns the attribute's inner tokens
/// and the index just past its closing `]`.
pub(crate) fn attribute_body(tokens: &[Tok], start: usize) -> (Vec<Tok>, usize) {
    let mut depth = 1usize;
    let mut j = start;
    let mut inner = Vec::new();
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        inner.push(t.clone());
        j += 1;
    }
    (inner, (j + 1).min(tokens.len()))
}

/// Index of the `}` matching the `{` at `open` (or the last token on
/// unbalanced input).
pub(crate) fn matching_brace(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct('{') {
            depth += 1;
        } else if tokens[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// A full lint run: findings plus the level each resolved to.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings with their effective levels, sorted by file then line.
    pub findings: Vec<(Finding, Level)>,
}

impl Report {
    /// Findings at [`Level::Deny`].
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|(_, l)| *l == Level::Deny)
            .map(|(f, _)| f)
    }

    /// Findings at [`Level::Warn`].
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|(_, l)| *l == Level::Warn)
            .map(|(f, _)| f)
    }

    /// Does the run gate (any deny-level finding)?
    pub fn gates(&self) -> bool {
        self.errors().next().is_some()
    }
}

/// Runs every lint over `files`, resolving levels through `overrides`
/// (`lint id → level`).
pub fn run(files: &[SrcFile], overrides: &BTreeMap<String, Level>) -> Report {
    let mut findings = crate::lints::run_all(files);
    findings.sort_by(|a, b| (&a.file, a.line, a.lint.id()).cmp(&(&b.file, b.line, b.lint.id())));
    // Graph passes can reach one site along several paths (e.g. a lock
    // edge seen directly and through a callee); identical graph findings
    // fold. Token lints stay per-site — `m[i][j]` is two findings.
    findings.dedup_by(|a, b| {
        a == b
            && matches!(
                a.lint,
                Lint::LockOrder | Lint::LockAcrossBlocking | Lint::HotAlloc
            )
    });
    let findings = findings
        .into_iter()
        .map(|f| {
            let level = overrides
                .get(f.lint.id())
                .copied()
                .unwrap_or_else(|| f.lint.default_level());
            (f, level)
        })
        .collect();
    Report { findings }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SrcFile {
        SrcFile {
            crate_name: "core".to_string(),
            path: "crates/core/src/x.rs".to_string(),
            src: src.to_string(),
        }
    }

    #[test]
    fn cfg_test_module_lines_are_exempt() {
        let f = file("fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n");
        let p = prepare(&f);
        assert!(!p.in_test(1));
        assert!(p.in_test(2));
        assert!(p.in_test(4));
        assert!(p.in_test(5));
        assert!(!p.in_test(6));
    }

    #[test]
    fn test_attribute_on_fn_is_exempt() {
        let f = file("#[test]\nfn t() {\n  x();\n}\nfn lib() {}\n");
        let p = prepare(&f);
        assert!(p.in_test(3));
        assert!(!p.in_test(5));
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let f = file("#[cfg(feature = \"x\")]\nfn a() {\n  y();\n}\n");
        let p = prepare(&f);
        assert!(!p.in_test(3));
    }

    #[test]
    fn allow_directive_covers_its_line_and_the_next() {
        let f = file("// lint: allow(unwrap): invariant documented at decl\nlet x = y.unwrap();\n");
        let p = prepare(&f);
        assert!(p.bad_allows.is_empty());
        assert!(p.allowed(Lint::Unwrap, 1));
        assert!(p.allowed(Lint::Unwrap, 2));
        assert!(!p.allowed(Lint::Unwrap, 3));
        assert!(!p.allowed(Lint::PanicMacro, 2));
    }

    #[test]
    fn allow_without_justification_is_flagged() {
        let f = file("// lint: allow(unwrap)\nlet x = y.unwrap();\n");
        let p = prepare(&f);
        assert_eq!(p.bad_allows.len(), 1);
        assert_eq!(p.bad_allows[0].lint, Lint::BadAllow);
        assert!(!p.allowed(Lint::Unwrap, 2));
    }

    #[test]
    fn allow_with_unknown_id_is_flagged() {
        let f = file("// lint: allow(no-such-lint): because\nx();\n");
        let p = prepare(&f);
        assert_eq!(p.bad_allows.len(), 1);
    }

    #[test]
    fn lint_ids_round_trip() {
        for lint in Lint::ALL {
            assert_eq!(Lint::from_id(lint.id()), Some(lint));
        }
        assert_eq!(Lint::from_id("bogus"), None);
    }
}
