//! Item-level parser over the lexer's token stream.
//!
//! A single linear pass that resolves the items the graph passes need:
//! `fn` declarations (with their enclosing `impl`/`trait` owner, inline
//! module path, body span and `// hot` marker), `use` declarations (root
//! segment only — layering works on crate roots), and `mod` declarations.
//! It is **not** a Rust parser: generics, patterns and expressions are
//! skipped by bracket matching, and anything it cannot resolve it drops
//! rather than guesses. Like the lexer it never panics on any input and
//! resynchronizes at `;`/`}` — a property pinned by
//! `tests/parser_props.rs`.
//!
//! The token stream kept on [`ParsedFile`] **includes comments** (unlike
//! [`crate::engine::PreparedFile::tokens`]) so `// hot` markers stay in
//! place; token indices from this module index into that stream only.

use crate::engine::matching_brace;
use crate::lexer::{lex, Tok, TokKind};

/// A function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Declared name.
    pub name: String,
    /// Self type of the enclosing `impl`/`trait` block, if any.
    pub owner: Option<String>,
    /// Names of the enclosing inline modules, outermost first.
    pub module: Vec<String>,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Marked `// hot` immediately above the item?
    pub hot: bool,
    /// Token indices of the body's `{` and `}` (None for a bodiless
    /// trait method or an unparseable declaration).
    pub body: Option<(usize, usize)>,
}

/// A `use` declaration, reduced to its root path segment.
#[derive(Clone, Debug)]
pub struct UseDecl {
    /// First path segment (`netdiag_topology`, `std`, `crate`, …).
    pub root: String,
    /// Line of the `use` keyword.
    pub line: usize,
}

/// A `mod` declaration (inline or out-of-line).
#[derive(Clone, Debug)]
pub struct ModDecl {
    /// Declared name.
    pub name: String,
    /// Names of the enclosing inline modules, outermost first.
    pub path: Vec<String>,
    /// Line of the `mod` keyword.
    pub line: usize,
}

/// One parsed file: the comment-bearing token stream plus every item
/// resolved from it.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Full token stream, comments included.
    pub tokens: Vec<Tok>,
    /// Every `fn` item, in source order (nested fns included).
    pub fns: Vec<FnItem>,
    /// Every `use` declaration, item- or fn-scoped.
    pub uses: Vec<UseDecl>,
    /// Every `mod` declaration.
    pub mods: Vec<ModDecl>,
}

/// A call site inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Callee name (last path segment for `a::b::f(..)`).
    pub name: String,
    /// Was it `recv.name(..)` rather than `name(..)`?
    pub method: bool,
    /// Line of the callee name.
    pub idx: usize,
}

impl Call {
    /// Line of the call site (requires the stream it was found in).
    pub fn line(&self, tokens: &[Tok]) -> usize {
        tokens.get(self.idx).map_or(0, |t| t.line)
    }
}

/// Scope kinds tracked while scanning.
enum Scope {
    /// An inline `mod name { … }`.
    Mod(String),
    /// An `impl`/`trait` block with the given self-type name.
    Owner(String),
}

/// Item keywords that invalidate a pending `// hot` marker (the marker
/// only survives doc comments, attributes and fn-modifier keywords on
/// its way to a `fn`).
const HOT_CLEARING_ITEMS: [&str; 6] = ["struct", "enum", "union", "static", "type", "let"];

/// Keywords that look like `name(` but are never calls.
const CALL_KEYWORDS: [&str; 16] = [
    "if", "while", "for", "match", "return", "loop", "fn", "move", "in", "as", "let", "ref", "box",
    "dyn", "await", "where",
];

/// Is this comment a `// hot` marker?
fn is_hot_marker(text: &str) -> bool {
    let body = text.trim_start_matches(['/', '!', '*']).trim();
    body == "hot" || body.starts_with("hot:")
}

/// Index of the first non-comment token at or after `from`.
fn next_code(tokens: &[Tok], from: usize) -> Option<usize> {
    (from..tokens.len()).find(|&k| tokens[k].kind != TokKind::Comment)
}

/// Parses `src` into its item model. Total: never panics; malformed
/// input degrades to fewer resolved items.
pub fn parse(src: &str) -> ParsedFile {
    let tokens = lex(src);
    let mut fns = Vec::new();
    let mut uses = Vec::new();
    let mut mods = Vec::new();
    let mut scopes: Vec<(usize, Scope)> = Vec::new();
    let mut pending_hot = false;
    let mut i = 0usize;
    while i < tokens.len() {
        while scopes.last().is_some_and(|&(close, _)| close < i) {
            scopes.pop();
        }
        let t = &tokens[i];
        if t.kind == TokKind::Comment {
            if is_hot_marker(&t.text) {
                pending_hot = true;
            }
            i += 1;
            continue;
        }
        // Attributes (`#[..]`, `#![..]`) pass a pending hot marker through.
        if t.is_punct('#') {
            if tokens.get(i + 1).is_some_and(|n| n.is_punct('[')) {
                if let Some(next) = skip_attribute(&tokens, i + 2) {
                    i = next;
                    continue;
                }
            } else if tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
                && tokens.get(i + 2).is_some_and(|n| n.is_punct('['))
            {
                if let Some(next) = skip_attribute(&tokens, i + 3) {
                    i = next;
                    continue;
                }
            }
        }
        if t.kind != TokKind::Ident {
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                pending_hot = false;
            }
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            let line = t.line;
            match next_code(&tokens, i + 1).filter(|&k| tokens[k].kind == TokKind::Ident) {
                Some(name_idx) => {
                    let (body, next) = fn_body(&tokens, name_idx + 1);
                    let owner = scopes.iter().rev().find_map(|(_, s)| match s {
                        Scope::Owner(n) => Some(n.clone()),
                        Scope::Mod(_) => None,
                    });
                    fns.push(FnItem {
                        name: tokens[name_idx].text.clone(),
                        owner,
                        module: module_path(&scopes),
                        line,
                        hot: pending_hot,
                        body,
                    });
                    pending_hot = false;
                    // Step *into* the body so nested items are seen too.
                    i = match body {
                        Some((open, _)) => open + 1,
                        None => next,
                    };
                }
                None => {
                    // `fn(..)` pointer type or malformed input.
                    pending_hot = false;
                    i += 1;
                }
            }
            continue;
        }
        if t.is_ident("impl") || t.is_ident("trait") {
            pending_hot = false;
            match impl_header(&tokens, i + 1) {
                Some((owner, open)) => {
                    let close = matching_brace(&tokens, open);
                    if let Some(name) = owner {
                        scopes.push((close, Scope::Owner(name)));
                    }
                    i = open + 1;
                }
                None => i += 1,
            }
            continue;
        }
        if t.is_ident("mod") {
            pending_hot = false;
            let line = t.line;
            let name_idx = next_code(&tokens, i + 1).filter(|&k| tokens[k].kind == TokKind::Ident);
            let Some(name_idx) = name_idx else {
                i += 1;
                continue;
            };
            mods.push(ModDecl {
                name: tokens[name_idx].text.clone(),
                path: module_path(&scopes),
                line,
            });
            match next_code(&tokens, name_idx + 1) {
                Some(k) if tokens[k].is_punct('{') => {
                    let close = matching_brace(&tokens, k);
                    scopes.push((close, Scope::Mod(tokens[name_idx].text.clone())));
                    i = k + 1;
                }
                Some(k) => i = k + 1,
                None => i = tokens.len(),
            }
            continue;
        }
        if t.is_ident("use") {
            pending_hot = false;
            let line = t.line;
            // Skip a leading `::` before the root segment.
            let mut j = i + 1;
            while next_code(&tokens, j).is_some_and(|k| tokens[k].is_punct(':')) {
                j = next_code(&tokens, j).map_or(tokens.len(), |k| k + 1);
            }
            if let Some(k) = next_code(&tokens, j).filter(|&k| tokens[k].kind == TokKind::Ident) {
                uses.push(UseDecl {
                    root: tokens[k].text.clone(),
                    line,
                });
            }
            // Resynchronize at the terminating `;` (depth-aware: the use
            // tree may contain `{..}` groups). An unmatched `}` means the
            // declaration is broken — leave it for the main loop so
            // enclosing scopes still pop.
            let mut depth = 0usize;
            while i < tokens.len() {
                let t = &tokens[i];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if t.is_punct(';') && depth == 0 {
                    i += 1;
                    break;
                }
                i += 1;
            }
            continue;
        }
        if HOT_CLEARING_ITEMS.contains(&t.text.as_str()) {
            pending_hot = false;
        }
        i += 1;
    }
    ParsedFile {
        tokens,
        fns,
        uses,
        mods,
    }
}

/// From just past `#[`/`#![`: index past the matching `]`. Returns
/// `None` for an attribute that is never closed — a statement
/// terminator or unmatched `}` at token-tree depth 0 before the `]` —
/// so the caller rescans from the `#` and resynchronizes normally.
fn skip_attribute(tokens: &[Tok], start: usize) -> Option<usize> {
    let mut square = 1i32;
    let mut brace = 0i32;
    let mut paren = 0i32;
    let mut j = start;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('[') {
            square += 1;
        } else if t.is_punct(']') {
            square -= 1;
            if square == 0 {
                return Some(j + 1);
            }
        } else if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            if brace == 0 {
                return None;
            }
            brace -= 1;
        } else if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct(';') && square == 1 && brace == 0 && paren <= 0 {
            return None;
        }
        j += 1;
    }
    None
}

/// Inline-module path of the current scope stack, outermost first.
fn module_path(scopes: &[(usize, Scope)]) -> Vec<String> {
    scopes
        .iter()
        .filter_map(|(_, s)| match s {
            Scope::Mod(n) => Some(n.clone()),
            Scope::Owner(_) => None,
        })
        .collect()
}

/// From just past a `fn` name: finds the body's brace span, skipping the
/// parameter list and return type. Returns `(body, next-index)` — body
/// is `None` for `fn f(..);` trait methods.
fn fn_body(tokens: &[Tok], start: usize) -> (Option<(usize, usize)>, usize) {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut j = start;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct(';') && bracket <= 0 {
            // Outside `[T; N]` a `;` either terminates a bodiless fn or
            // sits mid-broken-header; resynchronize at it either way.
            return (None, if paren <= 0 { j + 1 } else { j });
        } else if t.is_punct('}') && bracket <= 0 {
            // A close brace before the body opened: broken header. Leave
            // the `}` for the main loop so enclosing scopes still pop.
            return (None, j);
        } else if paren <= 0 && bracket <= 0 && t.is_punct('{') {
            let close = matching_brace(tokens, j);
            return (Some((j, close)), close + 1);
        }
        j += 1;
    }
    (None, j)
}

/// From just past `impl`/`trait`: resolves the self-type name (the ident
/// after `for` when present — `impl Trait for Type` — else the first
/// generics-depth-0 ident) and the index of the block's `{`. `None` when
/// no block follows (e.g. malformed input).
fn impl_header(tokens: &[Tok], start: usize) -> Option<(Option<String>, usize)> {
    let mut angle = 0usize;
    let mut first: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut j = start;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            // `->` in an `impl Fn(..) -> T for ..` header is not a
            // generics close.
            if !(j > 0 && tokens[j - 1].is_punct('-')) {
                angle = angle.saturating_sub(1);
            }
        } else if t.is_punct('{') {
            let owner = after_for.or(first);
            return Some((owner, j));
        } else if t.is_punct(';') || t.is_punct('}') {
            // A terminator or stray close before the block opened:
            // broken header, bail so the main loop resynchronizes.
            return None;
        } else if t.kind == TokKind::Ident && angle == 0 {
            if t.is_ident("for") {
                saw_for = true;
            } else if t.is_ident("where") {
                saw_for = false; // idents past `where` are bounds, not the type
            } else if saw_for && after_for.is_none() {
                after_for = Some(t.text.clone());
            } else if first.is_none() && !saw_for {
                first = Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Extracts every call site between token indices `open` and `close`
/// (exclusive bounds of a body's braces). Macros (`name!(..)`), nested
/// `fn` headers and keyword forms (`if (..)`) are excluded.
pub fn calls_in(tokens: &[Tok], open: usize, close: usize) -> Vec<Call> {
    let mut out = Vec::new();
    let hi = close.min(tokens.len());
    let mut j = open + 1;
    while j < hi {
        let t = &tokens[j];
        if t.kind != TokKind::Ident
            || !tokens.get(j + 1).is_some_and(|n| n.is_punct('('))
            || CALL_KEYWORDS.contains(&t.text.as_str())
        {
            j += 1;
            continue;
        }
        let prev = &tokens[j - 1];
        if prev.is_ident("fn") {
            j += 1;
            continue;
        }
        out.push(Call {
            name: t.text.clone(),
            method: prev.is_punct('.'),
            idx: j,
        });
        j += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_free_and_method_fns() {
        let p = parse("fn a() { b(); }\nimpl Foo {\n  // hot\n  fn go(&self) { self.step(); }\n}");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "a");
        assert!(p.fns[0].owner.is_none());
        assert!(!p.fns[0].hot);
        assert_eq!(p.fns[1].name, "go");
        assert_eq!(p.fns[1].owner.as_deref(), Some("Foo"));
        assert!(p.fns[1].hot);
    }

    #[test]
    fn hot_marker_survives_attributes_but_not_other_items() {
        let p = parse("// hot\n#[inline]\npub fn fast() {}\n// hot\nstruct S;\nfn slow() {}");
        assert!(p.fns[0].hot);
        assert!(!p.fns[1].hot);
    }

    #[test]
    fn impl_trait_for_type_owner_is_the_type() {
        let p = parse("impl<T: Clone> Iterator for Wrapper<T> { fn next(&mut self) {} }");
        assert_eq!(p.fns[0].owner.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn use_roots_and_groups() {
        let p = parse(
            "use std::sync::{Mutex, Arc};\nuse netdiag_topology::Topo;\nfn f() { use crate::x; }",
        );
        let roots: Vec<&str> = p.uses.iter().map(|u| u.root.as_str()).collect();
        assert_eq!(roots, vec!["std", "netdiag_topology", "crate"]);
    }

    #[test]
    fn module_paths_nest() {
        let p = parse("mod outer { mod inner { fn f() {} } }");
        assert_eq!(p.fns[0].module, vec!["outer", "inner"]);
        assert_eq!(p.mods.len(), 2);
    }

    #[test]
    fn calls_distinguish_methods_and_skip_macros() {
        let p = parse("fn f() { g(); x.h(); println!(\"{}\", i); if j() {} }");
        let body = p.fns[0].body.expect("fn f has a brace-delimited body");
        let calls = calls_in(&p.tokens, body.0, body.1);
        let names: Vec<(&str, bool)> = calls.iter().map(|c| (c.name.as_str(), c.method)).collect();
        assert_eq!(names, vec![("g", false), ("h", true), ("j", false)]);
    }

    #[test]
    fn bodiless_trait_methods_have_no_body() {
        let p = parse("trait T { fn a(&self); fn b(&self) {} }");
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = parse("fn f(cb: fn(u32) -> u32) { cb(1); }");
        assert_eq!(p.fns.len(), 1);
    }
}
