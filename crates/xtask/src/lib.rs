//! `netdiag-xtask`: the workspace invariant checker.
//!
//! A dependency-free static analyzer enforcing repo-specific invariants
//! that clippy cannot express:
//!
//! * **Determinism** — no hash-order iteration or ambient
//!   clock/RNG/environment reads in the crates whose outputs must be
//!   bit-reproducible (`hash-iter`, `nondet-source`).
//! * **Panic-safety** — no `panic!`-family macros, `.unwrap()` or
//!   undocumented `.expect(..)` in non-test library code (`panic-macro`,
//!   `unwrap`), plus an advisory indexing lint (`slice-index`).
//! * **Obs-name consistency** — every metric name passed to the
//!   `netdiag-obs` recorder exists in `crates/obs/src/names.rs`, and
//!   every vocabulary entry has a call site (`obs-unknown-name`,
//!   `obs-dead-name`).
//! * **Concurrency** — the workspace lock-ordering graph stays acyclic
//!   and no guard is held across blocking I/O or a thread join
//!   (`lock-order`, `lock-across-blocking`), via the item-graph model
//!   in [`parser`] and [`graph`].
//! * **Hot paths** — functions marked `// hot` and their direct callees
//!   do not allocate (`hot-alloc`).
//! * **Layering** — `use` statements respect the crate DAG
//!   (`layering`), and the vendored stubs stay leaf-only.
//!
//! Escape hatch: `// lint: allow(<id>): <justification>` on the flagged
//! line or the line above; a directive without a justification is itself
//! a finding (`bad-allow`), and one that suppresses nothing is too
//! (`stale-allow`). Run it with `cargo run -p netdiag-xtask -- lint`;
//! dump the layering and lock graphs with `… -- graph --dot`; see
//! `DESIGN.md` §10 for the full catalog.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod graph;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod workspace;

pub use engine::{run, Finding, Level, Lint, Report, SrcFile};
