//! `netdiag-xtask`: the workspace invariant checker.
//!
//! A dependency-free static analyzer enforcing repo-specific invariants
//! that clippy cannot express:
//!
//! * **Determinism** — no hash-order iteration or ambient
//!   clock/RNG/environment reads in the crates whose outputs must be
//!   bit-reproducible (`hash-iter`, `nondet-source`).
//! * **Panic-safety** — no `panic!`-family macros, `.unwrap()` or
//!   undocumented `.expect(..)` in non-test library code (`panic-macro`,
//!   `unwrap`), plus an advisory indexing lint (`slice-index`).
//! * **Obs-name consistency** — every metric name passed to the
//!   `netdiag-obs` recorder exists in `crates/obs/src/names.rs`, and
//!   every vocabulary entry has a call site (`obs-unknown-name`,
//!   `obs-dead-name`).
//!
//! Escape hatch: `// lint: allow(<id>): <justification>` on the flagged
//! line or the line above; a directive without a justification is itself
//! a finding (`bad-allow`). Run it with `cargo run -p netdiag-xtask --
//! lint`; see `DESIGN.md` §10 for the full catalog.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod lints;
pub mod workspace;

pub use engine::{run, Finding, Level, Lint, Report, SrcFile};
