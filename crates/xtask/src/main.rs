//! CLI for the workspace invariant checker.
//!
//! ```text
//! netdiag-xtask lint [--root DIR] [--deny ID]... [--warn ID]...
//! netdiag-xtask graph [--root DIR] [--dot]
//! netdiag-xtask list
//! ```
//!
//! `lint` exits 0 when no deny-level finding exists, 1 otherwise, 2 on
//! usage or I/O errors. Diagnostics are machine-readable, one per line:
//! `path:line: [lint-id] message`. `graph` dumps the crate-layering and
//! lock-order graphs (DOT digraphs with `--dot`; a summary otherwise).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use netdiag_xtask::{engine, graph, lints, workspace, Level, Lint};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("graph") => graph_cmd(&args[1..]),
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("netdiag-xtask: unknown command {other:?}");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: netdiag-xtask <lint [--root DIR] [--deny ID] [--warn ID] \
         | graph [--root DIR] [--dot] | list>"
    );
}

/// Reads and validates `--root`, returning the collected files.
fn collect_files(root: &Path) -> Result<Vec<engine::SrcFile>, ExitCode> {
    if !workspace::is_workspace_root(root) {
        eprintln!(
            "netdiag-xtask: {} is not the workspace root (crates/obs/src/names.rs \
             not found); pass --root",
            root.display()
        );
        return Err(ExitCode::from(2));
    }
    workspace::collect(root).map_err(|e| {
        eprintln!("netdiag-xtask: failed to read sources: {e}");
        ExitCode::from(2)
    })
}

fn graph_cmd(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut dot = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("netdiag-xtask: --root needs a directory");
                    usage();
                    return ExitCode::from(2);
                }
            },
            "--dot" => dot = true,
            other => {
                eprintln!("netdiag-xtask: unknown flag {other:?}");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    let files = match collect_files(&root) {
        Ok(files) => files,
        Err(code) => return code,
    };
    let units = lints::units(&files);
    let rendered = graph::dot(&units);
    if dot {
        print!("{rendered}");
    } else {
        // Summary mode: edge counts per digraph.
        for line in rendered.lines() {
            if line.starts_with("digraph") || line.contains("->") {
                println!("{line}");
            }
        }
    }
    ExitCode::SUCCESS
}

fn list() {
    println!("{:<18} {:<5} rationale", "id", "level");
    for lint in Lint::ALL {
        let level = match lint.default_level() {
            Level::Deny => "deny",
            Level::Warn => "warn",
        };
        println!("{:<18} {:<5} {}", lint.id(), level, lint.rationale());
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut overrides: BTreeMap<String, Level> = BTreeMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let result = match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => {
                    root = PathBuf::from(dir);
                    Ok(())
                }
                None => Err("--root needs a directory".to_string()),
            },
            "--deny" | "--warn" => {
                let level = if arg == "--deny" {
                    Level::Deny
                } else {
                    Level::Warn
                };
                match it.next() {
                    Some(id) if Lint::from_id(id).is_some() => {
                        overrides.insert(id.clone(), level);
                        Ok(())
                    }
                    Some(id) => Err(format!("unknown lint id {id:?}")),
                    None => Err(format!("{arg} needs a lint id")),
                }
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(msg) = result {
            eprintln!("netdiag-xtask: {msg}");
            usage();
            return ExitCode::from(2);
        }
    }
    let files = match collect_files(&root) {
        Ok(files) => files,
        Err(code) => return code,
    };
    let report = engine::run(&files, &overrides);
    for (finding, level) in &report.findings {
        let tag = match level {
            Level::Deny => "deny",
            Level::Warn => "warn",
        };
        println!("{finding} [{tag}]");
    }
    let errors = report.errors().count();
    let warnings = report.warnings().count();
    println!(
        "xtask lint: {} file(s) scanned, {errors} error(s), {warnings} warning(s)",
        files.len()
    );
    if report.gates() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
