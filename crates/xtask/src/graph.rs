//! Graph-level passes over the parsed item model.
//!
//! Three analyses that need cross-statement (and cross-file) structure
//! rather than single-token patterns:
//!
//! * **lock-order / lock-across-blocking** — every `Mutex`/`RwLock`
//!   declaration becomes a node identified by `(crate, field name)`;
//!   every acquisition whose guard is still live when another lock is
//!   taken becomes an edge. Cycles (including self-edges) are potential
//!   deadlocks. A guard live across a blocking operation (`.recv()`,
//!   socket/file I/O, `JoinHandle::join`) — directly or through one
//!   resolved call — is flagged too.
//! * **hot-alloc** — functions marked `// hot` and their directly
//!   resolved callees must not allocate.
//! * **layering** — `use` roots must respect the crate DAG.
//!
//! Approximations (see DESIGN.md §10): lock identity is by declared
//! name, guard scopes extend to the end of the enclosing brace block
//! (or the statement's `;` for temporaries, or an explicit
//! `drop(guard)`), and calls resolve only when the callee name is
//! unique across the workspace (method calls additionally pass a
//! common-name stoplist). Everything unresolved is dropped, not
//! guessed — the passes trade exotic misses for zero false positives
//! on this workspace's idioms.

use std::collections::{BTreeMap, BTreeSet};

use crate::engine::{Finding, Lint, PreparedFile};
use crate::lexer::{Tok, TokKind};
use crate::parser::{calls_in, ParsedFile};

/// One file ready for graph analysis: the engine's exemption model plus
/// the parsed item model.
pub struct Unit<'a> {
    /// Exemptions, allows and finding collection.
    pub prepared: PreparedFile<'a>,
    /// Items and the comment-bearing token stream.
    pub parsed: ParsedFile,
    /// Vendored dependency stub — layering applies, nothing else.
    pub stub: bool,
}

impl Unit<'_> {
    fn crate_name(&self) -> &str {
        &self.prepared.file.crate_name
    }
}

/// Lock identity: `(crate, declared name)`.
type LockKey = (String, String);

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LockKind {
    Mutex,
    RwLock,
}

/// A lock acquisition edge: `to` taken while a guard on `from` is live.
struct Edge {
    from: LockKey,
    to: LockKey,
    unit: usize,
    line: usize,
    via: Option<String>,
}

/// A guard live across a blocking operation.
struct Blocked {
    key: LockKey,
    acq_line: usize,
    unit: usize,
    line: usize,
    desc: String,
    via: Option<String>,
}

/// Runs the three graph passes, pushing findings through each unit's
/// [`PreparedFile`].
pub fn run(units: &[Unit<'_>], out: &mut Vec<Finding>) {
    let (edges, blocked, _) = lock_model(units);
    for b in &blocked {
        let via = b
            .via
            .as_ref()
            .map(|f| format!("a call to `{f}()` which blocks on "))
            .unwrap_or_default();
        units[b.unit].prepared.push(
            out,
            Lint::LockAcrossBlocking,
            b.line,
            format!(
                "guard on `{}::{}` (acquired line {}) is held across {}`{}`; \
                 drop the guard (or narrow its block) before blocking",
                b.key.0, b.key.1, b.acq_line, via, b.desc
            ),
        );
    }
    let mut adj: BTreeMap<&LockKey, BTreeSet<&LockKey>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    for e in &edges {
        if !reaches(&adj, &e.to, &e.from) {
            continue;
        }
        let message = if e.from == e.to {
            format!(
                "re-acquiring `{}::{}` while a guard on it is still live \
                 deadlocks (std locks are not reentrant)",
                e.to.0, e.to.1
            )
        } else {
            let via = e
                .via
                .as_ref()
                .map(|f| format!(" (through `{f}()`)"))
                .unwrap_or_default();
            format!(
                "acquiring `{}::{}`{} while holding `{}::{}` closes a cycle \
                 in the lock-order graph (deadlock under contention); pick \
                 one global order",
                e.to.0, e.to.1, via, e.from.0, e.from.1
            )
        };
        units[e.unit]
            .prepared
            .push(out, Lint::LockOrder, e.line, message);
    }
    hot_alloc(units, out);
    for unit in units {
        layering(unit, out);
    }
}

/// Is `to` reachable from `from` in `adj`?
fn reaches(adj: &BTreeMap<&LockKey, BTreeSet<&LockKey>>, from: &LockKey, to: &LockKey) -> bool {
    let mut seen: BTreeSet<&LockKey> = BTreeSet::new();
    let mut work: Vec<&LockKey> = vec![from];
    while let Some(k) = work.pop() {
        if k == to {
            return true;
        }
        if !seen.insert(k) {
            continue;
        }
        if let Some(next) = adj.get(k) {
            work.extend(next.iter());
        }
    }
    false
}

// --- lock model --------------------------------------------------------------

/// Methods that block the calling thread while obviously doing I/O or
/// waiting on another thread. `Condvar::wait` is deliberately absent:
/// it releases the guard while parked.
const BLOCKING_METHODS: [&str; 9] = [
    "recv",
    "recv_timeout",
    "accept",
    "read_line",
    "read_to_end",
    "read_to_string",
    "read_exact",
    "write_all",
    "flush",
];

/// Blocking `Type::fn(`-style calls.
const BLOCKING_PATHS: [(&str, &str); 5] = [
    ("thread", "sleep"),
    ("File", "open"),
    ("File", "create"),
    ("TcpStream", "connect"),
    ("TcpListener", "bind"),
];

/// Method names too common to resolve as workspace calls — resolving
/// `x.get(..)` to some unique `fn get` elsewhere would be a lie.
const METHOD_STOPLIST: [&str; 44] = [
    "add",
    "as_mut",
    "as_ref",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "count",
    "default",
    "drain",
    "drop",
    "eq",
    "event",
    "extend",
    "filter",
    "fmt",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "len",
    "lock",
    "map",
    "max",
    "min",
    "new",
    "next",
    "observe",
    "pop",
    "push",
    "read",
    "record",
    "recv",
    "remove",
    "send",
    "span",
    "wait",
    "write",
];

/// Builds the lock-ordering edges, guard-across-blocking sites, and the
/// set of locks with at least one acquisition, for the whole workspace.
#[allow(clippy::type_complexity)]
fn lock_model(units: &[Unit<'_>]) -> (Vec<Edge>, Vec<Blocked>, BTreeSet<LockKey>) {
    let locks = lock_decls(units);
    let fn_index = index_fns(units);
    // Per-fn direct facts: acquisitions and blocking sites.
    struct Facts {
        acqs: Vec<Acq>,
        blocking: Vec<(usize, String)>, // (line, description)
    }
    let mut facts: BTreeMap<(usize, usize), Facts> = BTreeMap::new();
    for (u, unit) in units.iter().enumerate() {
        if unit.stub {
            continue;
        }
        let toks = &unit.parsed.tokens;
        let depths = brace_depths(toks);
        for (fi, f) in unit.parsed.fns.iter().enumerate() {
            let Some((open, close)) = f.body else {
                continue;
            };
            if unit.prepared.in_test(f.line) {
                continue;
            }
            let acqs = acquisitions(unit, &locks, &depths, open, close);
            let mut blocking = Vec::new();
            for j in open + 1..close.min(toks.len()) {
                if let Some(desc) = blocking_at(toks, j) {
                    blocking.push((toks[j].line, desc));
                }
            }
            facts.insert((u, fi), Facts { acqs, blocking });
        }
    }
    let mut edges = Vec::new();
    let mut blocked = Vec::new();
    let mut acquired: BTreeSet<LockKey> = BTreeSet::new();
    for (&(u, fi), fact) in &facts {
        let unit = &units[u];
        let toks = &unit.parsed.tokens;
        for acq in &fact.acqs {
            acquired.insert(acq.key.clone());
            // Direct: another acquisition or blocking op inside the
            // guard's live range.
            for other in &fact.acqs {
                if other.dot > acq.dot && other.dot < acq.guard_end {
                    edges.push(Edge {
                        from: acq.key.clone(),
                        to: other.key.clone(),
                        unit: u,
                        line: toks[other.dot].line,
                        via: None,
                    });
                }
            }
            for (line, desc) in blocking_in(toks, acq.dot + 1, acq.guard_end) {
                blocked.push(Blocked {
                    key: acq.key.clone(),
                    acq_line: toks[acq.dot].line,
                    unit: u,
                    line,
                    desc,
                    via: None,
                });
            }
            // One level of calls: the callee's direct facts count as
            // happening at the call site.
            for call in calls_in(toks, acq.dot, acq.guard_end) {
                let Some(&(cu, cf)) = resolve(&fn_index, &call.name, call.method) else {
                    continue;
                };
                if (cu, cf) == (u, fi) {
                    continue; // recursion adds no new ordering facts
                }
                let Some(callee) = facts.get(&(cu, cf)) else {
                    continue;
                };
                let line = call.line(toks);
                for inner in &callee.acqs {
                    edges.push(Edge {
                        from: acq.key.clone(),
                        to: inner.key.clone(),
                        unit: u,
                        line,
                        via: Some(call.name.clone()),
                    });
                }
                if let Some((_, desc)) = callee.blocking.first() {
                    blocked.push(Blocked {
                        key: acq.key.clone(),
                        acq_line: toks[acq.dot].line,
                        unit: u,
                        line,
                        desc: desc.clone(),
                        via: Some(call.name.clone()),
                    });
                }
            }
        }
    }
    (edges, blocked, acquired)
}

/// One lock acquisition with its guard's live token range.
struct Acq {
    key: LockKey,
    /// Token index of the `.` in `.lock(`/`.read(`/`.write(`.
    dot: usize,
    /// Token index bound: the guard is live for tokens in
    /// `(dot, guard_end)`.
    guard_end: usize,
}

/// Every `Mutex`/`RwLock` declaration in the workspace, by
/// `(crate, name)`.
fn lock_decls(units: &[Unit<'_>]) -> BTreeMap<LockKey, LockKind> {
    let mut locks = BTreeMap::new();
    for unit in units {
        if unit.stub {
            continue;
        }
        let toks = &unit.parsed.tokens;
        for i in 0..toks.len() {
            // Form A: `name: …Mutex<…>…` — fields, statics, annotated
            // lets, params. The type scan is bounded and stops at the
            // declaration's natural end.
            if toks[i].kind == TokKind::Ident
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && !(i > 0 && toks[i - 1].is_punct(':'))
            {
                if let Some(kind) = lock_in_type(toks, i + 2) {
                    locks.insert((unit.crate_name().to_string(), toks[i].text.clone()), kind);
                }
            }
            // Form B: `name = Mutex::new(` — un-annotated lets and
            // reassignments.
            let kind = if toks[i].is_ident("Mutex") {
                Some(LockKind::Mutex)
            } else if toks[i].is_ident("RwLock") {
                Some(LockKind::RwLock)
            } else {
                None
            };
            if let Some(kind) = kind {
                let is_new = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|t| t.is_ident("new"));
                if is_new
                    && i >= 2
                    && toks[i - 1].is_punct('=')
                    && toks[i - 2].kind == TokKind::Ident
                {
                    locks.insert(
                        (unit.crate_name().to_string(), toks[i - 2].text.clone()),
                        kind,
                    );
                }
            }
        }
    }
    locks
}

/// Does the type starting at `start` mention `Mutex<`/`RwLock<` before
/// the declaration ends?
fn lock_in_type(toks: &[Tok], start: usize) -> Option<LockKind> {
    let mut angle = 0usize;
    for j in start..(start + 40).min(toks.len()) {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            if j > 0 && toks[j - 1].is_punct('-') {
                return None; // `->`: we ran into a signature, not a type
            }
            if angle == 0 {
                return None;
            }
            angle -= 1;
        } else if angle == 0
            && (t.is_punct(',')
                || t.is_punct(';')
                || t.is_punct('=')
                || t.is_punct('{')
                || t.is_punct('}')
                || t.is_punct('(')
                || t.is_punct(')'))
        {
            return None;
        } else if t.is_ident("Mutex") && toks.get(j + 1).is_some_and(|n| n.is_punct('<')) {
            return Some(LockKind::Mutex);
        } else if t.is_ident("RwLock") && toks.get(j + 1).is_some_and(|n| n.is_punct('<')) {
            return Some(LockKind::RwLock);
        }
    }
    None
}

/// Brace depth *after* each token.
fn brace_depths(toks: &[Tok]) -> Vec<u32> {
    let mut d = 0u32;
    toks.iter()
        .map(|t| {
            if t.is_punct('{') {
                d += 1;
            } else if t.is_punct('}') {
                d = d.saturating_sub(1);
            }
            d
        })
        .collect()
}

/// Finds the acquisitions in one fn body with their guard live ranges.
fn acquisitions(
    unit: &Unit<'_>,
    locks: &BTreeMap<LockKey, LockKind>,
    depths: &[u32],
    open: usize,
    close: usize,
) -> Vec<Acq> {
    let toks = &unit.parsed.tokens;
    let mut out = Vec::new();
    for j in open + 1..close.min(toks.len()) {
        if !toks[j].is_punct('.') {
            continue;
        }
        let Some(m) = toks.get(j + 1) else { continue };
        if m.kind != TokKind::Ident || !toks.get(j + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let want = match m.text.as_str() {
            "lock" => LockKind::Mutex,
            "read" | "write" => LockKind::RwLock,
            _ => continue,
        };
        let Some((recv, _)) = receiver_name(toks, j) else {
            continue;
        };
        let key = (unit.crate_name().to_string(), recv);
        if locks.get(&key) != Some(&want) {
            continue;
        }
        let guard = binding_name(toks, j, open);
        let depth = depths.get(j).copied().unwrap_or(0);
        let mut end = close;
        for k in j + 1..close.min(toks.len()) {
            let done = match &guard {
                // Named guard: lives to the enclosing block's `}` or an
                // explicit `drop(name)`.
                Some(name) => {
                    (toks[k].is_punct('}') && depths[k] + 1 == depth)
                        || (toks[k].is_ident("drop")
                            && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
                            && toks.get(k + 2).is_some_and(|t| t.is_ident(name))
                            && toks.get(k + 3).is_some_and(|t| t.is_punct(')')))
                }
                // Temporary guard: dies at the statement's `;`.
                None => toks[k].is_punct(';') && depths[k] == depth,
            };
            if done {
                end = k;
                break;
            }
        }
        out.push(Acq {
            key,
            dot: j,
            guard_end: end,
        });
    }
    out
}

/// Walks left from the `.` of a `.lock(`-style call to the receiver's
/// base identifier, skipping one level of `[…]` indexing.
fn receiver_name(toks: &[Tok], dot: usize) -> Option<(String, usize)> {
    let mut k = dot;
    loop {
        if k == 0 {
            return None;
        }
        let p = &toks[k - 1];
        if p.is_punct(']') {
            let mut depth = 1usize;
            let mut m = k - 1;
            while m > 0 && depth > 0 {
                m -= 1;
                if toks[m].is_punct(']') {
                    depth += 1;
                } else if toks[m].is_punct('[') {
                    depth -= 1;
                }
            }
            if depth != 0 {
                return None;
            }
            k = m;
            continue;
        }
        if p.kind == TokKind::Ident {
            return Some((p.text.clone(), k - 1));
        }
        return None;
    }
}

/// If the statement containing the acquisition at `dot` is a `let`
/// binding, returns the bound guard name.
fn binding_name(toks: &[Tok], dot: usize, open: usize) -> Option<String> {
    let mut k = dot;
    while k > open {
        let p = &toks[k - 1];
        if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
            return None;
        }
        if p.is_ident("let") {
            // The guard is the last ident of the pattern before `=`
            // (`let mut g`, `if let Ok(g)`).
            let mut name = None;
            for t in toks.iter().take(dot).skip(k) {
                if t.is_punct('=') {
                    break;
                }
                if t.kind == TokKind::Ident && !t.is_ident("mut") {
                    name = Some(t.text.clone());
                }
            }
            return name;
        }
        k -= 1;
    }
    None
}

/// Is token `j` the start of a blocking operation? Returns a
/// description like `.recv()` or `thread::sleep()`.
fn blocking_at(toks: &[Tok], j: usize) -> Option<String> {
    let t = toks.get(j)?;
    if t.is_punct('.') {
        let m = toks.get(j + 1)?;
        if m.kind == TokKind::Ident && toks.get(j + 2).is_some_and(|t| t.is_punct('(')) {
            if BLOCKING_METHODS.contains(&m.text.as_str()) {
                return Some(format!(".{}(..)", m.text));
            }
            // Only the zero-argument `.join()` is `JoinHandle::join`;
            // `path.join(x)` / `slice.join(sep)` take arguments.
            if m.is_ident("join") && toks.get(j + 3).is_some_and(|t| t.is_punct(')')) {
                return Some(".join()".to_string());
            }
        }
        return None;
    }
    if t.kind == TokKind::Ident
        && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 4).is_some_and(|t| t.is_punct('('))
    {
        let b = toks.get(j + 3)?;
        for (a, f) in BLOCKING_PATHS {
            if t.is_ident(a) && b.is_ident(f) {
                return Some(format!("{a}::{f}(..)"));
            }
        }
    }
    None
}

/// All blocking operations in a token range.
fn blocking_in(toks: &[Tok], from: usize, to: usize) -> Vec<(usize, String)> {
    (from..to.min(toks.len()))
        .filter_map(|j| blocking_at(toks, j).map(|d| (toks[j].line, d)))
        .collect()
}

/// Workspace fn index: name → definitions. Stub and test fns excluded.
fn index_fns(units: &[Unit<'_>]) -> BTreeMap<String, Vec<(usize, usize)>> {
    let mut index: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
    for (u, unit) in units.iter().enumerate() {
        if unit.stub {
            continue;
        }
        for (fi, f) in unit.parsed.fns.iter().enumerate() {
            if f.body.is_none() || unit.prepared.in_test(f.line) {
                continue;
            }
            index.entry(f.name.clone()).or_default().push((u, fi));
        }
    }
    index
}

/// Resolves a call to its unique workspace definition, or `None`.
fn resolve<'i>(
    index: &'i BTreeMap<String, Vec<(usize, usize)>>,
    name: &str,
    method: bool,
) -> Option<&'i (usize, usize)> {
    if method && METHOD_STOPLIST.contains(&name) {
        return None;
    }
    match index.get(name).map(Vec::as_slice) {
        Some([single]) => Some(single),
        _ => None,
    }
}

// --- hot-alloc ---------------------------------------------------------------

/// `Type::ctor(` forms that allocate.
const ALLOC_PATH_CTORS: [(&str, &str); 17] = [
    ("Vec", "new"),
    ("Vec", "from"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Box", "new"),
    ("VecDeque", "new"),
    ("VecDeque", "with_capacity"),
    ("BinaryHeap", "new"),
    ("BinaryHeap", "with_capacity"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("Arc", "new"),
    ("Rc", "new"),
];

/// `.method(` forms that allocate.
const ALLOC_METHODS: [&str; 5] = ["to_vec", "to_string", "to_owned", "clone", "collect"];

/// Allocating macros.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Growth-container ctors whose local bindings make later `.push(..)`
/// calls allocation sites too.
const GROWTH_CTORS: [&str; 4] = ["Vec", "VecDeque", "BinaryHeap", "String"];

/// Scans every `// hot` fn and its directly resolved callees for
/// allocation patterns.
fn hot_alloc(units: &[Unit<'_>], out: &mut Vec<Finding>) {
    let fn_index = index_fns(units);
    // (unit, fn) → (hot fn name, via-callee) — first context wins so a
    // fn that is itself hot is scanned once, as itself.
    let mut targets: BTreeMap<(usize, usize), (String, Option<String>)> = BTreeMap::new();
    for (u, unit) in units.iter().enumerate() {
        if unit.stub {
            continue;
        }
        for (fi, f) in unit.parsed.fns.iter().enumerate() {
            if f.hot && f.body.is_some() && !unit.prepared.in_test(f.line) {
                targets.insert((u, fi), (f.name.clone(), None));
            }
        }
    }
    let hot: Vec<(usize, usize)> = targets.keys().copied().collect();
    for (u, fi) in hot {
        let unit = &units[u];
        let f = &unit.parsed.fns[fi];
        let Some((open, close)) = f.body else {
            continue;
        };
        for call in calls_in(&unit.parsed.tokens, open, close) {
            let Some(&(cu, cf)) = resolve(&fn_index, &call.name, call.method) else {
                continue;
            };
            if units[cu].parsed.fns[cf].body.is_none() {
                continue;
            }
            targets
                .entry((cu, cf))
                .or_insert_with(|| (f.name.clone(), Some(call.name.clone())));
        }
    }
    for ((u, fi), (hot_name, via)) in &targets {
        let unit = &units[*u];
        let f = &unit.parsed.fns[*fi];
        let Some((open, close)) = f.body else {
            continue;
        };
        alloc_scan(unit, open, close, hot_name, via.as_deref(), out);
    }
}

/// Reports every allocation pattern in one fn body.
fn alloc_scan(
    unit: &Unit<'_>,
    open: usize,
    close: usize,
    hot_name: &str,
    via: Option<&str>,
    out: &mut Vec<Finding>,
) {
    let toks = &unit.parsed.tokens;
    let hi = close.min(toks.len());
    let context = match via {
        Some(callee) => format!("`{callee}`, called from `// hot` `{hot_name}`"),
        None => format!("`// hot` fn `{hot_name}`"),
    };
    let growth_locals = growth_locals(toks, open, hi);
    let report = |out: &mut Vec<Finding>, line: usize, what: &str| {
        unit.prepared.push(
            out,
            Lint::HotAlloc,
            line,
            format!(
                "{what} allocates in {context}; preallocate outside the hot \
                 path, reuse a scratch buffer, or justify with \
                 `// lint: allow(hot-alloc): <why>`"
            ),
        );
    };
    let mut j = open + 1;
    while j < hi {
        let t = &toks[j];
        // Lazy-trace closures (`rec.event(name, || …)`) only run when a
        // trace sink is attached; their bodies are exempt by design.
        if t.is_punct('.')
            && toks.get(j + 1).is_some_and(|n| n.is_ident("event"))
            && toks.get(j + 2).is_some_and(|n| n.is_punct('('))
        {
            j = matching_paren(toks, j + 2);
            continue;
        }
        if t.kind == TokKind::Ident {
            // `Type::ctor(` — but `Arc::clone(&x)` is the sanctioned
            // refcount bump, handled by the path table not listing it.
            if toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 4).is_some_and(|n| n.is_punct('('))
            {
                if let Some(m) = toks.get(j + 3) {
                    for (ty, ctor) in ALLOC_PATH_CTORS {
                        if t.is_ident(ty) && m.is_ident(ctor) {
                            report(out, t.line, &format!("`{ty}::{ctor}(..)`"));
                        }
                    }
                }
            }
            // `vec![` / `format!(`
            if ALLOC_MACROS.contains(&t.text.as_str())
                && toks.get(j + 1).is_some_and(|n| n.is_punct('!'))
            {
                report(out, t.line, &format!("`{}!`", t.text));
            }
        }
        if t.is_punct('.') {
            if let Some(m) = toks.get(j + 1) {
                if m.kind == TokKind::Ident && toks.get(j + 2).is_some_and(|n| n.is_punct('(')) {
                    if ALLOC_METHODS.contains(&m.text.as_str()) {
                        report(out, m.line, &format!("`.{}(..)`", m.text));
                    }
                    // `.push(..)` on a local bound from a growth ctor in
                    // this same fn (field pushes manage capacity at the
                    // owner and are not flagged).
                    if matches!(m.text.as_str(), "push" | "push_back" | "push_str")
                        && j > 0
                        && toks[j - 1].kind == TokKind::Ident
                        && growth_locals.contains(toks[j - 1].text.as_str())
                    {
                        report(
                            out,
                            m.line,
                            &format!(
                                "`{}.{}(..)` (local grows unbounded)",
                                toks[j - 1].text,
                                m.text
                            ),
                        );
                    }
                }
            }
        }
        j += 1;
    }
}

/// Names bound by `let [mut] name = Vec::new()` (and friends) or
/// `= vec![..]` inside the body.
fn growth_locals(toks: &[Tok], open: usize, hi: usize) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for j in open + 1..hi {
        if !toks[j].is_ident("let") {
            continue;
        }
        // let [mut] NAME [: T] = <ctor>
        let mut k = j + 1;
        if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let Some(name) = toks.get(k).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let Some(eq) = (k + 1..(k + 24).min(hi)).find(|&m| toks[m].is_punct('=')) else {
            continue;
        };
        let Some(ctor) = toks.get(eq + 1) else {
            continue;
        };
        let path_ctor = GROWTH_CTORS.contains(&ctor.text.as_str())
            && toks.get(eq + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(eq + 4).is_some_and(|t| t.is_ident("new"));
        let vec_macro = ctor.is_ident("vec") && toks.get(eq + 2).is_some_and(|t| t.is_punct('!'));
        if path_ctor || vec_macro {
            names.insert(name.text.clone());
        }
    }
    names
}

/// Index of the `)` matching the `(` at `open` (or the end on
/// unbalanced input).
fn matching_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

// --- layering ----------------------------------------------------------------

/// Maps a `use` root segment to the lint-scoping crate key it imports.
fn crate_key(root: &str) -> Option<&'static str> {
    match root {
        "netdiag_topology" => Some("topology"),
        "netdiag_igp" => Some("igp"),
        "netdiag_bgp" => Some("bgp"),
        "netdiag_netsim" => Some("netsim"),
        "netdiag_obs" => Some("obs"),
        "netdiagnoser" => Some("core"),
        "netdiag_experiments" => Some("experiments"),
        "netdiag_serve" => Some("serve"),
        "netdiag_xtask" => Some("xtask"),
        "netdiagnoser_repro" => Some("root"),
        "rand" => Some("rand"),
        "proptest" => Some("proptest"),
        "criterion" => Some("criterion"),
        _ => None,
    }
}

/// The crate DAG: who may `use` whom. `rand` is the seeded-RNG stub any
/// non-stub crate may draw from; `obs` is the orthogonal observability
/// spine; stubs themselves are leaf-only.
fn allowed_deps(crate_name: &str) -> &'static [&'static str] {
    match crate_name {
        "topology" => &["obs", "rand"],
        "igp" => &["topology", "obs", "rand"],
        "bgp" => &["topology", "igp", "obs", "rand"],
        "netsim" => &["topology", "igp", "bgp", "obs", "rand"],
        "core" => &["topology", "igp", "bgp", "netsim", "obs", "rand"],
        "experiments" => &["topology", "igp", "bgp", "netsim", "core", "obs", "rand"],
        "serve" => &[
            "topology",
            "igp",
            "bgp",
            "netsim",
            "core",
            "experiments",
            "obs",
            "rand",
        ],
        "root" => &[
            "topology",
            "igp",
            "bgp",
            "netsim",
            "core",
            "experiments",
            "serve",
            "obs",
            "rand",
        ],
        "proptest" => &["rand"],
        // obs, xtask and the rand/criterion stubs import nothing
        // workspace-local.
        _ => &[],
    }
}

/// Checks one unit's `use` roots against the crate DAG.
fn layering(unit: &Unit<'_>, out: &mut Vec<Finding>) {
    let cname = unit.crate_name();
    for decl in &unit.parsed.uses {
        let Some(key) = crate_key(&decl.root) else {
            continue;
        };
        if key == cname {
            continue;
        }
        if !allowed_deps(cname).contains(&key) {
            unit.prepared.push(
                out,
                Lint::Layering,
                decl.line,
                format!(
                    "`{cname}` must not use `{}` — the crate DAG is topology → \
                     igp/bgp → netsim → core → experiments/serve (obs \
                     orthogonal, stubs leaf-only); allowed here: [{}]",
                    decl.root,
                    allowed_deps(cname).join(", ")
                ),
            );
        }
    }
}

// --- dot dumps ---------------------------------------------------------------

/// Renders the crate-layering and lock-order graphs as two DOT
/// digraphs (for `netdiag-xtask graph --dot`).
pub fn dot(units: &[Unit<'_>]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let mut layer_edges: BTreeSet<(String, String, bool)> = BTreeSet::new();
    for unit in units {
        let cname = unit.crate_name();
        for decl in &unit.parsed.uses {
            let Some(key) = crate_key(&decl.root) else {
                continue;
            };
            // Same exemption as the lint: test-only imports (e.g. a
            // `#[cfg(test)]` mod using the proptest stub) are not
            // dependencies of the shipped crate.
            if key == cname || unit.prepared.in_test(decl.line) {
                continue;
            }
            let ok = allowed_deps(cname).contains(&key);
            layer_edges.insert((cname.to_string(), key.to_string(), ok));
        }
    }
    let _ = writeln!(s, "digraph layering {{");
    for (from, to, ok) in &layer_edges {
        let attr = if *ok { "" } else { " [color=red]" };
        let _ = writeln!(s, "  \"{from}\" -> \"{to}\"{attr};");
    }
    let _ = writeln!(s, "}}");
    let (edges, _, acquired) = lock_model(units);
    let mut adj: BTreeMap<&LockKey, BTreeSet<&LockKey>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    // Every acquired lock is a node — an edge-free graph still names
    // the critical sections it proved leaf-only.
    let mut nodes: BTreeSet<&LockKey> = acquired.iter().collect();
    for e in &edges {
        nodes.insert(&e.from);
        nodes.insert(&e.to);
    }
    let mut lock_lines: BTreeSet<String> = BTreeSet::new();
    for e in &edges {
        let cyclic = reaches(&adj, &e.to, &e.from);
        let site = format!("{}:{}", units[e.unit].prepared.file.path, e.line);
        let attr = if cyclic {
            format!(" [label=\"{site}\", color=red]")
        } else {
            format!(" [label=\"{site}\"]")
        };
        lock_lines.insert(format!(
            "  \"{}::{}\" -> \"{}::{}\"{attr};",
            e.from.0, e.from.1, e.to.0, e.to.1
        ));
    }
    let _ = writeln!(s, "digraph lock_order {{");
    for key in nodes {
        let _ = writeln!(s, "  \"{}::{}\";", key.0, key.1);
    }
    for line in lock_lines {
        let _ = writeln!(s, "{line}");
    }
    let _ = writeln!(s, "}}");
    s
}
