//! Maps the on-disk workspace to the engine's file model.
//!
//! Scope: the nine library crates (this linter included — panic/unwrap
//! discipline applies to the tooling too) plus the root package's
//! `src/`, and the vendored dependency stubs for the `layering` pass
//! only (stubs must stay leaf-only). Excluded by design: `src/bin/`
//! (CLIs own the process — env args, wall-clock progress and stdout are
//! their job), integration `tests/` and `benches/` (test code may
//! unwrap), and the bench harness crate.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::engine::SrcFile;

/// Library crates under `crates/` that the lints cover, as
/// `(directory name, crate name used for lint scoping)`.
pub const LINTED_CRATES: [(&str, &str); 9] = [
    ("bgp", "bgp"),
    ("core", "core"),
    ("experiments", "experiments"),
    ("igp", "igp"),
    ("netsim", "netsim"),
    ("obs", "obs"),
    ("serve", "serve"),
    ("topology", "topology"),
    ("xtask", "xtask"),
];

/// Vendored dependency stubs, collected only so the `layering` pass can
/// verify they stay leaf-only (`crates/proptest` may use the `rand`
/// stub; nothing else).
pub const STUB_CRATES: [(&str, &str); 3] = [
    ("criterion", "criterion"),
    ("proptest", "proptest"),
    ("rand", "rand"),
];

/// Does `root` look like the netdiagnoser workspace?
pub fn is_workspace_root(root: &Path) -> bool {
    root.join("crates/obs/src/names.rs").is_file() && root.join("Cargo.toml").is_file()
}

/// Collects every linted source file under `root`, in a deterministic
/// (sorted) order, with workspace-relative paths.
pub fn collect(root: &Path) -> io::Result<Vec<SrcFile>> {
    let mut files = Vec::new();
    for &(dir, crate_name) in LINTED_CRATES.iter().chain(STUB_CRATES.iter()) {
        let src_dir = root.join("crates").join(dir).join("src");
        collect_dir(root, &src_dir, crate_name, &mut files)?;
    }
    collect_dir(root, &root.join("src"), "root", &mut files)?;
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// Recursively gathers `.rs` files under `dir`, skipping `bin/`.
fn collect_dir(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<SrcFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_dir(root, &path, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SrcFile {
                crate_name: crate_name.to_string(),
                path: rel,
                src: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}
