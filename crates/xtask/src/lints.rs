//! The lint passes.
//!
//! Each pass walks the comment-free token stream of a [`PreparedFile`]
//! and records [`Finding`]s through [`PreparedFile::push`], which applies
//! the test-code exemption and allow directives. The passes are
//! heuristics over tokens, not type-checked analyses — they are tuned to
//! have **zero false positives on the idioms this workspace uses** and
//! to prefer a missed exotic case over noise (the rare miss is caught in
//! review; a noisy gate gets deleted).

use std::collections::{BTreeMap, BTreeSet};

use crate::engine::{prepare, Finding, Lint, PreparedFile, SrcFile};
use crate::graph::Unit;
use crate::lexer::{Tok, TokKind};

/// Crates whose outputs must be bit-reproducible: simulator, control
/// planes, diagnoser and the experiment harness (plus the root package's
/// re-export shim). `obs` is deliberately absent — spans read the wall
/// clock by design and never feed simulation results.
const DETERMINISTIC_CRATES: [&str; 7] = [
    "topology",
    "igp",
    "bgp",
    "netsim",
    "core",
    "experiments",
    "root",
];

/// Where the metric vocabulary lives, relative to the workspace root.
pub const NAMES_PATH: &str = "crates/obs/src/names.rs";

/// Is this crate one of the vendored dependency stubs? Stubs mimic
/// external APIs we don't control: only the `layering` pass (leaf-only
/// imports) applies to them.
pub fn is_stub(crate_name: &str) -> bool {
    matches!(crate_name, "rand" | "proptest" | "criterion")
}

/// Prepares and parses every file into a graph [`Unit`] (shared by the
/// lint run and the `graph --dot` CLI command).
pub fn units(files: &[SrcFile]) -> Vec<Unit<'_>> {
    files
        .iter()
        .map(|file| Unit {
            prepared: prepare(file),
            parsed: crate::parser::parse(&file.src),
            stub: is_stub(&file.crate_name),
        })
        .collect()
}

/// Runs every pass over every file: the per-file token passes, the
/// cross-file obs-name check, the graph passes
/// (lock-order/lock-across-blocking/hot-alloc/layering), and — last, so
/// every suppression has had its chance to fire — the stale-allow audit.
pub fn run_all(files: &[SrcFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    let names = NameRegistry::from_files(files);
    let mut used = BTreeSet::new();
    let units = units(files);
    for unit in &units {
        let p = &unit.prepared;
        out.extend(p.bad_allows.iter().cloned());
        if unit.stub {
            continue;
        }
        if DETERMINISTIC_CRATES.contains(&p.file.crate_name.as_str()) {
            hash_iter(p, &mut out);
            nondet_source(p, &mut out);
        }
        panic_macro(p, &mut out);
        unwrap_expect(p, &mut out);
        slice_index(p, &mut out);
        obs_call_sites(p, &names, &mut used, &mut out);
    }
    names.dead(&used, &mut out);
    crate::graph::run(&units, &mut out);
    for unit in &units {
        unit.prepared.stale_allows(&mut out);
    }
    out
}

/// Convenience for fixture tests: lints one pseudo-file as crate
/// `crate_name`.
pub fn run_one(crate_name: &str, path: &str, src: &str) -> Vec<Finding> {
    run_all(&[SrcFile {
        crate_name: crate_name.to_string(),
        path: path.to_string(),
        src: src.to_string(),
    }])
}

// --- hash-iter ---------------------------------------------------------------

/// Methods that observe a hash container's iteration order.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Flags iteration over identifiers declared with a `HashMap`/`HashSet`
/// type in the same file (let bindings, struct fields, fn params).
fn hash_iter(p: &PreparedFile<'_>, out: &mut Vec<Finding>) {
    let toks = &p.tokens;
    // Pass 1: names bound to hash-typed declarations.
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk left over `&`, `mut` and lifetimes to the binding site.
        let mut j = i;
        while j > 0 {
            let prev = &toks[j - 1];
            if prev.is_punct('&') || prev.is_ident("mut") || prev.kind == TokKind::Lifetime {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 2 {
            let (sep, name) = (&toks[j - 1], &toks[j - 2]);
            if (sep.is_punct(':') || sep.is_punct('=')) && name.kind == TokKind::Ident {
                hash_names.insert(name.text.as_str());
            }
        }
    }
    if hash_names.is_empty() {
        return;
    }
    // Pass 2: iteration over those names.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !hash_names.contains(t.text.as_str()) {
            continue;
        }
        // `name.iter()` / `name.keys()` / …
        if toks.get(i + 1).is_some_and(|t| t.is_punct('.')) {
            if let Some(m) = toks.get(i + 2) {
                if m.kind == TokKind::Ident
                    && ITER_METHODS.contains(&m.text.as_str())
                    && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
                {
                    p.push(
                        out,
                        Lint::HashIter,
                        m.line,
                        format!(
                            "`{}.{}()` iterates a hash container in nondeterministic \
                             order; use a BTree type or justify with \
                             `// lint: allow(hash-iter): <why order cannot leak>`",
                            t.text, m.text
                        ),
                    );
                }
            }
        }
        // `for x in name {` / `for x in &name {` / `for x in self.name {`
        if toks.get(i + 1).is_some_and(|t| t.is_punct('{')) && preceded_by_in(toks, i) {
            p.push(
                out,
                Lint::HashIter,
                t.line,
                format!(
                    "`for … in {}` iterates a hash container in nondeterministic order",
                    t.text
                ),
            );
        }
    }
}

/// Does the identifier at `i` (possibly a `self.name` chain) follow the
/// keyword `in`?
fn preceded_by_in(toks: &[Tok], i: usize) -> bool {
    let mut j = i;
    // Walk left over a field-access chain `a.b.name`.
    while j >= 2 && toks[j - 1].is_punct('.') && toks[j - 2].kind == TokKind::Ident {
        j -= 2;
    }
    // And over `&` / `&mut`.
    while j >= 1 && (toks[j - 1].is_punct('&') || toks[j - 1].is_ident("mut")) {
        j -= 1;
    }
    j >= 1 && toks[j - 1].is_ident("in")
}

// --- nondet-source -----------------------------------------------------------

/// Flags wall-clock reads, ambient RNGs and environment access inside
/// deterministic crates.
fn nondet_source(p: &PreparedFile<'_>, out: &mut Vec<Finding>) {
    let toks = &p.tokens;
    let path2 = |i: usize, a: &str, b: &str| {
        toks[i].is_ident(a)
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident(b))
    };
    for i in 0..toks.len() {
        let line = toks[i].line;
        if path2(i, "Instant", "now") || path2(i, "SystemTime", "now") {
            p.push(
                out,
                Lint::NondetSource,
                line,
                format!(
                    "`{}::now()` reads the wall clock inside a deterministic crate; \
                     pass timings in or move them behind the obs recorder",
                    toks[i].text
                ),
            );
        } else if toks[i].is_ident("thread_rng") && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            p.push(
                out,
                Lint::NondetSource,
                line,
                "`thread_rng()` is ambient randomness; derive an RNG from the \
                 trial seed instead"
                    .to_string(),
            );
        } else if path2(i, "std", "env") {
            p.push(
                out,
                Lint::NondetSource,
                line,
                "`std::env` reads ambient process state inside a deterministic \
                 crate; plumb configuration through arguments"
                    .to_string(),
            );
        }
    }
}

// --- panic-macro -------------------------------------------------------------

const PANIC_MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];

/// Flags `panic!`-family macros in library code.
fn panic_macro(p: &PreparedFile<'_>, out: &mut Vec<Finding>) {
    let toks = &p.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            p.push(
                out,
                Lint::PanicMacro,
                t.line,
                format!(
                    "`{}!` aborts the caller; return an error, or keep the \
                     documented-contract panic behind \
                     `// lint: allow(panic-macro): <contract>`",
                    t.text
                ),
            );
        }
    }
}

// --- unwrap ------------------------------------------------------------------

/// An `.expect(..)` message shorter than this cannot be stating an
/// invariant; it is a renamed `.unwrap()`.
pub const MIN_EXPECT_MESSAGE: usize = 15;

/// Flags `.unwrap()` and `.expect(..)` calls whose message does not
/// document the invariant.
fn unwrap_expect(p: &PreparedFile<'_>, out: &mut Vec<Finding>) {
    let toks = &p.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_punct('.') {
            continue;
        }
        let Some(m) = toks.get(i + 1) else { continue };
        if !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if m.is_ident("unwrap") {
            p.push(
                out,
                Lint::Unwrap,
                m.line,
                "`.unwrap()` in library code; use `?`, a default, or \
                 `.expect(\"<invariant>\")`"
                    .to_string(),
            );
        } else if m.is_ident("expect") {
            let msg = toks.get(i + 3);
            let documented = msg.is_some_and(|t| {
                t.kind == TokKind::Str && t.text.chars().count() >= MIN_EXPECT_MESSAGE
            });
            if !documented {
                p.push(
                    out,
                    Lint::Unwrap,
                    m.line,
                    format!(
                        "`.expect(..)` must carry a string literal of at least \
                         {MIN_EXPECT_MESSAGE} chars stating why the value exists"
                    ),
                );
            }
        }
    }
}

// --- slice-index -------------------------------------------------------------

/// Keywords that can directly precede a `[` without it being indexing.
const NON_INDEX_KEYWORDS: [&str; 14] = [
    "let", "in", "mut", "ref", "return", "match", "if", "else", "move", "box", "dyn", "as",
    "where", "break",
];

/// Flags direct indexing expressions `expr[i]` (advisory by default).
fn slice_index(p: &PreparedFile<'_>, out: &mut Vec<Finding>) {
    let toks = &p.tokens;
    for i in 1..toks.len() {
        if !toks[i].is_punct('[') {
            continue;
        }
        let prev = &toks[i - 1];
        let indexes = match prev.kind {
            TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
            TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
            _ => false,
        };
        // An empty `[]` is never indexing (e.g. `Vec::new()[..]` is not
        // written; `&x[..]` has `..` inside and still panics — keep it).
        if indexes {
            p.push(
                out,
                Lint::SliceIndex,
                toks[i].line,
                "direct indexing panics out of bounds; prefer `.get(..)` unless \
                 the index is a dense ID"
                    .to_string(),
            );
        }
    }
}

// --- obs names ---------------------------------------------------------------

/// The metric vocabulary parsed out of `crates/obs/src/names.rs`.
pub struct NameRegistry {
    /// const name → (string value, line in names.rs).
    consts: BTreeMap<String, (String, usize)>,
    /// Whether a names.rs was present in the input set.
    present: bool,
}

impl NameRegistry {
    /// Parses `pub const NAME: &str = "value";` items from the names
    /// file in `files` (`crate == "obs"`, path ending in `names.rs`).
    pub fn from_files(files: &[SrcFile]) -> Self {
        let Some(names_file) = files
            .iter()
            .find(|f| f.crate_name == "obs" && f.path.ends_with("names.rs"))
        else {
            return NameRegistry {
                consts: BTreeMap::new(),
                present: false,
            };
        };
        let toks: Vec<Tok> = crate::lexer::lex(&names_file.src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect();
        let mut consts = BTreeMap::new();
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].is_ident("const")
                && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            {
                let name = toks[i + 1].text.clone();
                let line = toks[i + 1].line;
                // Scan to the terminating `;`, grabbing the value literal.
                let mut value = None;
                let mut j = i + 2;
                while j < toks.len() && !toks[j].is_punct(';') {
                    if toks[j].kind == TokKind::Str {
                        value = Some(toks[j].text.clone());
                    }
                    j += 1;
                }
                if let Some(v) = value {
                    consts.insert(name, (v, line));
                }
                i = j;
            }
            i += 1;
        }
        NameRegistry {
            consts,
            present: true,
        }
    }

    fn knows_const(&self, name: &str) -> bool {
        self.consts.contains_key(name)
    }

    fn knows_value(&self, value: &str) -> bool {
        self.consts.values().any(|(v, _)| v == value)
    }

    /// Reports vocabulary entries never referenced by a call site.
    fn dead(&self, used: &BTreeSet<String>, out: &mut Vec<Finding>) {
        if !self.present {
            return;
        }
        for (name, (value, line)) in &self.consts {
            if !used.contains(name) && !used.contains(value) {
                out.push(Finding {
                    file: NAMES_PATH.to_string(),
                    line: *line,
                    lint: Lint::ObsDeadName,
                    message: format!(
                        "`{name}` (\"{value}\") has no instrumented call site; \
                         delete it or re-instrument"
                    ),
                });
            }
        }
    }
}

/// Recorder methods whose first argument is a metric or event name.
const RECORDER_METHODS: [&str; 8] = [
    "add",
    "observe",
    "span",
    "record_span",
    "gauge_set",
    "gauge_add",
    "gauge_sub",
    "event",
];

/// Checks recorder calls (`.add(..)`, `.observe(..)`, `.span(..)`,
/// `.record_span(..)`, the `gauge_*` family, `.event(..)`) — first
/// arguments against the vocabulary and collects which names are used.
fn obs_call_sites(
    p: &PreparedFile<'_>,
    names: &NameRegistry,
    used: &mut BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    if !names.present {
        return;
    }
    let toks = &p.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_punct('.') {
            continue;
        }
        let Some(m) = toks.get(i + 1) else { continue };
        if m.kind != TokKind::Ident
            || !RECORDER_METHODS.contains(&m.text.as_str())
            || !toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let Some(arg) = toks.get(i + 3) else { continue };
        // In test code we neither check nor count usage — tests may use
        // ad-hoc names against in-memory recorders.
        if p.in_test(arg.line) {
            continue;
        }
        match arg.kind {
            TokKind::Str => {
                if names.knows_value(&arg.text) {
                    used.insert(arg.text.clone());
                } else {
                    p.push(
                        out,
                        Lint::ObsUnknownName,
                        arg.line,
                        format!(
                            "metric name \"{}\" is not defined in {NAMES_PATH}; \
                             add a constant there and use it",
                            arg.text
                        ),
                    );
                }
            }
            TokKind::Ident => {
                let (path, last) = ident_path(toks, i + 3);
                if path.iter().any(|s| s == "names") && path.len() > 1 {
                    if names.knows_const(&last) {
                        used.insert(last);
                    } else {
                        p.push(
                            out,
                            Lint::ObsUnknownName,
                            arg.line,
                            format!("`names::{last}` is not defined in {NAMES_PATH}"),
                        );
                    }
                } else if path.len() == 1 && is_const_case(&last) {
                    // A bare SCREAMING_CASE ident is almost surely a
                    // metric constant imported directly.
                    if names.knows_const(&last) {
                        used.insert(last);
                    } else {
                        p.push(
                            out,
                            Lint::ObsUnknownName,
                            arg.line,
                            format!(
                                "`{last}` is not a constant from {NAMES_PATH}; \
                                 metric names must come from the shared vocabulary"
                            ),
                        );
                    }
                }
                // Lowercase idents (`self.0.add(name, delta)`) are
                // forwarding plumbing, not call sites — ignored.
            }
            _ => {}
        }
    }
}

/// Collects the `a::b::c` path starting at token `start`; returns the
/// segments and the final segment.
fn ident_path(toks: &[Tok], start: usize) -> (Vec<String>, String) {
    let mut segments = vec![toks[start].text.clone()];
    let mut j = start + 1;
    while toks.get(j).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Ident)
    {
        segments.push(toks[j + 2].text.clone());
        j += 3;
    }
    let last = segments.last().cloned().unwrap_or_default();
    (segments, last)
}

/// `SCREAMING_SNAKE_CASE` heuristic.
fn is_const_case(s: &str) -> bool {
    s.chars().any(|c| c.is_ascii_uppercase())
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}
