//! A hand-rolled Rust token scanner.
//!
//! This is not a full lexer for the Rust grammar — it is exactly the
//! subset the lint passes need: a stream of identifiers, literals and
//! punctuation with **correct string/char/comment boundaries** and
//! 1-based line numbers. Getting those boundaries right is the whole
//! game: a lint that greps for `unwrap()` must not fire on the text
//! `".unwrap()"` inside a string literal or a doc comment.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw strings with arbitrary `#` fences (`r##"…"##`), byte and
//! raw-byte strings, char literals (including escapes), lifetimes
//! (`'a` vs `'a'`), raw identifiers (`r#match`), and loose numeric
//! literals. The scanner never panics on any input — that property is
//! enforced by a proptest corpus (`tests/lexer_props.rs`).

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `match`, raw `r#match` → `match`).
    Ident,
    /// String literal of any flavour; `text` holds the *unquoted* body.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`); `text` holds the name without the quote.
    Lifetime,
    /// Numeric literal, suffix included (`0x1f`, `1_000u64`, `2.5`).
    Num,
    /// Comment (line or block); `text` holds the body without delimiters.
    Comment,
    /// Any single punctuation character (`.`, `(`, `::` is two tokens).
    Punct,
}

/// One scanned token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for which delimiters are stripped).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Tok {
    /// Is this a given punctuation character?
    pub fn is_punct(&self, c: char) -> bool {
        // Punct tokens hold exactly one char by construction.
        self.kind == TokKind::Punct && self.text.starts_with(c)
    }

    /// Is this a given identifier?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Cursor over the source as a char vector.
///
/// Indexing goes through `get`, so a cursor position past the end reads
/// as "no char" rather than panicking.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Scans `src` into a token stream. Total: consumes every char, never
/// panics; malformed input (unterminated strings, stray bytes) degrades
/// to best-effort tokens rather than errors.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek_at(1) == Some('/') => {
                cur.bump();
                cur.bump();
                let mut body = String::new();
                while let Some(c) = cur.peek() {
                    if c == '\n' {
                        break;
                    }
                    body.push(c);
                    cur.bump();
                }
                out.push(Tok {
                    kind: TokKind::Comment,
                    text: body,
                    line,
                });
            }
            '/' if cur.peek_at(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                let mut body = String::new();
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            body.push_str("/*");
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                            if depth > 0 {
                                body.push_str("*/");
                            }
                        }
                        (Some(c), _) => {
                            body.push(c);
                            cur.bump();
                        }
                        (None, _) => break, // unterminated: EOF closes it
                    }
                }
                out.push(Tok {
                    kind: TokKind::Comment,
                    text: body,
                    line,
                });
            }
            '"' => {
                cur.bump();
                out.push(Tok {
                    kind: TokKind::Str,
                    text: scan_string_body(&mut cur),
                    line,
                });
            }
            'r' | 'b' if starts_prefixed_literal(&cur) => {
                scan_prefixed_literal(&mut cur, &mut out, line);
            }
            '\'' => {
                scan_quote(&mut cur, &mut out, line);
            }
            c if is_ident_start(c) => {
                let mut name = String::new();
                while let Some(c) = cur.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    name.push(c);
                    cur.bump();
                }
                out.push(Tok {
                    kind: TokKind::Ident,
                    text: name,
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let mut body = String::new();
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        body.push(c);
                        cur.bump();
                    } else if c == '.'
                        && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit())
                        && !body.contains('.')
                    {
                        // `1.5` continues the number; `1..n` does not.
                        body.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.push(Tok {
                    kind: TokKind::Num,
                    text: body,
                    line,
                });
            }
            c => {
                cur.bump();
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
            }
        }
    }
    out
}

/// After an opening `"`, consumes through the closing quote, returning
/// the raw body (escapes kept verbatim; `\"` does not close).
fn scan_string_body(cur: &mut Cursor) -> String {
    let mut body = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                body.push('\\');
                if let Some(e) = cur.bump() {
                    body.push(e);
                }
            }
            c => body.push(c),
        }
    }
    body
}

/// Does the cursor sit on `r"`, `r#`, `b"`, `b'`, `br"` or `br#` —
/// i.e. a literal rather than the identifiers `r`/`b`?
fn starts_prefixed_literal(cur: &Cursor) -> bool {
    let (c0, c1) = (cur.peek(), cur.peek_at(1));
    match (c0, c1) {
        (Some('r'), Some('"' | '#')) => true,
        (Some('b'), Some('"' | '\'')) => true,
        (Some('b'), Some('r')) => matches!(cur.peek_at(2), Some('"' | '#')),
        _ => false,
    }
}

/// Scans `r…`/`b…` literals: raw strings with `#` fences, byte strings,
/// byte chars, and raw identifiers (`r#match` emits an `Ident`).
fn scan_prefixed_literal(cur: &mut Cursor, out: &mut Vec<Tok>, line: usize) {
    let raw = cur.eat('r') || {
        cur.eat('b');
        cur.eat('r')
    };
    if raw {
        let mut hashes = 0usize;
        while cur.eat('#') {
            hashes += 1;
        }
        if cur.eat('"') {
            // Raw string: runs until `"` followed by `hashes` hashes.
            let mut body = String::new();
            'scan: while let Some(c) = cur.bump() {
                if c == '"' {
                    let mut seen = 0usize;
                    while seen < hashes {
                        if cur.peek() == Some('#') {
                            cur.bump();
                            seen += 1;
                        } else {
                            // Not the fence — the quote and hashes were body.
                            body.push('"');
                            for _ in 0..seen {
                                body.push('#');
                            }
                            continue 'scan;
                        }
                    }
                    break;
                }
                body.push(c);
            }
            out.push(Tok {
                kind: TokKind::Str,
                text: body,
                line,
            });
        } else if hashes == 1 && cur.peek().is_some_and(is_ident_start) {
            // Raw identifier `r#match`.
            let mut name = String::new();
            while let Some(c) = cur.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                name.push(c);
                cur.bump();
            }
            out.push(Tok {
                kind: TokKind::Ident,
                text: name,
                line,
            });
        } else {
            // `r#` before something unexpected: emit the hashes as punct.
            for _ in 0..hashes {
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: "#".to_string(),
                    line,
                });
            }
        }
    } else if cur.eat('b') {
        if cur.eat('"') {
            out.push(Tok {
                kind: TokKind::Str,
                text: scan_string_body(cur),
                line,
            });
        } else if cur.peek() == Some('\'') {
            scan_quote(cur, out, line);
        }
    }
}

/// Scans from a `'`: a char literal when it closes (`'x'`, `'\n'`),
/// otherwise a lifetime (`'a`, `'static`).
fn scan_quote(cur: &mut Cursor, out: &mut Vec<Tok>, line: usize) {
    cur.eat('\'');
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: `'\n'`, `'\\'`, `'\u{1f600}'`.
            cur.bump();
            let mut body = String::from("\\");
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
                body.push(c);
            }
            out.push(Tok {
                kind: TokKind::Char,
                text: body,
                line,
            });
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char; `'a` (no closing quote) is a lifetime.
            let mut name = String::new();
            while let Some(c) = cur.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                name.push(c);
                cur.bump();
            }
            if name.chars().count() == 1 && cur.peek() == Some('\'') {
                cur.bump();
                out.push(Tok {
                    kind: TokKind::Char,
                    text: name,
                    line,
                });
            } else {
                out.push(Tok {
                    kind: TokKind::Lifetime,
                    text: name,
                    line,
                });
            }
        }
        Some(c) => {
            // Non-identifier char literal: `'.'`, `'('`, `' '`.
            cur.bump();
            let closed = cur.eat('\'');
            out.push(Tok {
                kind: if closed {
                    TokKind::Char
                } else {
                    TokKind::Punct
                },
                text: c.to_string(),
                line,
            });
        }
        None => out.push(Tok {
            kind: TokKind::Punct,
            text: "'".to_string(),
            line,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(
            kinds("foo.bar()"),
            vec![
                (TokKind::Ident, "foo".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "bar".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Punct, ")".into()),
            ]
        );
    }

    #[test]
    fn strings_swallow_method_calls() {
        let toks = lex(r#"let s = ".unwrap()"; s.len()"#);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == ".unwrap()"));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn escaped_quote_does_not_close() {
        let toks = kinds(r#""a\"b" x"#);
        assert_eq!(
            toks,
            vec![
                (TokKind::Str, "a\\\"b".into()),
                (TokKind::Ident, "x".into())
            ]
        );
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r###"r#"has "quote" inside"# y"###);
        assert_eq!(
            toks,
            vec![
                (TokKind::Str, "has \"quote\" inside".into()),
                (TokKind::Ident, "y".into())
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* x /* y */ z */ b");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "a".into()),
                (TokKind::Comment, " x /* y */ z ".into()),
                (TokKind::Ident, "b".into()),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("&'a str; 'x'; '\\n'; 'static");
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokKind::Char, "x".into())));
        assert!(toks.contains(&(TokKind::Char, "\\n".into())));
        assert!(toks.contains(&(TokKind::Lifetime, "static".into())));
    }

    #[test]
    fn raw_ident_is_ident() {
        assert_eq!(kinds("r#match"), vec![(TokKind::Ident, "match".into())]);
    }

    #[test]
    fn line_numbers_cross_strings_and_comments() {
        let toks = lex("a\n\"x\ny\"\n/* c\nc */\nb");
        let a = toks.iter().find(|t| t.is_ident("a")).map(|t| t.line);
        let b = toks.iter().find(|t| t.is_ident("b")).map(|t| t.line);
        assert_eq!(a, Some(1));
        assert_eq!(b, Some(6));
    }

    #[test]
    fn numbers_including_floats_and_ranges() {
        let toks = kinds("1.5 + 0x1f + 1..n");
        assert!(toks.contains(&(TokKind::Num, "1.5".into())));
        assert!(toks.contains(&(TokKind::Num, "0x1f".into())));
        assert!(toks.contains(&(TokKind::Num, "1".into())));
        assert!(toks.contains(&(TokKind::Ident, "n".into())));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* open", "r##\"open", "'", "b'", "1.", "r#"] {
            let _ = lex(src);
        }
    }
}
