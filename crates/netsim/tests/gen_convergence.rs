//! Full-convergence properties on generated internet-scale topologies:
//! the sharded message plane must be byte-identical to the sequential
//! one, and every converged route must respect Gao-Rexford export
//! legality (no valleys, no multi-peer hops).

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use netdiag_netsim::Sim;
use netdiag_topology::gen::{generate, GenConfig};
use netdiag_topology::PeerKind;

/// Sequential vs. parallel-IGP + sharded-BGP convergence of the same
/// 200-AS generated internet. "Same fixed point" is not enough: the
/// merge logic in `Bgp::run_sharded` promises the *exact* state the
/// sequential run produces, so the full Loc-RIB of every router —
/// paths, egresses, learned-from sessions, local-prefs — and the total
/// message count must match field for field.
#[test]
fn sharded_convergence_is_byte_identical_to_sequential() {
    let cfg = GenConfig::new(200, 7);
    let topology = Arc::new(generate(&cfg).unwrap().topology);

    let mut seq = Sim::new(Arc::clone(&topology));
    seq.converge_all();

    let mut par = Sim::new_parallel(Arc::clone(&topology), 3);
    par.converge_all_sharded(3);

    assert_eq!(
        seq.bgp_messages(),
        par.bgp_messages(),
        "sharding must not create or suppress messages"
    );
    for r in topology.routers() {
        let a: Vec<_> = seq.bgp().loc_rib(r.id).collect();
        let b: Vec<_> = par.bgp().loc_rib(r.id).collect();
        assert_eq!(a, b, "Loc-RIB of router {:?} diverged", r.id);
    }
}

/// Every AS path selected anywhere in a converged 200-AS generated
/// internet must be valley-free: read in propagation order (origin
/// toward the local AS), the relationship sequence is uphill
/// (customer→provider) edges, then at most one peer edge, then
/// downhill (provider→customer) edges. A violation means the
/// generator wired a relationship the Gao-Rexford export policy
/// could never have propagated over — i.e. the graph and the policy
/// engine disagree about the business topology.
#[test]
fn converged_routes_are_valley_free() {
    let cfg = GenConfig::new(200, 3);
    let topology = Arc::new(generate(&cfg).unwrap().topology);
    let mut sim = Sim::new(Arc::clone(&topology));
    sim.converge_all();

    let mut checked = 0u64;
    for r in topology.routers() {
        let local = topology.as_of_router(r.id);
        for (prefix, route) in sim.bgp().loc_rib(r.id) {
            // Propagation order: origin (path back) ... neighbor (path
            // front), then the local AS.
            let mut chain: Vec<_> = route.as_path.as_slice().to_vec();
            chain.reverse();
            chain.push(local);
            chain.dedup(); // prepending repeats an AS; the hop is one edge

            // uphill* peer? downhill*
            let mut phase = 0u8; // 0 = climbing, 1 = crossed a peer, 2 = descending
            for hop in chain.windows(2) {
                let rel = topology
                    .relationship(hop[0], hop[1])
                    .unwrap_or_else(|| panic!("{prefix}: path hops {:?} are not neighbors", hop));
                phase = match (phase, rel) {
                    (0, PeerKind::Provider) => 0,
                    (0, PeerKind::Peer) => 1,
                    (_, PeerKind::Customer) => 2,
                    (p, r) => panic!(
                        "{prefix}: valley at {:?} ({r:?} edge in phase {p}, path {:?})",
                        hop, route.as_path
                    ),
                };
                checked += 1;
            }
        }
    }
    assert!(
        checked > 10_000,
        "suspiciously few edges checked: {checked}"
    );
}
