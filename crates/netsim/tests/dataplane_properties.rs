//! Property-based tests of the data plane on randomized internets:
//! ECMP consistency, Paris-traceroute completeness, and forward/flow
//! agreement.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use netdiag_netsim::{ForwardOutcome, SensorSet, Sim};
use netdiag_topology::builders::{build_internet, InternetConfig};

fn world(seed: u64) -> (Sim, SensorSet) {
    let net = build_internet(&InternetConfig::small(seed));
    let topology = Arc::new(net.topology.clone());
    let spec: Vec<_> = net.stubs[..4]
        .iter()
        .map(|s| (s.as_id, s.routers[0]))
        .collect();
    let sensors = SensorSet::place(&topology, &spec);
    let mut sim = Sim::new(topology);
    sensors.register(&mut sim);
    sim.converge_for(&sensors.as_ids());
    (sim, sensors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-flow forwarding is deterministic, always delivers on healthy
    /// networks, and every flow's path is among the Paris-enumerated set.
    #[test]
    fn flows_deliver_and_match_all_paths(seed in 0u64..300, flow in 0u64..1000) {
        let (sim, sensors) = world(seed);
        for src in sensors.sensors() {
            for dst in sensors.sensors() {
                if src.id == dst.id {
                    continue;
                }
                let p1 = sim.forward_flow(src.router, dst.addr, flow);
                let p2 = sim.forward_flow(src.router, dst.addr, flow);
                prop_assert_eq!(&p1, &p2, "per-flow determinism");
                prop_assert_eq!(p1.outcome, ForwardOutcome::Delivered);
                let all = sim.all_paths(src.router, dst.addr, 64);
                prop_assert!(
                    all.iter().any(|p| p.hops == p1.hops),
                    "flow path must be Paris-enumerable"
                );
                // The deterministic single path is enumerable too.
                let det = sim.forward(src.router, dst.addr);
                prop_assert!(all.iter().any(|p| p.hops == det.hops));
            }
        }
    }

    /// Paris enumeration returns distinct delivered paths of equal
    /// AS-level route (ECMP is intra-domain only).
    #[test]
    fn all_paths_distinct_and_consistent(seed in 0u64..300) {
        let (sim, sensors) = world(seed);
        let topology = sim.topology();
        for src in sensors.sensors() {
            for dst in sensors.sensors() {
                if src.id == dst.id {
                    continue;
                }
                let all = sim.all_paths(src.router, dst.addr, 64);
                prop_assert!(!all.is_empty());
                // Distinct hop sequences.
                let mut seen = BTreeSet::new();
                for p in &all {
                    prop_assert_eq!(p.outcome, ForwardOutcome::Delivered);
                    let key: Vec<_> = p.hops.iter().map(|h| h.router).collect();
                    prop_assert!(seen.insert(key), "duplicate ECMP path");
                }
                // Same AS-level sequence on every variant.
                let as_seq = |p: &netdiag_netsim::DataPath| {
                    let mut seq = Vec::new();
                    for h in &p.hops {
                        let a = topology.as_of_router(h.router);
                        if seq.last() != Some(&a) {
                            seq.push(a);
                        }
                    }
                    seq
                };
                let first = as_seq(&all[0]);
                for p in &all[1..] {
                    prop_assert_eq!(as_seq(p), first.clone(), "ECMP must stay intra-AS");
                }
            }
        }
    }
}
