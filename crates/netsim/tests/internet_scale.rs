//! Scale smoke test on the paper's full 165-AS topology.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use netdiag_netsim::{probe_mesh, SensorSet, Sim};
use netdiag_topology::builders::{build_internet, InternetConfig};

#[test]
fn full_internet_converges_and_probes() {
    let t0 = Instant::now();
    let net = build_internet(&InternetConfig::default());
    let topology = Arc::new(net.topology.clone());
    let mut sim = Sim::new(Arc::clone(&topology));

    // 10 sensors in the first 10 stub ASes.
    let spec: Vec<_> = net.stubs[..10]
        .iter()
        .map(|s| (s.as_id, s.routers[0]))
        .collect();
    let sensors = SensorSet::place(&topology, &spec);
    sensors.register(&mut sim);
    let t1 = Instant::now();
    sim.converge_for(&sensors.as_ids());
    let t2 = Instant::now();

    let mesh = probe_mesh(&sim, &sensors, &BTreeSet::new());
    assert_eq!(mesh.traceroutes.len(), 90);
    assert_eq!(mesh.failed_count(), 0, "healthy network: all paths work");
    let t3 = Instant::now();

    // Fail a probed inter-domain link and reconverge.
    let link = mesh.traceroutes[0].links()[1];
    let mut broken = sim.clone();
    broken.fail_link(link);
    let t4 = Instant::now();
    let mesh2 = probe_mesh(&broken, &sensors, &BTreeSet::new());
    eprintln!(
        "build={:?} converge={:?} mesh={:?} fail+reconverge={:?} failed_paths={}",
        t1 - t0,
        t2 - t1,
        t3 - t2,
        t4 - t3,
        mesh2.failed_count()
    );
}

#[test]
fn convergence_message_counts_are_sane() {
    let net = build_internet(&InternetConfig::default());
    let topology = Arc::new(net.topology.clone());
    let mut sim = Sim::new(Arc::clone(&topology));
    let spec: Vec<_> = net.stubs[..10]
        .iter()
        .map(|s| (s.as_id, s.routers[0]))
        .collect();
    let sensors = SensorSet::place(&topology, &spec);
    sensors.register(&mut sim);
    sim.converge_for(&sensors.as_ids());
    let initial = sim.bgp_messages();
    // 10 prefixes over ~2000 sessions: tens of thousands of messages, not
    // millions (no path-exploration blowups).
    assert!(initial > 1_000, "suspiciously quiet: {initial}");
    assert!(initial < 5_000_000, "convergence storm: {initial}");

    // A single failure reconverges with far fewer messages.
    let mesh = probe_mesh(&sim, &sensors, &BTreeSet::new());
    let link = mesh.traceroutes[0].links()[1];
    let mut broken = sim.clone();
    broken.fail_link(link);
    let delta = broken.bgp_messages() - initial;
    assert!(delta < initial, "incremental reconvergence must be cheaper");
}
