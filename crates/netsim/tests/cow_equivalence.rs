//! Copy-on-write equivalence: a cloned `Sim` that shares per-AS IGP and
//! per-router BGP state behind `Arc`s — and a scratch `Sim` rolled back via
//! `snapshot`/`restore` between failure rounds — must be observationally
//! identical to a fully deep-cloned simulator. "Observationally" means the
//! probe mesh, the IGP link-down events, and the observed BGP messages
//! (including withdrawals) match bit for bit.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use netdiag_bgp::ObservedKind;
use netdiag_experiments::bridge::{observations, TruthIpToAs};
use netdiag_experiments::truth::TruthMap;
use netdiag_netsim::{probe_mesh, SensorSet, Sim};
use netdiag_topology::builders::{build_internet, InternetConfig};
use netdiag_topology::LinkId;
use netdiagnoser::{nd_edge, Weights};

fn world(seed: u64) -> (Sim, SensorSet) {
    let net = build_internet(&InternetConfig::small(seed));
    let topology = Arc::new(net.topology.clone());
    let spec: Vec<_> = net.stubs[..4]
        .iter()
        .map(|s| (s.as_id, s.routers[0]))
        .collect();
    let sensors = SensorSet::place(&topology, &spec);
    let mut sim = Sim::new(topology);
    sensors.register(&mut sim);
    sim.converge_for(&sensors.as_ids());
    // Drain convergence chatter so both copies start from the same drained
    // baseline, as the experiment runner does.
    sim.take_observed();
    sim.take_igp_events();
    (sim, sensors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One CoW scratch sim reused across failure rounds (restore between
    /// rounds) reports exactly what a fresh deep clone would.
    #[test]
    fn cow_restore_matches_deep_clone(
        seed in 0u64..200,
        picks in proptest::collection::vec((0usize..1000, 1usize..=2), 1..4),
    ) {
        let (sim, sensors) = world(seed);
        let links: Vec<LinkId> = sim.topology().links().iter().map(|l| l.id).collect();
        let none = BTreeSet::new();

        let mut cow = sim.clone();
        let baseline = cow.snapshot();
        let mut first = true;
        for &(pick, width) in &picks {
            let chosen: Vec<LinkId> = (0..width)
                .map(|i| links[(pick + i * 7) % links.len()])
                .collect();

            let mut deep = sim.deep_clone();
            deep.fail_links(&chosen);

            if !first {
                cow.restore(&baseline);
            }
            first = false;
            cow.fail_links(&chosen);

            let mesh_deep = probe_mesh(&deep, &sensors, &none);
            let mesh_cow = probe_mesh(&cow, &sensors, &none);
            prop_assert_eq!(&mesh_deep, &mesh_cow, "probe meshes diverged");

            let ev_deep = deep.take_igp_events();
            let ev_cow = cow.take_igp_events();
            prop_assert_eq!(ev_deep, ev_cow, "IGP events diverged");

            let obs_deep = deep.take_observed();
            let obs_cow = cow.take_observed();
            let wd = |k: ObservedKind| k == ObservedKind::Withdraw;
            prop_assert_eq!(
                obs_deep.iter().filter(|m| wd(m.kind)).count(),
                obs_cow.iter().filter(|m| wd(m.kind)).count(),
                "withdrawal counts diverged"
            );
            prop_assert_eq!(obs_deep, obs_cow, "observed BGP messages diverged");
        }
    }

    /// The incremental failure path ([`Sim::fail_links`]: delta-SPF +
    /// scoped BGP replay) is byte-identical to the pre-incremental oracle
    /// ([`Sim::fail_links_full`]: full per-AS SPF recompute + whole-AS
    /// refresh) in every observable — probe mesh, IGP events, observed
    /// eBGP stream — and in the diagnosis those observables feed.
    #[test]
    fn incremental_fail_links_matches_full_oracle(
        seed in 0u64..200,
        picks in proptest::collection::vec((0usize..1000, 1usize..=2), 1..4),
    ) {
        let (sim, sensors) = world(seed);
        let topology = sim.topology_arc();
        let links: Vec<LinkId> = sim.topology().links().iter().map(|l| l.id).collect();
        let none = BTreeSet::new();
        let before = probe_mesh(&sim, &sensors, &none);

        for &(pick, width) in &picks {
            let chosen: Vec<LinkId> = (0..width)
                .map(|i| links[(pick + i * 7) % links.len()])
                .collect();

            let mut inc = sim.deep_clone();
            inc.fail_links(&chosen);
            let mut full = sim.deep_clone();
            full.fail_links_full(&chosen);

            let mesh_inc = probe_mesh(&inc, &sensors, &none);
            let mesh_full = probe_mesh(&full, &sensors, &none);
            prop_assert_eq!(&mesh_inc, &mesh_full, "probe meshes diverged");
            prop_assert_eq!(
                inc.take_igp_events(),
                full.take_igp_events(),
                "IGP events diverged"
            );
            prop_assert_eq!(
                inc.take_observed(),
                full.take_observed(),
                "observed BGP messages diverged"
            );

            // Same observables must mean the same diagnosis; run the
            // diagnoser on both legs to hold the full pipeline to it.
            let ip2as = TruthIpToAs { topology: &topology };
            let d_inc = nd_edge(&observations(&sensors, &before, &mesh_inc), &ip2as, Weights::default());
            let d_full = nd_edge(&observations(&sensors, &before, &mesh_full), &ip2as, Weights::default());
            let truth = TruthMap::build(&topology, &before, &mesh_inc);
            prop_assert_eq!(
                truth.hypothesis_links(&d_inc),
                truth.hypothesis_links(&d_full),
                "diagnosis hypotheses diverged"
            );
        }
    }

    /// Incremental reconvergence lands on the same converged state as a
    /// simulator built from scratch on the already-degraded topology
    /// (links failed before any route exists, then `converge_all`): same
    /// forwarding over every sensor pair and same diagnosis hypotheses.
    /// This rules out stale leftover routes that a scoped replay could
    /// forget to withdraw.
    #[test]
    fn incremental_matches_from_scratch_converge_all(
        seed in 0u64..200,
        picks in proptest::collection::vec(0usize..1000, 1..=3),
    ) {
        let net = build_internet(&InternetConfig::small(seed));
        let topology = Arc::new(net.topology.clone());
        let spec: Vec<_> = net.stubs[..4]
            .iter()
            .map(|s| (s.as_id, s.routers[0]))
            .collect();
        let sensors = SensorSet::place(&topology, &spec);

        let mut sim = Sim::new(Arc::clone(&topology));
        sensors.register(&mut sim);
        sim.converge_all();
        sim.take_observed();
        sim.take_igp_events();

        let links: Vec<LinkId> = sim.topology().links().iter().map(|l| l.id).collect();
        let chosen: Vec<LinkId> = picks.iter().map(|&p| links[p % links.len()]).collect();
        let none = BTreeSet::new();
        let before = probe_mesh(&sim, &sensors, &none);

        let mut inc = sim.clone();
        inc.fail_links(&chosen);
        let mesh_inc = probe_mesh(&inc, &sensors, &none);

        let mut scratch = Sim::new(Arc::clone(&topology));
        sensors.register(&mut scratch);
        scratch.fail_links(&chosen);
        scratch.take_observed();
        scratch.take_igp_events();
        scratch.converge_all();
        let mesh_scr = probe_mesh(&scratch, &sensors, &none);

        prop_assert_eq!(
            &mesh_inc,
            &mesh_scr,
            "forwarding diverged from scratch-built convergence"
        );

        let ip2as = TruthIpToAs { topology: &topology };
        let d_inc = nd_edge(&observations(&sensors, &before, &mesh_inc), &ip2as, Weights::default());
        let d_scr = nd_edge(&observations(&sensors, &before, &mesh_scr), &ip2as, Weights::default());
        let truth = TruthMap::build(&topology, &before, &mesh_inc);
        prop_assert_eq!(
            truth.hypothesis_links(&d_inc),
            truth.hypothesis_links(&d_scr),
            "diagnosis hypotheses diverged"
        );
    }

    /// Repairing the failed links on the CoW sim (instead of restoring)
    /// also returns it to the healthy baseline's observable state.
    #[test]
    fn restore_returns_to_baseline(seed in 0u64..200, pick in 0usize..1000) {
        let (sim, sensors) = world(seed);
        let links: Vec<LinkId> = sim.topology().links().iter().map(|l| l.id).collect();
        let none = BTreeSet::new();
        let healthy = probe_mesh(&sim, &sensors, &none);

        let mut cow = sim.clone();
        let baseline = cow.snapshot();
        cow.fail_link(links[pick % links.len()]);
        cow.restore(&baseline);
        let back = probe_mesh(&cow, &sensors, &none);
        prop_assert_eq!(&healthy, &back, "restore must undo the failure");
        prop_assert!(cow.take_igp_events().is_empty());
        prop_assert!(cow.take_observed().is_empty());
    }
}
