//! Copy-on-write equivalence: a cloned `Sim` that shares per-AS IGP and
//! per-router BGP state behind `Arc`s — and a scratch `Sim` rolled back via
//! `snapshot`/`restore` between failure rounds — must be observationally
//! identical to a fully deep-cloned simulator. "Observationally" means the
//! probe mesh, the IGP link-down events, and the observed BGP messages
//! (including withdrawals) match bit for bit.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use netdiag_bgp::ObservedKind;
use netdiag_netsim::{probe_mesh, SensorSet, Sim};
use netdiag_topology::builders::{build_internet, InternetConfig};
use netdiag_topology::LinkId;

fn world(seed: u64) -> (Sim, SensorSet) {
    let net = build_internet(&InternetConfig::small(seed));
    let topology = Arc::new(net.topology.clone());
    let spec: Vec<_> = net.stubs[..4]
        .iter()
        .map(|s| (s.as_id, s.routers[0]))
        .collect();
    let sensors = SensorSet::place(&topology, &spec);
    let mut sim = Sim::new(topology);
    sensors.register(&mut sim);
    sim.converge_for(&sensors.as_ids());
    // Drain convergence chatter so both copies start from the same drained
    // baseline, as the experiment runner does.
    sim.take_observed();
    sim.take_igp_events();
    (sim, sensors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One CoW scratch sim reused across failure rounds (restore between
    /// rounds) reports exactly what a fresh deep clone would.
    #[test]
    fn cow_restore_matches_deep_clone(
        seed in 0u64..200,
        picks in proptest::collection::vec((0usize..1000, 1usize..=2), 1..4),
    ) {
        let (sim, sensors) = world(seed);
        let links: Vec<LinkId> = sim.topology().links().iter().map(|l| l.id).collect();
        let none = BTreeSet::new();

        let mut cow = sim.clone();
        let baseline = cow.snapshot();
        let mut first = true;
        for &(pick, width) in &picks {
            let chosen: Vec<LinkId> = (0..width)
                .map(|i| links[(pick + i * 7) % links.len()])
                .collect();

            let mut deep = sim.deep_clone();
            deep.fail_links(&chosen);

            if !first {
                cow.restore(&baseline);
            }
            first = false;
            cow.fail_links(&chosen);

            let mesh_deep = probe_mesh(&deep, &sensors, &none);
            let mesh_cow = probe_mesh(&cow, &sensors, &none);
            prop_assert_eq!(&mesh_deep, &mesh_cow, "probe meshes diverged");

            let ev_deep = deep.take_igp_events();
            let ev_cow = cow.take_igp_events();
            prop_assert_eq!(ev_deep, ev_cow, "IGP events diverged");

            let obs_deep = deep.take_observed();
            let obs_cow = cow.take_observed();
            let wd = |k: ObservedKind| k == ObservedKind::Withdraw;
            prop_assert_eq!(
                obs_deep.iter().filter(|m| wd(m.kind)).count(),
                obs_cow.iter().filter(|m| wd(m.kind)).count(),
                "withdrawal counts diverged"
            );
            prop_assert_eq!(obs_deep, obs_cow, "observed BGP messages diverged");
        }
    }

    /// Repairing the failed links on the CoW sim (instead of restoring)
    /// also returns it to the healthy baseline's observable state.
    #[test]
    fn restore_returns_to_baseline(seed in 0u64..200, pick in 0usize..1000) {
        let (sim, sensors) = world(seed);
        let links: Vec<LinkId> = sim.topology().links().iter().map(|l| l.id).collect();
        let none = BTreeSet::new();
        let healthy = probe_mesh(&sim, &sensors, &none);

        let mut cow = sim.clone();
        let baseline = cow.snapshot();
        cow.fail_link(links[pick % links.len()]);
        cow.restore(&baseline);
        let back = probe_mesh(&cow, &sensors, &none);
        prop_assert_eq!(&healthy, &back, "restore must undo the failure");
        prop_assert!(cow.take_igp_events().is_empty());
        prop_assert!(cow.take_observed().is_empty());
    }
}
