//! Asymmetric IGP metrics: forward and reverse paths differ, traceroutes
//! see different hop sequences per direction, and diagnosis still works
//! (the diagnoser's directed-edge model was built for exactly this).

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::collections::BTreeSet;
use std::sync::Arc;

use netdiag_netsim::{probe_mesh, SensorSet, Sim};
use netdiag_topology::text::parse_topology;
use netdiag_topology::SensorId;

/// Transit AS whose two internal routes have opposite preferred
/// directions: t1->t2 prefers the top path, t2->t1 prefers the bottom.
const NET: &str = "\
as T tier2
as S1 stub
as S2 stub
router T t1
router T top
router T bottom
router T t2
router S1 a1
router S2 b1
link t1 top 1 100
link top t2 1 100
link t1 bottom 100 1
link bottom t2 100 1
provider t1 a1
provider t2 b1
";

#[test]
fn asymmetric_weights_produce_asymmetric_paths() {
    let t = Arc::new(parse_topology(NET).unwrap());
    let mut sim = Sim::new(Arc::clone(&t));
    let s1 = t.ases()[1].id;
    let s2 = t.ases()[2].id;
    let sensors = SensorSet::place(
        &t,
        &[
            (s1, t.as_node(s1).routers[0]),
            (s2, t.as_node(s2).routers[0]),
        ],
    );
    sensors.register(&mut sim);
    sim.converge_all();
    let mesh = probe_mesh(&sim, &sensors, &BTreeSet::new());
    assert_eq!(mesh.failed_count(), 0);

    let fwd = mesh.between(SensorId(0), SensorId(1)).unwrap();
    let rev = mesh.between(SensorId(1), SensorId(0)).unwrap();
    let fwd_routers: Vec<_> = fwd.hops.iter().filter_map(|h| h.router()).collect();
    let rev_routers: Vec<_> = rev.hops.iter().filter_map(|h| h.router()).collect();
    // Forward goes via `top` (index 1), reverse via `bottom` (index 2).
    let top = t.as_node(t.ases()[0].id).routers[1];
    let bottom = t.as_node(t.ases()[0].id).routers[2];
    assert!(fwd_routers.contains(&top), "{fwd_routers:?}");
    assert!(!fwd_routers.contains(&bottom));
    assert!(rev_routers.contains(&bottom), "{rev_routers:?}");
    assert!(!rev_routers.contains(&top));
}

#[test]
fn diagnosis_handles_asymmetric_failure() {
    // Fail the top path's first link: only the forward direction breaks...
    // IGP reroutes it over the bottom (cost 200 forward) — still reachable,
    // so instead fail BOTH top links to keep it simple? No: failing one
    // link reroutes (weights allow it). Use the reroute set instead: the
    // pair keeps working, and ND-edge must pin the abandoned links.
    use netdiag_experiments::bridge::{observations, TruthIpToAs};
    use netdiag_experiments::truth::TruthMap;
    use netdiagnoser::{nd_edge, Weights};

    let t = Arc::new(parse_topology(NET).unwrap());
    let mut sim = Sim::new(Arc::clone(&t));
    let s1 = t.ases()[1].id;
    let s2 = t.ases()[2].id;
    let sensors = SensorSet::place(
        &t,
        &[
            (s1, t.as_node(s1).routers[0]),
            (s2, t.as_node(s2).routers[0]),
        ],
    );
    sensors.register(&mut sim);
    sim.converge_all();
    let before = probe_mesh(&sim, &sensors, &BTreeSet::new());

    // Cut S2's uplink (non-recoverable): both directions break.
    let b1 = t.as_node(s2).routers[0];
    let uplink = t.router(b1).links[0];
    let mut broken = sim.clone();
    broken.fail_link(uplink);
    let after = probe_mesh(&broken, &sensors, &BTreeSet::new());
    assert_eq!(after.failed_count(), 2);

    let obs = observations(&sensors, &before, &after);
    let ip2as = TruthIpToAs { topology: &t };
    let d = nd_edge(&obs, &ip2as, Weights::default());
    let truth = TruthMap::build(&t, &before, &after);
    let hyp = truth.hypothesis_links(&d);
    assert!(hyp.contains(&uplink), "{hyp:?}");
}
