//! Whole-network routing simulator for the NetDiagnoser reproduction —
//! the stand-in for the paper's use of C-BGP.
//!
//! [`Sim`] bundles a static [`netdiag_topology::Topology`] with dynamic
//! link state, converged IGP and BGP, and provides:
//!
//! * a hop-by-hop **data plane** ([`Sim::forward`]) resolving BGP routes
//!   recursively through IGP next hops;
//! * **traceroute** ([`traceroute`]) between sensors, honoring ASes that
//!   block probes (hops become stars);
//! * **sensor** placement and full-mesh probing ([`SensorSet`],
//!   [`probe_mesh`]);
//! * **failure injection** ([`Failure`], [`apply_failure`]): multi-link
//!   failures, router failures, and BGP export-filter misconfigurations,
//!   each followed by deterministic reconvergence;
//! * a **Looking Glass** service ([`looking_glass_query`]) answering
//!   AS-path queries from any AS's converged BGP state;
//! * the **AS-X feeds** the diagnoser consumes: observed eBGP messages
//!   ([`Sim::take_observed`]) and IGP link-down events
//!   ([`Sim::take_igp_events`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod dataplane;
mod failures;
mod looking_glass;
mod sensors;
mod sim;
mod traceroute;

pub use dataplane::{DataPath, ForwardOutcome, PathHop};
pub use failures::{apply_failure, apply_failure_full, Failure};
pub use looking_glass::looking_glass_query;
pub use sensors::{probe_mesh, ProbeMesh, Sensor, SensorSet};
pub use sim::{IgpLinkDown, Sim, SimSnapshot};
pub use traceroute::{paris_traceroute, traceroute, ProbeHop, Traceroute};
