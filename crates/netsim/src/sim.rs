//! The simulator bundle: topology + link state + IGP + BGP, with failure
//! application and deterministic reconvergence.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use netdiag_bgp::{Bgp, Ctx, ExportDeny, ObservedMsg};
use netdiag_igp::{Igp, LinkState, SpfDelta};
use netdiag_obs::{names, RecorderHandle};
use netdiag_topology::{AsId, LinkId, LinkKind, RouterId, Topology};

/// An IGP "link down" event, as seen by the operator of the link's AS.
///
/// The paper's ND-bgpigp consumes these for links inside AS-X.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IgpLinkDown {
    /// The failed intra-domain link.
    pub link: LinkId,
    /// The AS that owns it.
    pub as_id: AsId,
}

/// All mutable routing state of a [`Sim`], captured at one instant.
///
/// Taking a snapshot is cheap: per-AS IGP tables and per-router BGP RIBs
/// live behind `Arc`s, so the capture is O(#ASes + #routers) pointer bumps.
/// [`Sim::restore`] rolls the simulator back to the captured state, which
/// lets one scratch simulator serve many failure experiments in a row
/// instead of cloning a fresh simulator per experiment.
#[derive(Clone)]
pub struct SimSnapshot {
    links: LinkState,
    igp: Igp,
    bgp: Bgp,
    igp_events: Vec<IgpLinkDown>,
    messages: u64,
}

/// A runnable network: static topology plus all dynamic routing state.
///
/// `Sim` is `Clone`, so a converged healthy network can be snapshotted once
/// and each failure experiment applied to a fresh copy. Cloning is cheap
/// (copy-on-write: shared state is only copied for the ASes/routers a
/// mutation actually touches); [`Sim::deep_clone`] forces the full copy the
/// seed implementation used to pay per clone.
///
/// ```
/// use std::sync::Arc;
/// use netdiag_netsim::Sim;
/// use netdiag_topology::builders::{build_internet, InternetConfig};
///
/// let net = build_internet(&InternetConfig::small(1));
/// let mut sim = Sim::new(Arc::new(net.topology.clone()));
/// sim.converge_all();
/// // Snapshot, break a link in the copy, and compare.
/// let mut broken = sim.clone();
/// broken.fail_link(net.topology.links()[0].id);
/// assert!(sim.links().is_up(net.topology.links()[0].id));
/// assert!(!broken.links().is_up(net.topology.links()[0].id));
/// ```
#[derive(Clone)]
pub struct Sim {
    topology: Arc<Topology>,
    links: LinkState,
    igp: Igp,
    bgp: Bgp,
    /// Registered end hosts (sensor address -> attach router).
    hosts: HashMap<Ipv4Addr, RouterId>,
    /// IGP link-down events since the last take.
    igp_events: Vec<IgpLinkDown>,
    /// Cumulative BGP message count across all convergences.
    messages: u64,
    /// Instrumentation sink, shared by clones (`igp.*`/`bgp.*`/`probe.*`).
    recorder: RecorderHandle,
}

impl Sim {
    /// Creates a simulator with all links up, IGP converged, and an empty
    /// BGP — call [`Sim::converge_for`] or [`Sim::converge_all`] next.
    pub fn new(topology: Arc<Topology>) -> Self {
        Self::with_recorder(topology, RecorderHandle::noop())
    }

    /// [`Sim::new`] with the initial per-AS SPF runs fanned over `threads`
    /// scoped workers ([`Igp::compute_parallel`]). Byte-identical to
    /// [`Sim::new`] — each AS's IGP tables depend only on the immutable
    /// topology and link state — but without instrumentation: the SPF
    /// counters are defined by the sequential run order, so a recorder
    /// cannot be attached to the parallel path.
    pub fn new_parallel(topology: Arc<Topology>, threads: usize) -> Self {
        let links = LinkState::all_up(&topology);
        let igp = Igp::compute_parallel(&topology, &links, threads);
        let mut bgp = Bgp::new(&topology);
        bgp.recompute_liveness(Ctx {
            topology: &topology,
            igp: &igp,
            links: &links,
        });
        Sim {
            topology,
            links,
            igp,
            bgp,
            hosts: HashMap::new(),
            igp_events: Vec::new(),
            messages: 0,
            recorder: RecorderHandle::noop(),
        }
    }

    /// [`Sim::new`] with an instrumentation sink: all IGP/BGP/probe work of
    /// this simulator (including the initial SPF and every clone taken from
    /// it) reports to `recorder`.
    pub fn with_recorder(topology: Arc<Topology>, recorder: RecorderHandle) -> Self {
        let links = LinkState::all_up(&topology);
        let igp = Igp::compute_recorded(&topology, &links, &recorder);
        let mut bgp = Bgp::new(&topology);
        bgp.set_recorder(recorder.clone());
        bgp.recompute_liveness(Ctx {
            topology: &topology,
            igp: &igp,
            links: &links,
        });
        Sim {
            topology,
            links,
            igp,
            bgp,
            hosts: HashMap::new(),
            igp_events: Vec::new(),
            messages: 0,
            recorder,
        }
    }

    /// The simulator's instrumentation sink.
    pub fn recorder(&self) -> &RecorderHandle {
        &self.recorder
    }

    /// Captures all mutable routing state (cheap: Arc bumps, no table
    /// copies). Restore with [`Sim::restore`].
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            links: self.links.clone(),
            igp: self.igp.clone(),
            bgp: self.bgp.clone(),
            igp_events: self.igp_events.clone(),
            messages: self.messages,
        }
    }

    /// Rolls all mutable routing state back to `snap`, undoing every
    /// failure, repair and misconfiguration applied since the capture.
    /// Topology, registered hosts and the recorder are immutable across
    /// failure experiments and stay as they are.
    pub fn restore(&mut self, snap: &SimSnapshot) {
        self.links = snap.links.clone();
        self.igp = snap.igp.clone();
        self.bgp = snap.bgp.clone();
        self.igp_events = snap.igp_events.clone();
        self.messages = snap.messages;
    }

    /// A clone with every shared table forced into unique ownership — the
    /// full deep copy the pre-CoW implementation paid for every clone.
    /// Counted under `sim.snapshot.deep_copies`; kept for benchmarks and
    /// equivalence tests.
    pub fn deep_clone(&self) -> Self {
        let mut copy = self.clone();
        copy.igp.unshare_all();
        copy.bgp.unshare_all();
        if self.recorder.enabled() {
            self.recorder.add(names::SIM_SNAPSHOT_DEEP_COPIES, 1);
        }
        copy
    }

    /// Originates the prefixes of the given ASes and converges.
    ///
    /// Routing toward a prefix is independent of other prefixes in this
    /// model, so experiments only need the sensor ASes' prefixes.
    pub fn converge_for(&mut self, ases: &[AsId]) {
        let ctx = Ctx {
            topology: &self.topology,
            igp: &self.igp,
            links: &self.links,
        };
        for &a in ases {
            self.bgp.originate_as(ctx, a);
        }
        self.messages += self.bgp.run(ctx).messages;
    }

    /// Originates every AS's prefix and converges.
    pub fn converge_all(&mut self) {
        let ids: Vec<AsId> = self.topology.ases().iter().map(|a| a.id).collect();
        self.converge_for(&ids);
    }

    /// [`Sim::converge_all`] with the BGP message plane sharded over a
    /// worker pool. Routing toward one prefix never reads another
    /// prefix's state in this model, so partitioning the prefix space
    /// and converging each shard independently reaches the same fixed
    /// point as the sequential run — asserted byte-identical by the
    /// equivalence tests. Falls back to the sequential path when
    /// `threads <= 1` or when an observer / tracer is attached (their
    /// event streams are defined by the sequential delivery order).
    pub fn converge_all_sharded(&mut self, threads: usize) {
        if threads <= 1 || !self.bgp.can_shard() {
            self.converge_all();
            return;
        }
        let ctx = Ctx {
            topology: &self.topology,
            igp: &self.igp,
            links: &self.links,
        };
        for a in self.topology.ases() {
            self.bgp.originate_as(ctx, a.id);
        }
        self.messages += self.bgp.run_sharded(ctx, threads).messages;
    }

    /// Designates the observer AS (AS-X) whose received eBGP messages are
    /// recorded.
    pub fn set_observer(&mut self, as_id: AsId) {
        self.bgp.set_observer(as_id);
    }

    /// Drains eBGP messages observed at the observer AS.
    pub fn take_observed(&mut self) -> Vec<ObservedMsg> {
        self.bgp.take_observed()
    }

    /// Drains recorded IGP link-down events (all ASes; filter by
    /// [`IgpLinkDown::as_id`] for the observer's view).
    pub fn take_igp_events(&mut self) -> Vec<IgpLinkDown> {
        std::mem::take(&mut self.igp_events)
    }

    /// Registers an end host (e.g. a sensor) attached to a router.
    pub fn register_host(&mut self, addr: Ipv4Addr, attach: RouterId) {
        self.hosts.insert(addr, attach);
    }

    /// The attach router of a registered host address.
    pub fn host_router(&self, addr: Ipv4Addr) -> Option<RouterId> {
        self.hosts.get(&addr).copied()
    }

    /// Fails a set of links simultaneously and reconverges *incrementally*:
    /// delta-SPF recomputes only the cone of routers whose shortest-path
    /// DAG used a failed edge, and BGP replays the decision process only
    /// for the sessions/routers the delta actually touched.
    ///
    /// Byte-identical to the full path ([`Sim::fail_links_full`]) in every
    /// observable: RIBs, forwarding, observed eBGP stream, IGP events.
    /// The cow_equivalence proptests hold the two paths against each
    /// other.
    pub fn fail_links(&mut self, failed: &[LinkId]) {
        // Phase 1: link state + failure events, same order as the full
        // path.
        let mut affected_ases = Vec::new();
        let mut downed = Vec::new();
        for &l in failed {
            if !self.links.set_down(l) {
                continue; // already down
            }
            downed.push(l);
            let link = self.topology.link(l);
            self.recorder.event(names::EV_SIM_LINK_FAIL, || {
                netdiag_obs::EventPayload::new()
                    .field("link", l.index())
                    .field("kind", kind_str(link.kind))
                    .field("a", link.a.index())
                    .field("b", link.b.index())
            });
            if link.kind == LinkKind::Intra {
                let as_id = self.topology.as_of_router(link.a);
                self.igp_events.push(IgpLinkDown { link: l, as_id });
                if !affected_ases.contains(&as_id) {
                    affected_ases.push(as_id);
                }
            }
        }
        // Phase 2: delta-SPF per affected AS. A delta that recomputes
        // nothing leaves the shared tables untouched, so copy-on-write
        // breaks are counted only when work actually happened.
        let mut deltas: Vec<(AsId, SpfDelta)> = Vec::with_capacity(affected_ases.len());
        for &a in &affected_ases {
            let was_shared = self.igp.is_shared(a);
            let delta = self.igp.delta_fail_links_recorded(
                &self.topology,
                a,
                &self.links,
                &downed,
                &self.recorder,
            );
            if was_shared && delta.recomputed > 0 && self.recorder.enabled() {
                self.recorder.add(names::SIM_SNAPSHOT_COW_BREAKS, 1);
            }
            deltas.push((a, delta));
        }
        // Phase 3: degrade the session-liveness cache *before* any BGP
        // replay, so every liveness read during the replay sees the
        // post-failure truth (failures only take sessions down).
        let ctx = Ctx {
            topology: &self.topology,
            igp: &self.igp,
            links: &self.links,
        };
        if !self.bgp.has_liveness() {
            self.bgp.recompute_liveness(ctx);
        }
        self.bgp.mark_links_down(&downed);
        for (_, d) in &deltas {
            self.bgp.mark_pairs_down(&d.lost_pairs);
        }
        // Phase 4: scoped BGP replay in the original link order; an AS's
        // scoped refresh runs once, at its first failed intra link.
        let mut refreshed: Vec<AsId> = Vec::new();
        for &l in &downed {
            let link = self.topology.link(l);
            match link.kind {
                LinkKind::Inter => self.bgp.fail_ebgp_link(ctx, l),
                LinkKind::Intra => {
                    let as_id = self.topology.as_of_router(link.a);
                    if !refreshed.contains(&as_id) {
                        refreshed.push(as_id);
                        let delta = deltas
                            .iter()
                            .find(|(a, _)| *a == as_id)
                            .map(|(_, d)| d)
                            .expect("every failed intra link's AS has a delta");
                        self.bgp.refresh_as_scoped(ctx, delta);
                    }
                }
            }
        }
        self.messages += self.bgp.run(ctx).messages;
    }

    /// The pre-incremental failure path, kept as the behavioral oracle:
    /// full per-AS SPF recompute and whole-AS BGP refresh for every
    /// failed link. [`Sim::fail_links`] must produce byte-identical
    /// observables; equivalence proptests compare the two.
    pub fn fail_links_full(&mut self, failed: &[LinkId]) {
        self.bgp.invalidate_liveness();
        let mut affected_ases = Vec::new();
        for &l in failed {
            if !self.links.set_down(l) {
                continue; // already down
            }
            let link = self.topology.link(l);
            self.recorder.event(names::EV_SIM_LINK_FAIL, || {
                netdiag_obs::EventPayload::new()
                    .field("link", l.index())
                    .field("kind", kind_str(link.kind))
                    .field("a", link.a.index())
                    .field("b", link.b.index())
            });
            if link.kind == LinkKind::Intra {
                let as_id = self.topology.as_of_router(link.a);
                self.igp_events.push(IgpLinkDown { link: l, as_id });
                if !affected_ases.contains(&as_id) {
                    affected_ases.push(as_id);
                }
            }
        }
        if self.recorder.enabled() {
            let breaks = affected_ases
                .iter()
                .filter(|&&a| self.igp.is_shared(a))
                .count();
            if breaks > 0 {
                self.recorder
                    .add(names::SIM_SNAPSHOT_COW_BREAKS, breaks as u64);
            }
        }
        for &a in &affected_ases {
            self.igp
                .recompute_as_recorded(&self.topology, a, &self.links, &self.recorder);
        }
        let ctx = Ctx {
            topology: &self.topology,
            igp: &self.igp,
            links: &self.links,
        };
        for &l in failed {
            self.bgp.handle_link_down(ctx, l);
        }
        self.messages += self.bgp.run(ctx).messages;
    }

    /// Fails a single link.
    pub fn fail_link(&mut self, l: LinkId) {
        self.fail_links(&[l]);
    }

    /// Repairs a previously-failed link and reconverges: link state, IGP,
    /// then BGP session re-establishment and route refresh. Together with
    /// [`Sim::fail_link`] this models link flaps (§6 of the paper).
    pub fn repair_link(&mut self, l: LinkId) {
        if self.links.set_up(l) {
            return; // was already up
        }
        let link = self.topology.link(l);
        self.recorder.event(names::EV_SIM_LINK_REPAIR, || {
            netdiag_obs::EventPayload::new()
                .field("link", l.index())
                .field("kind", kind_str(link.kind))
                .field("a", link.a.index())
                .field("b", link.b.index())
        });
        if link.kind == LinkKind::Intra {
            let as_id = self.topology.as_of_router(link.a);
            if self.recorder.enabled() && self.igp.is_shared(as_id) {
                self.recorder.add(names::SIM_SNAPSHOT_COW_BREAKS, 1);
            }
            self.igp
                .recompute_as_recorded(&self.topology, as_id, &self.links, &self.recorder);
        }
        let ctx = Ctx {
            topology: &self.topology,
            igp: &self.igp,
            links: &self.links,
        };
        // Repairs can bring sessions back up, which point updates cannot
        // express — rebuild the liveness cache from the ground truth.
        self.bgp.recompute_liveness(ctx);
        self.bgp.handle_link_up(ctx, l);
        self.messages += self.bgp.run(ctx).messages;
    }

    /// Fails a router: all its links go down simultaneously.
    pub fn fail_router(&mut self, r: RouterId) {
        let links = self.topology.router(r).links.clone();
        self.fail_links(&links);
    }

    /// Installs a BGP export-filter misconfiguration and reconverges.
    pub fn misconfigure(&mut self, rules: &[ExportDeny]) {
        let ctx = Ctx {
            topology: &self.topology,
            igp: &self.igp,
            links: &self.links,
        };
        for &rule in rules {
            self.bgp.install_filter(ctx, rule);
        }
        self.messages += self.bgp.run(ctx).messages;
    }

    /// Removes export-filter misconfigurations (the operator's fix) and
    /// reconverges.
    pub fn fix_misconfiguration(&mut self, rules: &[ExportDeny]) {
        let ctx = Ctx {
            topology: &self.topology,
            igp: &self.igp,
            links: &self.links,
        };
        for rule in rules {
            self.bgp.remove_filter(ctx, rule);
        }
        self.messages += self.bgp.run(ctx).messages;
    }

    /// The static topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// A shareable handle to the topology.
    pub fn topology_arc(&self) -> Arc<Topology> {
        Arc::clone(&self.topology)
    }

    /// Current link state.
    pub fn links(&self) -> &LinkState {
        &self.links
    }

    /// Converged IGP state.
    pub fn igp(&self) -> &Igp {
        &self.igp
    }

    /// Converged BGP state.
    pub fn bgp(&self) -> &Bgp {
        &self.bgp
    }

    /// Total BGP messages processed across all convergences so far
    /// (convergence-cost statistics; resets never — compare snapshots).
    pub fn bgp_messages(&self) -> u64 {
        self.messages
    }
}

/// Stable link-kind label used in trace payloads.
fn kind_str(kind: LinkKind) -> &'static str {
    match kind {
        LinkKind::Intra => "intra",
        LinkKind::Inter => "inter",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdiag_topology::{AsKind, LinkRelationship, TopologyBuilder};

    fn line() -> (Arc<Topology>, [RouterId; 3]) {
        // A (a1) -- B (b1) -- C (c1), B provider of nobody: make A-B and
        // B-C provider-customer chains so everything is reachable:
        // A is customer of B, C is customer of B.
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Stub, "A");
        let mid = b.add_as(AsKind::Tier2, "B");
        let c = b.add_as(AsKind::Stub, "C");
        let a1 = b.add_router(a, "a1");
        let b1 = b.add_router(mid, "b1");
        let c1 = b.add_router(c, "c1");
        b.add_inter_link(b1, a1, LinkRelationship::ProviderCustomer);
        b.add_inter_link(b1, c1, LinkRelationship::ProviderCustomer);
        (Arc::new(b.build().unwrap()), [a1, b1, c1])
    }

    #[test]
    fn converge_for_subset() {
        let (t, [a1, _, c1]) = line();
        let mut sim = Sim::new(Arc::clone(&t));
        sim.converge_for(&[AsId(2)]); // only C's prefix
        let c_prefix = t.as_node(AsId(2)).prefix;
        assert!(sim.bgp().best_route(a1, &c_prefix).is_some());
        let a_prefix = t.as_node(AsId(0)).prefix;
        assert!(sim.bgp().best_route(c1, &a_prefix).is_none());
    }

    #[test]
    fn clone_snapshot_isolates_failures() {
        let (t, [a1, b1, _]) = line();
        let mut healthy = Sim::new(Arc::clone(&t));
        healthy.converge_all();
        let mut broken = healthy.clone();
        broken.fail_link(t.link_between(a1, b1).unwrap());
        let a_prefix = t.as_node(AsId(0)).prefix;
        assert!(healthy.bgp().best_route(b1, &a_prefix).is_some());
        assert!(broken.bgp().best_route(b1, &a_prefix).is_none());
    }

    #[test]
    fn igp_events_recorded_for_intra_failures_only() {
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Core, "A");
        let r0 = b.add_router(a, "r0");
        let r1 = b.add_router(a, "r1");
        let r2 = b.add_router(a, "r2");
        b.add_intra_link(r0, r1, 1);
        b.add_intra_link(r1, r2, 1);
        b.add_intra_link(r0, r2, 5);
        let stub = b.add_as(AsKind::Stub, "S");
        let s1 = b.add_router(stub, "s1");
        let inter = b.add_inter_link(r2, s1, LinkRelationship::ProviderCustomer);
        let t = Arc::new(b.build().unwrap());
        let mut sim = Sim::new(Arc::clone(&t));
        sim.converge_all();
        let intra = t.link_between(r0, r1).unwrap();
        sim.fail_links(&[intra, inter]);
        let events = sim.take_igp_events();
        assert_eq!(
            events,
            vec![IgpLinkDown {
                link: intra,
                as_id: a
            }]
        );
        assert!(sim.take_igp_events().is_empty(), "take drains");
    }

    #[test]
    fn fail_router_downs_all_links() {
        let (t, [_, b1, _]) = line();
        let mut sim = Sim::new(Arc::clone(&t));
        sim.converge_all();
        sim.fail_router(b1);
        for &l in &t.router(b1).links {
            assert!(!sim.links().is_up(l));
        }
    }

    #[test]
    fn host_registry() {
        let (t, [a1, _, _]) = line();
        let mut sim = Sim::new(t);
        let addr = Ipv4Addr::new(10, 0, 0, 100);
        sim.register_host(addr, a1);
        assert_eq!(sim.host_router(addr), Some(a1));
        assert_eq!(sim.host_router(Ipv4Addr::new(10, 0, 0, 101)), None);
    }

    #[test]
    fn failing_already_down_link_is_idempotent() {
        let (t, [a1, b1, _]) = line();
        let mut sim = Sim::new(Arc::clone(&t));
        sim.converge_all();
        let l = t.link_between(a1, b1).unwrap();
        sim.fail_link(l);
        let rib_after_first: Vec<_> = sim.bgp().loc_rib(b1).map(|(p, _)| p).collect();
        sim.fail_link(l);
        let rib_after_second: Vec<_> = sim.bgp().loc_rib(b1).map(|(p, _)| p).collect();
        assert_eq!(rib_after_first, rib_after_second);
    }
}

#[cfg(test)]
mod repair_tests {
    use super::*;
    use netdiag_topology::{AsKind, LinkRelationship, TopologyBuilder};

    fn chain() -> (Arc<Topology>, [RouterId; 3], LinkId) {
        let mut b = TopologyBuilder::new();
        let t2 = b.add_as(AsKind::Tier2, "T");
        let s1 = b.add_as(AsKind::Stub, "S1");
        let s2 = b.add_as(AsKind::Stub, "S2");
        let h = b.add_router(t2, "h");
        let s1r = b.add_router(s1, "s1r");
        let s2r = b.add_router(s2, "s2r");
        b.add_inter_link(h, s1r, LinkRelationship::ProviderCustomer);
        let l2 = b.add_inter_link(h, s2r, LinkRelationship::ProviderCustomer);
        (Arc::new(b.build().unwrap()), [h, s1r, s2r], l2)
    }

    #[test]
    fn flap_restores_forwarding() {
        let (t, [_, s1r, s2r], l2) = chain();
        let mut sim = Sim::new(Arc::clone(&t));
        sim.converge_all();
        let dst = t.as_node(AsId(2)).prefix.host(200);
        sim.register_host(dst, s2r);
        assert!(sim.forward(s1r, dst).delivered());
        sim.fail_link(l2);
        assert!(!sim.forward(s1r, dst).delivered());
        sim.repair_link(l2);
        assert!(sim.links().is_up(l2));
        assert!(sim.forward(s1r, dst).delivered(), "flap healed");
    }

    #[test]
    fn repair_of_up_link_is_a_noop() {
        let (t, _, l2) = chain();
        let mut sim = Sim::new(Arc::clone(&t));
        sim.converge_all();
        let before: Vec<_> = sim
            .bgp()
            .loc_rib(RouterId(0))
            .map(|(p, r)| (p, r.clone()))
            .collect();
        sim.repair_link(l2);
        let after: Vec<_> = sim
            .bgp()
            .loc_rib(RouterId(0))
            .map(|(p, r)| (p, r.clone()))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn repair_emits_no_igp_event() {
        let (t, _, l2) = chain();
        let mut sim = Sim::new(Arc::clone(&t));
        sim.converge_all();
        sim.fail_link(l2);
        sim.take_igp_events();
        sim.repair_link(l2);
        assert!(sim.take_igp_events().is_empty());
    }
}
