//! Looking Glass servers: per-AS AS-path queries.
//!
//! A Looking Glass server in an AS answers "what is your AS path toward
//! this destination?" from that AS's converged BGP state — the interface
//! the paper's ND-LG algorithm queries to map unidentified traceroute hops
//! to ASes.

use std::net::Ipv4Addr;

use netdiag_topology::AsId;

use crate::sim::Sim;

/// Queries the Looking Glass of `as_id` for the AS path toward `dst`.
///
/// Returns the path *including the queried AS itself* at the front (the
/// paper's example: querying AS-A for a destination in AS-C returns
/// `A-B-C`). Returns `Some(vec![as_id])` when the destination is inside the
/// queried AS, and `None` when the AS has no route.
pub fn looking_glass_query(sim: &Sim, as_id: AsId, dst: Ipv4Addr) -> Option<Vec<AsId>> {
    let topology = sim.topology();
    if topology.as_node(as_id).prefix.contains(dst) {
        return Some(vec![as_id]);
    }
    // Ask each router of the AS in order; the first with a route answers.
    // (All routers converge to policy-consistent paths; border routers may
    // differ in egress but agree on reachability.)
    for &r in &topology.as_node(as_id).routers {
        if let Some(route) = sim.bgp().lookup(r, dst) {
            let mut path = Vec::with_capacity(route.as_path.len() + 1);
            path.push(as_id);
            path.extend_from_slice(&route.as_path);
            return Some(path);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdiag_topology::{AsKind, LinkRelationship, TopologyBuilder};
    use std::sync::Arc;

    #[test]
    fn lg_reports_as_path_including_self() {
        // S1 - T - S2 chain.
        let mut b = TopologyBuilder::new();
        let t2 = b.add_as(AsKind::Tier2, "T");
        let s1 = b.add_as(AsKind::Stub, "S1");
        let s2 = b.add_as(AsKind::Stub, "S2");
        let h = b.add_router(t2, "h");
        let s1r = b.add_router(s1, "s1r");
        let s2r = b.add_router(s2, "s2r");
        b.add_inter_link(h, s1r, LinkRelationship::ProviderCustomer);
        b.add_inter_link(h, s2r, LinkRelationship::ProviderCustomer);
        let t = Arc::new(b.build().unwrap());
        let mut sim = Sim::new(Arc::clone(&t));
        sim.converge_all();

        let dst = t.as_node(s2).prefix.host(200);
        assert_eq!(looking_glass_query(&sim, s1, dst), Some(vec![s1, t2, s2]));
        assert_eq!(looking_glass_query(&sim, t2, dst), Some(vec![t2, s2]));
        assert_eq!(looking_glass_query(&sim, s2, dst), Some(vec![s2]));
    }

    #[test]
    fn lg_returns_none_without_route() {
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Stub, "A");
        let c = b.add_as(AsKind::Stub, "C");
        let a1 = b.add_router(a, "a1");
        let c1 = b.add_router(c, "c1");
        b.add_inter_link(a1, c1, LinkRelationship::PeerPeer);
        let t = Arc::new(b.build().unwrap());
        let mut sim = Sim::new(Arc::clone(&t));
        sim.converge_all();
        // Peers do exchange their own prefixes, so use an address that is in
        // no AS at all.
        assert_eq!(
            looking_glass_query(&sim, a, Ipv4Addr::new(198, 51, 100, 1)),
            None
        );
    }
}
