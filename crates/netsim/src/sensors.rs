//! Sensor placement and full-mesh probing.
//!
//! Sensors are end hosts attached to routers; they probe each other in a
//! full mesh with traceroute (the paper's troubleshooting overlay).

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use netdiag_topology::{AsId, RouterId, SensorId, Topology};

use crate::sim::Sim;
use crate::traceroute::{traceroute, Traceroute};

/// A troubleshooting sensor: an end host inside some AS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sensor {
    /// Identifier (dense, assigned by placement order).
    pub id: SensorId,
    /// The AS hosting the sensor.
    pub as_id: AsId,
    /// The router the sensor's host attaches to.
    pub router: RouterId,
    /// The sensor's host address (inside the AS prefix).
    pub addr: Ipv4Addr,
}

/// An ordered set of sensors.
#[derive(Clone, Debug)]
pub struct SensorSet {
    sensors: Vec<Sensor>,
}

impl SensorSet {
    /// Places sensors at the given (AS, attach router) locations. Host
    /// addresses are assigned as `prefix.host(0x00c8 + k)` — `10.i.0.200+k`
    /// for the k-th sensor inside AS `i` — so they never collide with
    /// router loopbacks (`10.i.(r+1).1`).
    ///
    /// # Panics
    ///
    /// Panics if an attach router does not belong to the named AS, or if an
    /// AS hosts more than 55 sensors (address plan limit).
    pub fn place(topology: &Topology, spec: &[(AsId, RouterId)]) -> SensorSet {
        let mut per_as_count = vec![0u32; topology.as_count()];
        let sensors = spec
            .iter()
            .enumerate()
            .map(|(i, &(as_id, router))| {
                assert_eq!(
                    topology.as_of_router(router),
                    as_id,
                    "attach router not in the sensor's AS"
                );
                let k = per_as_count[as_id.index()];
                per_as_count[as_id.index()] += 1;
                assert!(k < 55, "too many sensors in one AS for the address plan");
                Sensor {
                    id: SensorId(i as u32),
                    as_id,
                    router,
                    addr: topology.as_node(as_id).prefix.host(200 + k),
                }
            })
            .collect();
        SensorSet { sensors }
    }

    /// Registers every sensor's host address with the simulator.
    pub fn register(&self, sim: &mut Sim) {
        for s in &self.sensors {
            sim.register_host(s.addr, s.router);
        }
    }

    /// All sensors in id order.
    pub fn sensors(&self) -> &[Sensor] {
        &self.sensors
    }

    /// Looks up a sensor.
    pub fn get(&self, id: SensorId) -> &Sensor {
        &self.sensors[id.index()]
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// True when no sensors are placed.
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }

    /// The distinct ASes hosting sensors (the prefixes experiments must
    /// originate).
    pub fn as_ids(&self) -> Vec<AsId> {
        let set: BTreeSet<AsId> = self.sensors.iter().map(|s| s.as_id).collect();
        set.into_iter().collect()
    }
}

/// A full mesh of traceroutes between all ordered sensor pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeMesh {
    /// Traceroutes in (src, dst) lexicographic order, src != dst.
    pub traceroutes: Vec<Traceroute>,
}

impl ProbeMesh {
    /// The traceroute for an ordered pair.
    pub fn between(&self, src: SensorId, dst: SensorId) -> Option<&Traceroute> {
        self.traceroutes
            .iter()
            .find(|t| t.src == src && t.dst == dst)
    }

    /// Count of failed (unreached) paths.
    pub fn failed_count(&self) -> usize {
        self.traceroutes.iter().filter(|t| !t.reached).count()
    }
}

/// Probes the full sensor mesh under the current routing state.
pub fn probe_mesh(sim: &Sim, sensors: &SensorSet, blocked: &BTreeSet<AsId>) -> ProbeMesh {
    let mut traceroutes = Vec::with_capacity(sensors.len() * sensors.len());
    for src in sensors.sensors() {
        for dst in sensors.sensors() {
            if src.id != dst.id {
                traceroutes.push(traceroute(sim, src, dst, blocked));
            }
        }
    }
    ProbeMesh { traceroutes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdiag_topology::{AsKind, LinkRelationship, TopologyBuilder};
    use std::sync::Arc;

    fn star_net() -> (Sim, SensorSet) {
        // Hub tier-2 with three stub customers, one sensor per stub.
        let mut b = TopologyBuilder::new();
        let hub = b.add_as(AsKind::Tier2, "Hub");
        let h = b.add_router(hub, "h");
        let mut spec = Vec::new();
        for i in 0..3 {
            let s = b.add_as(AsKind::Stub, format!("S{i}"));
            let r = b.add_router(s, format!("s{i}r"));
            b.add_inter_link(h, r, LinkRelationship::ProviderCustomer);
            spec.push((s, r));
        }
        let t = Arc::new(b.build().unwrap());
        let mut sim = Sim::new(Arc::clone(&t));
        sim.converge_all();
        let sensors = SensorSet::place(&t, &spec);
        sensors.register(&mut sim);
        (sim, sensors)
    }

    #[test]
    fn placement_assigns_unique_addresses() {
        let (_, sensors) = star_net();
        let mut addrs: Vec<_> = sensors.sensors().iter().map(|s| s.addr).collect();
        addrs.dedup();
        assert_eq!(addrs.len(), 3);
        assert_eq!(sensors.as_ids().len(), 3);
    }

    #[test]
    fn two_sensors_same_as_get_distinct_addrs() {
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Tier2, "A");
        let r0 = b.add_router(a, "r0");
        let r1 = b.add_router(a, "r1");
        b.add_intra_link(r0, r1, 1);
        let t = b.build().unwrap();
        let sensors = SensorSet::place(&t, &[(a, r0), (a, r1), (a, r0)]);
        let addrs: BTreeSet<_> = sensors.sensors().iter().map(|s| s.addr).collect();
        assert_eq!(addrs.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not in the sensor's AS")]
    fn placement_validates_attach_router() {
        let (sim, _) = star_net();
        let t = sim.topology();
        // Router 0 belongs to the hub AS, not to stub AS 1.
        SensorSet::place(t, &[(AsId(1), RouterId(0))]);
    }

    #[test]
    fn full_mesh_size_and_health() {
        let (sim, sensors) = star_net();
        let mesh = probe_mesh(&sim, &sensors, &BTreeSet::new());
        assert_eq!(mesh.traceroutes.len(), 6); // 3*2 ordered pairs
        assert_eq!(mesh.failed_count(), 0);
        assert!(mesh.between(SensorId(0), SensorId(1)).is_some());
        assert!(mesh.between(SensorId(0), SensorId(0)).is_none());
    }

    #[test]
    fn mesh_detects_failures() {
        let (mut sim, sensors) = star_net();
        // Cut stub 2's uplink: 4 of 6 paths fail (to/from sensor 2).
        let r = sensors.get(SensorId(2)).router;
        let uplink = sim.topology().router(r).links[0];
        sim.fail_link(uplink);
        let mesh = probe_mesh(&sim, &sensors, &BTreeSet::new());
        assert_eq!(mesh.failed_count(), 4);
    }
}
