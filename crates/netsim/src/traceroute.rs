//! Traceroute simulation between sensors.
//!
//! A traceroute records, per hop, the address that answered: the ingress
//! interface of each router on the forwarding path (the attach router of the
//! source answers with its loopback, standing in for the host-facing
//! gateway interface). Routers in ASes that block traceroute do not answer
//! — the hop is a star. The destination host itself always answers when
//! reached. Ground-truth router/link ids are kept alongside for evaluation;
//! the diagnoser only ever sees addresses and stars.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use netdiag_topology::{AsId, LinkId, RouterId, SensorId};

use crate::dataplane::ForwardOutcome;
use crate::sensors::Sensor;
use crate::sim::Sim;

/// One observed traceroute hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeHop {
    /// A router answered with the given address.
    Addr {
        /// The address seen in the traceroute output.
        addr: Ipv4Addr,
        /// Ground truth: the answering router (hidden from the diagnoser).
        router: RouterId,
        /// Ground truth: the link the probe arrived on (None for the first
        /// hop, reached via the host link).
        link: Option<LinkId>,
    },
    /// The hop did not answer (its AS blocks traceroute).
    Star {
        /// Ground truth: the silent router.
        router: RouterId,
        /// Ground truth: the link the probe arrived on.
        link: Option<LinkId>,
    },
    /// The destination host answered.
    Dest {
        /// The destination address.
        addr: Ipv4Addr,
    },
}

impl ProbeHop {
    /// The ground-truth router behind this hop (None for the destination
    /// host).
    pub fn router(&self) -> Option<RouterId> {
        match self {
            ProbeHop::Addr { router, .. } | ProbeHop::Star { router, .. } => Some(*router),
            ProbeHop::Dest { .. } => None,
        }
    }

    /// The ground-truth ingress link, if any.
    pub fn link(&self) -> Option<LinkId> {
        match self {
            ProbeHop::Addr { link, .. } | ProbeHop::Star { link, .. } => *link,
            ProbeHop::Dest { .. } => None,
        }
    }

    /// The observed address (None for stars).
    pub fn addr(&self) -> Option<Ipv4Addr> {
        match self {
            ProbeHop::Addr { addr, .. } | ProbeHop::Dest { addr } => Some(*addr),
            ProbeHop::Star { .. } => None,
        }
    }
}

/// A complete traceroute measurement between two sensors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Traceroute {
    /// Probing sensor.
    pub src: SensorId,
    /// Target sensor.
    pub dst: SensorId,
    /// Hops in order (first = source attach router; last = destination host
    /// when `reached`).
    pub hops: Vec<ProbeHop>,
    /// Did the probe reach the destination?
    pub reached: bool,
}

impl Traceroute {
    /// Ground-truth links traversed, in order.
    pub fn links(&self) -> Vec<LinkId> {
        self.hops.iter().filter_map(|h| h.link()).collect()
    }
}

/// Runs a traceroute from `src` to `dst` under the current routing state.
///
/// `blocked` is the set of ASes whose routers do not answer probes.
pub fn traceroute(sim: &Sim, src: &Sensor, dst: &Sensor, blocked: &BTreeSet<AsId>) -> Traceroute {
    let path = sim.forward(src.router, dst.addr);
    render_traceroute(sim, src, dst, blocked, &path)
}

/// Runs a Paris-traceroute sweep from `src` to `dst`: one [`Traceroute`]
/// per distinct ECMP path (at most `cap`). With no load balancing on the
/// route this returns exactly one measurement, identical to
/// [`traceroute`]'s single-path view.
pub fn paris_traceroute(
    sim: &Sim,
    src: &Sensor,
    dst: &Sensor,
    blocked: &BTreeSet<AsId>,
    cap: usize,
) -> Vec<Traceroute> {
    sim.all_paths(src.router, dst.addr, cap)
        .iter()
        .map(|path| render_traceroute(sim, src, dst, blocked, path))
        .collect()
}

/// Converts a forwarding path into the traceroute the sensor observes.
fn render_traceroute(
    sim: &Sim,
    src: &Sensor,
    dst: &Sensor,
    blocked: &BTreeSet<AsId>,
    path: &crate::dataplane::DataPath,
) -> Traceroute {
    let topology = sim.topology();
    let mut hops = Vec::with_capacity(path.hops.len() + 1);
    for hop in &path.hops {
        let as_id = topology.as_of_router(hop.router);
        let link = hop.ingress.map(|(l, _)| l);
        if blocked.contains(&as_id) {
            hops.push(ProbeHop::Star {
                router: hop.router,
                link,
            });
        } else {
            let addr = match hop.ingress {
                Some((_, ingress_addr)) => ingress_addr,
                None => topology.router(hop.router).loopback,
            };
            hops.push(ProbeHop::Addr {
                addr,
                router: hop.router,
                link,
            });
        }
    }
    let reached = path.outcome == ForwardOutcome::Delivered;
    if reached {
        hops.push(ProbeHop::Dest { addr: dst.addr });
    }
    let recorder = sim.recorder();
    if recorder.enabled() {
        use netdiag_obs::names;
        recorder.add(names::PROBE_TRACEROUTES, 1);
        recorder.add(names::PROBE_HOPS, hops.len() as u64);
        let stars = hops
            .iter()
            .filter(|h| matches!(h, ProbeHop::Star { .. }))
            .count();
        recorder.add(names::PROBE_BLOCKED_HOPS, stars as u64);
    }
    recorder.event(netdiag_obs::names::EV_PROBE_TRACEROUTE, || {
        let rendered: Vec<netdiag_obs::Value> = hops
            .iter()
            .map(|h| match h.addr() {
                Some(addr) => netdiag_obs::Value::Str(addr.to_string()),
                None => netdiag_obs::Value::Str("*".to_owned()),
            })
            .collect();
        netdiag_obs::EventPayload::new()
            .field("src", src.id.index())
            .field("dst", dst.id.index())
            .field("reached", reached)
            .field("hops", rendered)
    });
    Traceroute {
        src: src.id,
        dst: dst.id,
        hops,
        reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensors::SensorSet;
    use netdiag_topology::{AsKind, LinkRelationship, TopologyBuilder};
    use std::sync::Arc;

    /// S1 -- T -- S2 with sensors at the stubs.
    fn net() -> (Sim, SensorSet, AsId) {
        let mut b = TopologyBuilder::new();
        let t2 = b.add_as(AsKind::Tier2, "T");
        let s1 = b.add_as(AsKind::Stub, "S1");
        let s2 = b.add_as(AsKind::Stub, "S2");
        let t_a = b.add_router(t2, "ta");
        let t_b = b.add_router(t2, "tb");
        b.add_intra_link(t_a, t_b, 7);
        let s1r = b.add_router(s1, "s1r");
        let s2r = b.add_router(s2, "s2r");
        b.add_inter_link(t_a, s1r, LinkRelationship::ProviderCustomer);
        b.add_inter_link(t_b, s2r, LinkRelationship::ProviderCustomer);
        let t = Arc::new(b.build().unwrap());
        let mut sim = Sim::new(Arc::clone(&t));
        sim.converge_all();
        let sensors = SensorSet::place(&t, &[(s1, s1r), (s2, s2r)]);
        sensors.register(&mut sim);
        (sim, sensors, t2)
    }

    #[test]
    fn hops_and_destination() {
        let (sim, sensors, _) = net();
        let tr = traceroute(
            &sim,
            sensors.get(SensorId(0)),
            sensors.get(SensorId(1)),
            &BTreeSet::new(),
        );
        assert!(tr.reached);
        // s1r, ta, tb, s2r, dest-host
        assert_eq!(tr.hops.len(), 5);
        assert!(matches!(tr.hops[0], ProbeHop::Addr { link: None, .. }));
        assert!(matches!(tr.hops[4], ProbeHop::Dest { .. }));
        assert_eq!(tr.links().len(), 3);
    }

    #[test]
    fn blocked_as_yields_stars_but_ground_truth_retained() {
        let (sim, sensors, t2) = net();
        let blocked: BTreeSet<AsId> = [t2].into_iter().collect();
        let tr = traceroute(
            &sim,
            sensors.get(SensorId(0)),
            sensors.get(SensorId(1)),
            &blocked,
        );
        assert!(tr.reached);
        let stars: Vec<_> = tr
            .hops
            .iter()
            .filter(|h| matches!(h, ProbeHop::Star { .. }))
            .collect();
        assert_eq!(stars.len(), 2, "both transit routers silent");
        // Links are still known as ground truth.
        assert_eq!(tr.links().len(), 3);
    }

    #[test]
    fn failed_path_is_truncated_and_unreached() {
        let (mut sim, sensors, _) = net();
        let s2r = sensors.get(SensorId(1)).router;
        let uplink = sim.topology().router(s2r).links[0];
        sim.fail_link(uplink);
        let tr = traceroute(
            &sim,
            sensors.get(SensorId(0)),
            sensors.get(SensorId(1)),
            &BTreeSet::new(),
        );
        assert!(!tr.reached);
        assert!(tr.hops.len() < 5);
        assert!(!tr.hops.iter().any(|h| matches!(h, ProbeHop::Dest { .. })));
    }
}

#[cfg(test)]
mod paris_tests {
    use super::*;
    use crate::sensors::SensorSet;
    use netdiag_topology::{AsKind, LinkRelationship, TopologyBuilder};
    use std::sync::Arc;

    /// Transit AS with an internal ECMP square: two equal-cost paths.
    fn ecmp_net() -> (Sim, SensorSet) {
        let mut b = TopologyBuilder::new();
        let t2 = b.add_as(AsKind::Tier2, "T");
        let s1 = b.add_as(AsKind::Stub, "S1");
        let s2 = b.add_as(AsKind::Stub, "S2");
        let ta = b.add_router(t2, "ta");
        let m1 = b.add_router(t2, "m1");
        let m2 = b.add_router(t2, "m2");
        let tb = b.add_router(t2, "tb");
        b.add_intra_link(ta, m1, 1);
        b.add_intra_link(ta, m2, 1);
        b.add_intra_link(m1, tb, 1);
        b.add_intra_link(m2, tb, 1);
        let s1r = b.add_router(s1, "s1r");
        let s2r = b.add_router(s2, "s2r");
        b.add_inter_link(ta, s1r, LinkRelationship::ProviderCustomer);
        b.add_inter_link(tb, s2r, LinkRelationship::ProviderCustomer);
        let t = Arc::new(b.build().unwrap());
        let mut sim = Sim::new(Arc::clone(&t));
        sim.converge_all();
        let sensors = SensorSet::place(&t, &[(s1, s1r), (s2, s2r)]);
        sensors.register(&mut sim);
        (sim, sensors)
    }

    #[test]
    fn paris_discovers_all_ecmp_variants() {
        let (sim, sensors) = ecmp_net();
        let trs = paris_traceroute(
            &sim,
            sensors.get(SensorId(0)),
            sensors.get(SensorId(1)),
            &BTreeSet::new(),
            8,
        );
        assert_eq!(trs.len(), 2);
        assert!(trs.iter().all(|t| t.reached));
        // The two traceroutes differ in the middle hop.
        assert_ne!(trs[0].hops[2].addr(), trs[1].hops[2].addr());
        // The classic traceroute is one of them.
        let single = traceroute(
            &sim,
            sensors.get(SensorId(0)),
            sensors.get(SensorId(1)),
            &BTreeSet::new(),
        );
        assert!(trs.iter().any(|t| {
            t.hops.iter().map(|h| h.addr()).collect::<Vec<_>>()
                == single.hops.iter().map(|h| h.addr()).collect::<Vec<_>>()
        }));
    }

    #[test]
    fn paris_respects_blocking() {
        let (sim, sensors) = ecmp_net();
        let blocked: BTreeSet<AsId> = [AsId(0)].into_iter().collect(); // transit blocks
        let trs = paris_traceroute(
            &sim,
            sensors.get(SensorId(0)),
            sensors.get(SensorId(1)),
            &blocked,
            8,
        );
        assert_eq!(trs.len(), 2);
        for t in &trs {
            let stars = t.hops.iter().filter(|h| h.addr().is_none()).count();
            assert_eq!(stars, 3, "all transit hops starred");
        }
    }
}
