//! Hop-by-hop packet forwarding over the converged routing state.
//!
//! Forwarding at each router:
//!
//! 1. if the destination is a registered host of this AS or one of this
//!    AS's router addresses, forward along IGP next hops to the owning
//!    router (intra-domain delivery bypasses BGP, as in real networks where
//!    the IGP carries internal prefixes);
//! 2. otherwise look up the longest-matching BGP route: an eBGP-learned
//!    route forwards straight over its inter-domain link; an iBGP-learned
//!    route forwards along IGP next hops toward the egress border router.
//!
//! The walk records every router traversed together with the ingress
//! interface address — exactly what traceroute observes.

use std::net::Ipv4Addr;

use netdiag_topology::{IpOwner, LinkId, RouterId};

use crate::sim::Sim;

/// Maximum hops before declaring a TTL exceeded (matches traceroute
/// practice; our networks are far smaller).
const MAX_HOPS: usize = 64;

/// Deterministic per-(flow, router) hash (FNV-1a) for ECMP choice.
fn flow_hash(flow: u64, router: RouterId) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in flow
        .to_le_bytes()
        .iter()
        .chain(router.0.to_le_bytes().iter())
    {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One router on a forwarding path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathHop {
    /// The router traversed.
    pub router: RouterId,
    /// Link the packet arrived on and the ingress interface address
    /// (`None` for the first hop, where the packet enters from the host).
    pub ingress: Option<(LinkId, Ipv4Addr)>,
}

/// Why a forwarding walk ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForwardOutcome {
    /// The destination host/router was reached.
    Delivered,
    /// A router had no route to the destination.
    NoRoute(RouterId),
    /// A forwarding loop was detected at the given router.
    Loop(RouterId),
    /// The hop budget was exhausted.
    TtlExceeded,
}

/// A forwarding path: the routers traversed and the outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataPath {
    /// Routers traversed, in order, starting at the source's attach router.
    pub hops: Vec<PathHop>,
    /// Terminal outcome.
    pub outcome: ForwardOutcome,
}

impl DataPath {
    /// True when the packet was delivered.
    pub fn delivered(&self) -> bool {
        self.outcome == ForwardOutcome::Delivered
    }

    /// The links traversed, in order.
    pub fn links(&self) -> Vec<LinkId> {
        self.hops
            .iter()
            .filter_map(|h| h.ingress.map(|(l, _)| l))
            .collect()
    }
}

impl Sim {
    /// Resolves the router that owns a destination address: a registered
    /// host's attach router, or the owner of a router interface/loopback.
    pub fn resolve_destination(&self, dst: Ipv4Addr) -> Option<RouterId> {
        if let Some(r) = self.host_router(dst) {
            return Some(r);
        }
        match self.topology().ip_owner(dst) {
            Some(IpOwner::Interface(r, _)) | Some(IpOwner::Loopback(r)) => Some(r),
            None => None,
        }
    }

    /// All candidate next hops at `current` toward `dst` (the ECMP set):
    /// equal-cost IGP hops toward the local target or BGP egress, or the
    /// single eBGP exit. Empty when there is no route.
    fn next_hop_candidates(
        &self,
        current: RouterId,
        dst: Ipv4Addr,
        target: Option<RouterId>,
    ) -> Vec<RouterId> {
        let topology = self.topology();
        let my_as = topology.as_of_router(current);
        match target {
            Some(t) if topology.as_of_router(t) == my_as => {
                self.igp()
                    .of(my_as)
                    .next_hops(topology, self.links(), current, t)
            }
            _ => match self.bgp().lookup(current, dst) {
                None => Vec::new(),
                Some(route) => {
                    if let Some(link) = route.ebgp_link {
                        if self.links().is_up(link) {
                            vec![topology.link(link).other(current)]
                        } else {
                            Vec::new()
                        }
                    } else {
                        self.igp().of(my_as).next_hops(
                            topology,
                            self.links(),
                            current,
                            route.egress,
                        )
                    }
                }
            },
        }
    }

    /// Walks one packet using `choose` to pick among ECMP candidates.
    fn walk(
        &self,
        from: RouterId,
        dst: Ipv4Addr,
        mut choose: impl FnMut(RouterId, &[RouterId]) -> RouterId,
    ) -> DataPath {
        let topology = self.topology();
        let target = self.resolve_destination(dst);
        let mut hops = vec![PathHop {
            router: from,
            ingress: None,
        }];
        let mut visited = vec![false; topology.router_count()];
        visited[from.index()] = true;
        let mut current = from;
        loop {
            if hops.len() > MAX_HOPS {
                return DataPath {
                    hops,
                    outcome: ForwardOutcome::TtlExceeded,
                };
            }
            if target == Some(current) {
                return DataPath {
                    hops,
                    outcome: ForwardOutcome::Delivered,
                };
            }
            let candidates = self.next_hop_candidates(current, dst, target);
            if candidates.is_empty() {
                return DataPath {
                    hops,
                    outcome: ForwardOutcome::NoRoute(current),
                };
            }
            let next = choose(current, &candidates);
            debug_assert!(candidates.contains(&next));
            let link = topology
                .link_between(current, next)
                .expect("next hop must be adjacent");
            debug_assert!(self.links().is_up(link), "forwarding over a down link");
            hops.push(PathHop {
                router: next,
                ingress: Some((link, topology.link(link).addr_of(next))),
            });
            if visited[next.index()] {
                return DataPath {
                    hops,
                    outcome: ForwardOutcome::Loop(next),
                };
            }
            visited[next.index()] = true;
            current = next;
        }
    }

    /// Forwards a packet from `from` along a *specific flow*: routers with
    /// multiple equal-cost next hops pick one by hashing the flow id — the
    /// per-flow-consistent load balancing Paris traceroute relies on.
    pub fn forward_flow(&self, from: RouterId, dst: Ipv4Addr, flow: u64) -> DataPath {
        self.walk(from, dst, |router, candidates| {
            candidates[(flow_hash(flow, router) as usize) % candidates.len()]
        })
    }

    /// Enumerates every distinct ECMP path from `from` to `dst` (what a
    /// Paris-traceroute sweep over flow ids discovers), up to `cap` paths.
    pub fn all_paths(&self, from: RouterId, dst: Ipv4Addr, cap: usize) -> Vec<DataPath> {
        // Depth-first over the ECMP branching structure. `choice[i]` is the
        // branch taken at the i-th branching point of the current walk.
        let mut results = Vec::new();
        let mut choice_stack: Vec<usize> = Vec::new();
        loop {
            // Replay the walk taking branch `choice_stack[i]` at the i-th
            // decision; record the fan-out degree met along the way.
            let mut fanouts: Vec<usize> = Vec::new();
            let mut idx = 0usize;
            let path = self.walk(from, dst, |_, candidates| {
                let pick = if idx < choice_stack.len() {
                    choice_stack[idx]
                } else {
                    0
                };
                fanouts.push(candidates.len());
                idx += 1;
                candidates[pick.min(candidates.len() - 1)]
            });
            results.push(path);
            if results.len() >= cap {
                return results;
            }
            // Advance to the next unexplored branch combination
            // (odometer-style, deepest decision first).
            choice_stack.resize(fanouts.len(), 0);
            let mut level = fanouts.len();
            loop {
                if level == 0 {
                    return results;
                }
                level -= 1;
                if choice_stack[level] + 1 < fanouts[level] {
                    choice_stack[level] += 1;
                    choice_stack.truncate(level + 1);
                    break;
                }
            }
        }
    }

    /// Forwards a packet from `from` (a router) to `dst`, recording the
    /// path. At equal-cost fan-outs the SPF-preferred next hop is taken
    /// (the single-path view the paper's evaluation uses; see
    /// [`Sim::forward_flow`] / [`Sim::all_paths`] for the ECMP view).
    pub fn forward(&self, from: RouterId, dst: Ipv4Addr) -> DataPath {
        let target = self.resolve_destination(dst);
        self.walk(from, dst, |router, candidates| {
            if candidates.len() == 1 {
                return candidates[0];
            }
            let topology = self.topology();
            let my_as = topology.as_of_router(router);
            let goal = match target {
                Some(t) if topology.as_of_router(t) == my_as => Some(t),
                _ => self.bgp().lookup(router, dst).map(|r| r.egress),
            };
            goal.and_then(|g| self.igp().of(my_as).next_hop(router, g))
                .filter(|nh| candidates.contains(nh))
                .unwrap_or(candidates[0])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdiag_topology::{AsId, AsKind, LinkRelationship, Topology, TopologyBuilder};
    use std::sync::Arc;

    /// Stub S1 -- T (2 routers) -- Stub S2; sensors on the stubs.
    fn net() -> (Sim, [RouterId; 4], [Ipv4Addr; 2]) {
        let mut b = TopologyBuilder::new();
        let t2 = b.add_as(AsKind::Tier2, "T");
        let s1 = b.add_as(AsKind::Stub, "S1");
        let s2 = b.add_as(AsKind::Stub, "S2");
        let t_a = b.add_router(t2, "ta");
        let t_b = b.add_router(t2, "tb");
        b.add_intra_link(t_a, t_b, 7);
        let s1r = b.add_router(s1, "s1r");
        let s2r = b.add_router(s2, "s2r");
        b.add_inter_link(t_a, s1r, LinkRelationship::ProviderCustomer);
        b.add_inter_link(t_b, s2r, LinkRelationship::ProviderCustomer);
        let t = Arc::new(b.build().unwrap());
        let mut sim = Sim::new(Arc::clone(&t));
        sim.converge_all();
        let h1 = t.as_node(s1).prefix.host(100);
        let h2 = t.as_node(s2).prefix.host(100);
        sim.register_host(h1, s1r);
        sim.register_host(h2, s2r);
        (sim, [t_a, t_b, s1r, s2r], [h1, h2])
    }

    #[test]
    fn delivers_across_transit() {
        let (sim, [t_a, t_b, s1r, s2r], [_, h2]) = net();
        let path = sim.forward(s1r, h2);
        assert!(path.delivered());
        let routers: Vec<RouterId> = path.hops.iter().map(|h| h.router).collect();
        assert_eq!(routers, vec![s1r, t_a, t_b, s2r]);
        assert_eq!(path.links().len(), 3);
        // Ingress addresses belong to the receiving routers.
        for hop in &path.hops[1..] {
            let (link, addr) = hop.ingress.unwrap();
            assert_eq!(sim.topology().link(link).addr_of(hop.router), addr);
        }
    }

    #[test]
    fn unregistered_destination_has_no_route() {
        let (sim, [_, _, s1r, _], _) = net();
        let path = sim.forward(s1r, Ipv4Addr::new(203, 0, 113, 1));
        assert_eq!(path.outcome, ForwardOutcome::NoRoute(s1r));
    }

    #[test]
    fn blackhole_after_failure() {
        let (mut sim, [_, t_b, s1r, s2r], [_, h2]) = net();
        let l = sim.topology().link_between(t_b, s2r).unwrap();
        sim.fail_link(l);
        let path = sim.forward(s1r, h2);
        assert!(!path.delivered());
        assert!(matches!(path.outcome, ForwardOutcome::NoRoute(_)));
    }

    #[test]
    fn delivery_to_self() {
        let (sim, [_, _, s1r, _], [h1, _]) = net();
        let path = sim.forward(s1r, h1);
        assert!(path.delivered());
        assert_eq!(path.hops.len(), 1);
        assert!(path.links().is_empty());
    }

    #[test]
    fn delivery_to_router_loopback() {
        let (sim, [t_a, t_b, s1r, _], _) = net();
        let lb = sim.topology().router(t_b).loopback;
        let path = sim.forward(s1r, lb);
        assert!(path.delivered());
        let routers: Vec<RouterId> = path.hops.iter().map(|h| h.router).collect();
        assert_eq!(routers, vec![s1r, t_a, t_b]);
    }

    #[test]
    fn resolve_destination_kinds() {
        let (sim, [t_a, ..], [h1, _]) = net();
        assert_eq!(sim.resolve_destination(h1), sim.host_router(h1));
        let lb = sim.topology().router(t_a).loopback;
        assert_eq!(sim.resolve_destination(lb), Some(t_a));
        assert_eq!(sim.resolve_destination(Ipv4Addr::new(8, 8, 8, 8)), None);
        let _ = AsId(0);
        let _: Option<&Topology> = None;
    }
}

#[cfg(test)]
mod ecmp_tests {
    use super::*;
    use netdiag_topology::{AsKind, LinkRelationship, TopologyBuilder};
    use std::sync::Arc;

    /// Transit AS with an internal ECMP square between its borders:
    /// S1 - ta - {m1|m2} - tb - S2.
    fn ecmp_net() -> (Sim, RouterId, RouterId, Ipv4Addr) {
        let mut b = TopologyBuilder::new();
        let t2 = b.add_as(AsKind::Tier2, "T");
        let s1 = b.add_as(AsKind::Stub, "S1");
        let s2 = b.add_as(AsKind::Stub, "S2");
        let ta = b.add_router(t2, "ta");
        let m1 = b.add_router(t2, "m1");
        let m2 = b.add_router(t2, "m2");
        let tb = b.add_router(t2, "tb");
        b.add_intra_link(ta, m1, 1);
        b.add_intra_link(ta, m2, 1);
        b.add_intra_link(m1, tb, 1);
        b.add_intra_link(m2, tb, 1);
        let s1r = b.add_router(s1, "s1r");
        let s2r = b.add_router(s2, "s2r");
        b.add_inter_link(ta, s1r, LinkRelationship::ProviderCustomer);
        b.add_inter_link(tb, s2r, LinkRelationship::ProviderCustomer);
        let t = Arc::new(b.build().unwrap());
        let mut sim = Sim::new(Arc::clone(&t));
        sim.converge_all();
        let h2 = t.as_node(s2).prefix.host(200);
        sim.register_host(h2, s2r);
        (sim, s1r, s2r, h2)
    }

    #[test]
    fn flows_are_consistent_and_spread() {
        let (sim, s1r, _, h2) = ecmp_net();
        // A given flow always takes the same path.
        for flow in 0..8u64 {
            let p1 = sim.forward_flow(s1r, h2, flow);
            let p2 = sim.forward_flow(s1r, h2, flow);
            assert!(p1.delivered());
            assert_eq!(p1, p2, "per-flow consistency");
        }
        // Different flows use both ECMP branches eventually.
        let mut middles = std::collections::BTreeSet::new();
        for flow in 0..64u64 {
            let p = sim.forward_flow(s1r, h2, flow);
            middles.insert(p.hops[2].router); // m1 or m2
        }
        assert_eq!(middles.len(), 2, "load balancing uses both branches");
    }

    #[test]
    fn all_paths_enumerates_both_branches() {
        let (sim, s1r, s2r, h2) = ecmp_net();
        let paths = sim.all_paths(s1r, h2, 16);
        assert_eq!(paths.len(), 2, "exactly the two ECMP variants");
        for p in &paths {
            assert!(p.delivered());
            assert_eq!(p.hops.first().unwrap().router, s1r);
            assert_eq!(p.hops.last().unwrap().router, s2r);
        }
        let middles: std::collections::BTreeSet<_> =
            paths.iter().map(|p| p.hops[2].router).collect();
        assert_eq!(middles.len(), 2);
    }

    #[test]
    fn all_paths_single_route_yields_one() {
        let (sim, s1r, _, h2) = ecmp_net();
        // From the midpoint m1, the path to S2 is unique.
        let m1 = RouterId(1);
        let paths = sim.all_paths(m1, h2, 16);
        assert_eq!(paths.len(), 1);
        let _ = s1r;
    }

    #[test]
    fn all_paths_respects_cap() {
        let (sim, s1r, _, h2) = ecmp_net();
        let paths = sim.all_paths(s1r, h2, 1);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn deterministic_forward_is_an_ecmp_member() {
        let (sim, s1r, _, h2) = ecmp_net();
        let det = sim.forward(s1r, h2);
        let all = sim.all_paths(s1r, h2, 16);
        assert!(all.iter().any(|p| p.hops == det.hops));
    }
}
