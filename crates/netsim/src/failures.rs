//! Failure scenarios: the events the paper's evaluation injects.

use netdiag_bgp::ExportDeny;
use netdiag_topology::{LinkId, RouterId};

use crate::sim::Sim;

/// A failure event to inject into a converged network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Failure {
    /// One or more links fail simultaneously (possibly in different ASes).
    Links(Vec<LinkId>),
    /// A router fails: all its links go down at once (the paper treats this
    /// like a Shared Risk Link Group failure).
    Router(RouterId),
    /// BGP export-filter misconfiguration(s): routes silently stop being
    /// announced to specific neighbors while the links stay up.
    Misconfig(Vec<ExportDeny>),
    /// A combination (the paper evaluates "one misconfiguration plus one
    /// link failure").
    Combined(Vec<Failure>),
}

impl Failure {
    /// Ground truth: the physical links this failure takes down.
    /// (Misconfigured links stay physically up; the paper counts the
    /// misconfigured *link* as the failure site — see
    /// [`Failure::misconfigured_links`].)
    pub fn failed_links(&self, sim: &Sim) -> Vec<LinkId> {
        match self {
            Failure::Links(ls) => ls.clone(),
            Failure::Router(r) => sim.topology().router(*r).links.clone(),
            Failure::Misconfig(_) => Vec::new(),
            Failure::Combined(fs) => fs.iter().flat_map(|f| f.failed_links(sim)).collect(),
        }
    }

    /// Ground truth: inter-domain links whose announcements are filtered
    /// (the failure site of a misconfiguration).
    pub fn misconfigured_links(&self, sim: &Sim) -> Vec<LinkId> {
        match self {
            Failure::Misconfig(rules) => rules
                .iter()
                .filter_map(|rule| sim.topology().link_between(rule.at, rule.peer))
                .collect(),
            Failure::Combined(fs) => fs.iter().flat_map(|f| f.misconfigured_links(sim)).collect(),
            _ => Vec::new(),
        }
    }

    /// All ground-truth failure sites: failed plus misconfigured links.
    pub fn all_failure_sites(&self, sim: &Sim) -> Vec<LinkId> {
        let mut v = self.failed_links(sim);
        v.extend(self.misconfigured_links(sim));
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Applies a failure to the simulator and reconverges (incremental path).
pub fn apply_failure(sim: &mut Sim, failure: &Failure) {
    match failure {
        Failure::Links(ls) => sim.fail_links(ls),
        Failure::Router(r) => sim.fail_router(*r),
        Failure::Misconfig(rules) => sim.misconfigure(rules),
        Failure::Combined(fs) => {
            for f in fs {
                apply_failure(sim, f);
            }
        }
    }
}

/// [`apply_failure`] through the full-reconvergence reference path
/// ([`Sim::fail_links_full`]); the sequential baseline experiments and the
/// incremental-equivalence proptests use this as the oracle.
pub fn apply_failure_full(sim: &mut Sim, failure: &Failure) {
    match failure {
        Failure::Links(ls) => sim.fail_links_full(ls),
        Failure::Router(r) => {
            let links = sim.topology().router(*r).links.clone();
            sim.fail_links_full(&links);
        }
        Failure::Misconfig(rules) => sim.misconfigure(rules),
        Failure::Combined(fs) => {
            for f in fs {
                apply_failure_full(sim, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdiag_topology::{AsKind, LinkRelationship, TopologyBuilder};
    use std::sync::Arc;

    fn net() -> (Sim, [RouterId; 3], LinkId) {
        let mut b = TopologyBuilder::new();
        let t2 = b.add_as(AsKind::Tier2, "T");
        let s1 = b.add_as(AsKind::Stub, "S1");
        let s2 = b.add_as(AsKind::Stub, "S2");
        let h = b.add_router(t2, "h");
        let s1r = b.add_router(s1, "s1r");
        let s2r = b.add_router(s2, "s2r");
        b.add_inter_link(h, s1r, LinkRelationship::ProviderCustomer);
        let l2 = b.add_inter_link(h, s2r, LinkRelationship::ProviderCustomer);
        let t = Arc::new(b.build().unwrap());
        let mut sim = Sim::new(Arc::clone(&t));
        sim.converge_all();
        (sim, [h, s1r, s2r], l2)
    }

    #[test]
    fn link_failure_sites() {
        let (sim, _, l2) = net();
        let f = Failure::Links(vec![l2]);
        assert_eq!(f.failed_links(&sim), vec![l2]);
        assert!(f.misconfigured_links(&sim).is_empty());
        assert_eq!(f.all_failure_sites(&sim), vec![l2]);
    }

    #[test]
    fn router_failure_covers_all_links() {
        let (sim, [h, _, _], _) = net();
        let f = Failure::Router(h);
        assert_eq!(f.failed_links(&sim).len(), 2);
    }

    #[test]
    fn misconfig_sites_map_to_links() {
        let (sim, [h, _, s2r], l2) = net();
        let prefix = sim.topology().as_node(netdiag_topology::AsId(2)).prefix;
        let f = Failure::Misconfig(vec![ExportDeny {
            at: h,
            peer: s2r,
            prefix,
        }]);
        assert!(f.failed_links(&sim).is_empty());
        assert_eq!(f.misconfigured_links(&sim), vec![l2]);
    }

    #[test]
    fn combined_failure_applies_both() {
        let (mut sim, [h, s1r, s2r], _) = net();
        let s1_prefix = sim.topology().as_node(netdiag_topology::AsId(1)).prefix;
        let uplink = sim.topology().link_between(h, s1r).unwrap();
        let f = Failure::Combined(vec![
            Failure::Links(vec![uplink]),
            Failure::Misconfig(vec![ExportDeny {
                at: h,
                peer: s2r,
                prefix: s1_prefix,
            }]),
        ]);
        assert_eq!(f.all_failure_sites(&sim).len(), 2);
        apply_failure(&mut sim, &f);
        assert!(!sim.links().is_up(uplink));
        // s2r lost the (already dead) route to S1; the filter is installed.
        assert!(sim.bgp().best_route(s2r, &s1_prefix).is_none());
    }
}
