//! Per-AS link-state IGP (an IS-IS stand-in) for the NetDiagnoser
//! reproduction.
//!
//! Each AS runs an independent shortest-path-first routing computation over
//! its intra-domain links. The crate provides:
//!
//! * [`LinkState`] — dynamic up/down state for every link in the topology
//!   (shared with the BGP and data-plane layers);
//! * [`AsIgp`] — the converged SPF result for one AS: distances and first
//!   hops between every pair of its routers;
//! * [`Igp`] — the per-AS results for a whole topology, with incremental
//!   recomputation when link state changes.
//!
//! Forwarding along IGP next hops is loop-free by construction: every hop
//! strictly decreases the remaining shortest-path distance (all weights are
//! ≥ 1), independent of tie-breaking.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod spf;
mod state;

pub use spf::{AsIgp, Igp, SpfDelta};
pub use state::LinkState;
