//! Shortest-path-first computation per AS.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::sync::Arc;

use netdiag_obs::{names, RecorderHandle};
use netdiag_topology::{AsId, LinkId, LinkKind, RouterId, Topology};

use crate::state::LinkState;

/// Distance value for "unreachable".
const INF: u64 = u64::MAX;

/// Sentinel in the flat next-hop matrix for "no hop" (unreachable or
/// source == destination). Router ids never reach it.
const NO_HOP: u32 = u32::MAX;

/// One edge of an AS's local intra-domain CSR: the far endpoint as a
/// *local* index, with weight and link id denormalized. Dijkstra runs
/// entirely over these contiguous entries — no global id translation,
/// no `Link` loads, no inter-link filtering in the inner loop.
#[derive(Clone, Copy, Debug)]
struct IntraEdge {
    /// Local index of the far endpoint.
    peer: u32,
    /// IGP weight leaving the local router over this edge.
    weight: u32,
    /// The underlying link (for the dynamic up/down check).
    link: LinkId,
}

/// Router-id → local-index mapping for one AS.
///
/// Generated topologies allocate each AS's routers as one contiguous id
/// range, so the common case resolves with a base-offset subtraction —
/// no hashing on the (very hot) `dist`/`reachable` path. A `HashMap`
/// fallback keeps hand-built topologies with interleaved ids working.
#[derive(Clone, Debug)]
struct LocalIndex {
    base: u32,
    n: u32,
    map: Option<HashMap<RouterId, usize>>,
}

impl LocalIndex {
    fn build(routers: &[RouterId]) -> Self {
        let base = routers.first().map_or(0, |r| r.0);
        let contiguous = routers
            .iter()
            .enumerate()
            .all(|(i, r)| r.0 == base + i as u32);
        let map = if contiguous {
            None
        } else {
            Some(routers.iter().enumerate().map(|(i, &r)| (r, i)).collect())
        };
        LocalIndex {
            base,
            n: routers.len() as u32,
            map,
        }
    }

    /// Local index of `r`, or `None` when `r` is not in this AS.
    #[inline]
    fn get(&self, r: RouterId) -> Option<usize> {
        match &self.map {
            None => {
                let off = r.0.wrapping_sub(self.base);
                (off < self.n).then_some(off as usize)
            }
            Some(m) => m.get(&r).copied(),
        }
    }

    /// Local index of `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r` is not a router of this AS.
    #[inline]
    fn of(&self, r: RouterId) -> usize {
        self.get(r).expect("router does not belong to this AS")
    }
}

/// Result of an incremental SPF update ([`Igp::delta_fail_links_recorded`]).
#[derive(Clone, Debug, Default)]
pub struct SpfDelta {
    /// Routers whose distance vector changed. The BGP decision process
    /// only consults per-source distances, so it must be replayed for
    /// exactly these routers (and no others).
    pub dirty_sources: Vec<RouterId>,
    /// Router pairs `(a, b)` with `a < b` that lost intra-AS
    /// reachability — their iBGP session just died.
    pub lost_pairs: Vec<(RouterId, RouterId)>,
    /// Number of single-source SPF runs the delta actually performed.
    pub recomputed: usize,
}

/// Converged SPF state for one AS: all-pairs distances and first hops over
/// the AS's *up* intra-domain links.
///
/// The tables are flat row-major matrices (stride = router count) and the
/// AS's static intra-domain adjacency is a local-index CSR, so a full
/// recompute is contiguous array traffic with no per-node allocation.
#[derive(Clone, Debug)]
pub struct AsIgp {
    as_id: AsId,
    routers: Vec<RouterId>,
    local: LocalIndex,
    /// Local intra-domain CSR: edges of local router `i` are
    /// `intra[intra_off[i] .. intra_off[i + 1]]`.
    intra_off: Vec<u32>,
    intra: Vec<IntraEdge>,
    /// `dist[i * n + j]`: shortest-path weight from routers[i] to
    /// routers[j] (`INF` when unreachable).
    dist: Vec<u64>,
    /// `next_hop[i * n + j]`: raw id of the first router on the path from
    /// routers[i] to routers[j] (`NO_HOP` when unreachable or `i == j`).
    next_hop: Vec<u32>,
}

impl AsIgp {
    /// Runs SPF for `as_id` over the currently-up intra links.
    pub fn compute(topology: &Topology, as_id: AsId, links: &LinkState) -> Self {
        Self::compute_recorded(topology, as_id, links, &RecorderHandle::noop())
    }

    /// [`AsIgp::compute`] reporting `igp.spf_runs` / `igp.settled_nodes`
    /// to `recorder`. Counters are batched locally and flushed once.
    pub fn compute_recorded(
        topology: &Topology,
        as_id: AsId,
        links: &LinkState,
        recorder: &RecorderHandle,
    ) -> Self {
        let routers = topology.as_node(as_id).routers.clone();
        let local = LocalIndex::build(&routers);
        let n = routers.len();

        // The static local CSR, in the topology's adjacency order.
        let mut intra_off = Vec::with_capacity(n + 1);
        let mut intra = Vec::new();
        intra_off.push(0u32);
        for &r in &routers {
            for e in topology.adjacency(r) {
                if e.kind != LinkKind::Intra {
                    continue;
                }
                let Some(p) = local.get(e.peer) else { continue };
                intra.push(IntraEdge {
                    peer: p as u32,
                    weight: e.weight,
                    link: e.link,
                });
            }
            intra_off.push(intra.len() as u32);
        }

        let mut dist = vec![INF; n * n];
        let mut next_hop = vec![NO_HOP; n * n];
        let mut done = vec![false; n];
        let mut heap = BinaryHeap::new();

        let mut settled: u64 = 0;
        for src_local in 0..n {
            done.fill(false);
            settled += dijkstra(
                &intra_off,
                &intra,
                links,
                &routers,
                src_local,
                &mut dist[src_local * n..(src_local + 1) * n],
                &mut next_hop[src_local * n..(src_local + 1) * n],
                &mut done,
                &mut heap,
            );
        }
        if recorder.enabled() {
            recorder.add(names::IGP_SPF_RUNS, n as u64);
            recorder.add(names::IGP_SETTLED_NODES, settled);
        }
        recorder.event(names::EV_IGP_SPF, || {
            netdiag_obs::EventPayload::new()
                .field("as", as_id.index())
                .field("routers", n)
                .field("settled", settled)
        });

        AsIgp {
            as_id,
            routers,
            local,
            intra_off,
            intra,
            dist,
            next_hop,
        }
    }

    /// The AS this state belongs to.
    pub fn as_id(&self) -> AsId {
        self.as_id
    }

    /// Shortest-path distance, or `None` if `to` is unreachable from `from`.
    ///
    /// # Panics
    ///
    /// Panics if either router is not in this AS.
    // hot
    pub fn dist(&self, from: RouterId, to: RouterId) -> Option<u64> {
        let d = self.dist[self.local.of(from) * self.routers.len() + self.local.of(to)];
        (d != INF).then_some(d)
    }

    /// First hop on the shortest path from `from` to `to`.
    ///
    /// Returns `None` when unreachable or when `from == to`.
    ///
    /// # Panics
    ///
    /// Panics if either router is not in this AS.
    pub fn next_hop(&self, from: RouterId, to: RouterId) -> Option<RouterId> {
        let h = self.next_hop[self.local.of(from) * self.routers.len() + self.local.of(to)];
        (h != NO_HOP).then_some(RouterId(h))
    }

    /// True if an intra-AS path currently exists between the two routers.
    pub fn reachable(&self, from: RouterId, to: RouterId) -> bool {
        self.dist(from, to).is_some()
    }

    /// *All* equal-cost first hops from `from` toward `to` (ECMP set),
    /// sorted by router id. Empty when unreachable or `from == to`.
    ///
    /// The deterministic [`AsIgp::next_hop`] is always a member of this
    /// set; the data plane uses the full set for flow-based load balancing
    /// (what Paris traceroute enumerates).
    pub fn next_hops(
        &self,
        topology: &Topology,
        links: &LinkState,
        from: RouterId,
        to: RouterId,
    ) -> Vec<RouterId> {
        if from == to {
            return Vec::new();
        }
        let Some(total) = self.dist(from, to) else {
            return Vec::new();
        };
        let mut hops: Vec<RouterId> = topology
            .adjacency(from)
            .iter()
            .filter(|e| {
                e.kind == LinkKind::Intra
                    && links.is_up(e.link)
                    && self.local.get(e.peer).is_some()
                    && self
                        .dist(e.peer, to)
                        .is_some_and(|rest| u64::from(e.weight) + rest == total)
            })
            .map(|e| e.peer)
            .collect();
        hops.sort_unstable();
        hops.dedup();
        hops
    }

    /// Routers of this AS in local order.
    pub fn routers(&self) -> &[RouterId] {
        &self.routers
    }

    /// Local indices of sources whose shortest-path DAG traverses any of
    /// the `failed` links — the cone that must be recomputed.
    ///
    /// Exact, not conservative: relative to the pre-failure distance
    /// matrix, some shortest path from source `s` uses edge `(u, v)` iff
    /// the edge is *tight* from `s` (`dist[s][u] + w(u→v) == dist[s][v]`
    /// or the reverse orientation). Sources outside the cone keep every
    /// one of their old shortest paths, so their distances, deterministic
    /// first hops and ECMP sets are all provably unchanged.
    fn affected_sources(&self, topology: &Topology, failed: &[LinkId]) -> Vec<usize> {
        let n = self.routers.len();
        if n == 0 {
            return Vec::new();
        }
        let mut hit = vec![false; n];
        for &lid in failed {
            let link = topology.link(lid);
            if link.kind != LinkKind::Intra {
                continue;
            }
            let (Some(ul), Some(vl)) = (self.local.get(link.a), self.local.get(link.b)) else {
                continue;
            };
            let w_uv = u64::from(link.weight_from(link.a));
            let w_vu = u64::from(link.weight_from(link.b));
            for (i, row) in self.dist.chunks_exact(n).enumerate() {
                if hit[i] {
                    continue;
                }
                let (du, dv) = (row[ul], row[vl]);
                if (du != INF && du + w_uv == dv) || (dv != INF && dv + w_vu == du) {
                    hit[i] = true;
                }
            }
        }
        hit.iter()
            .enumerate()
            .filter_map(|(i, &h)| h.then_some(i))
            .collect()
    }
}

/// Single-source Dijkstra over the local intra-domain CSR (up links
/// only), writing distances and raw first-hop ids into the provided flat
/// rows. `done` and `heap` are caller-provided scratch — `done` reset to
/// `false`, `heap` handed back empty (the main loop drains it) — so the
/// per-source loop allocates nothing once the heap's backing buffer has
/// grown to the frontier's high-water mark. Returns the number of
/// settled nodes.
///
/// Tie-breaking is deterministic: on equal distance the path through the
/// lower-id predecessor wins (heap pops `(dist, local_index)` in order —
/// local indices ascend with router id — and later relaxations require
/// strictly smaller distance).
///
/// Heap entries are `(Reverse(dist), local index, first hop raw id)`.
// hot
#[allow(clippy::too_many_arguments)]
fn dijkstra(
    intra_off: &[u32],
    intra: &[IntraEdge],
    links: &LinkState,
    routers: &[RouterId],
    src_local: usize,
    dist_row: &mut [u64],
    nh_row: &mut [u32],
    done: &mut [bool],
    heap: &mut BinaryHeap<(Reverse<u64>, u32, u32)>,
) -> u64 {
    debug_assert!(heap.is_empty(), "scratch heap must be handed back drained");
    dist_row[src_local] = 0;
    heap.push((Reverse(0), src_local as u32, NO_HOP));
    let mut settled: u64 = 0;

    while let Some((Reverse(d), u, first)) = heap.pop() {
        let ul = u as usize;
        if done[ul] {
            continue;
        }
        done[ul] = true;
        settled += 1;
        nh_row[ul] = first;
        for e in &intra[intra_off[ul] as usize..intra_off[ul + 1] as usize] {
            if !links.is_up(e.link) {
                continue;
            }
            debug_assert!(e.weight >= 1, "IGP weights must be >= 1");
            let vl = e.peer as usize;
            let nd = d + u64::from(e.weight);
            if nd < dist_row[vl] {
                dist_row[vl] = nd;
                let first_hop = if ul == src_local {
                    routers[vl].0
                } else {
                    first
                };
                heap.push((Reverse(nd), e.peer, first_hop));
            }
        }
    }
    nh_row[src_local] = NO_HOP;
    settled
}

/// Per-AS IGP state for an entire topology.
///
/// Each AS's converged tables sit behind an [`Arc`], so cloning an `Igp`
/// is O(#ASes) pointer bumps. A recompute replaces the affected AS's Arc
/// wholesale; untouched ASes keep sharing their tables with every clone.
#[derive(Clone, Debug)]
pub struct Igp {
    per_as: Vec<Arc<AsIgp>>,
}

impl Igp {
    /// Computes SPF for every AS.
    pub fn compute(topology: &Topology, links: &LinkState) -> Self {
        Self::compute_recorded(topology, links, &RecorderHandle::noop())
    }

    /// [`Igp::compute`] reporting SPF counters to `recorder`.
    pub fn compute_recorded(
        topology: &Topology,
        links: &LinkState,
        recorder: &RecorderHandle,
    ) -> Self {
        let per_as = topology
            .ases()
            .iter()
            .map(|a| Arc::new(AsIgp::compute_recorded(topology, a.id, links, recorder)))
            .collect();
        Igp { per_as }
    }

    /// [`Igp::compute`] with the independent per-AS SPF runs fanned over
    /// `threads` scoped workers. Each AS's tables depend only on the
    /// immutable topology and link state, so the result is byte-identical
    /// to the sequential path regardless of scheduling: workers own
    /// disjoint contiguous chunks which are stitched back in AS order.
    pub fn compute_parallel(topology: &Topology, links: &LinkState, threads: usize) -> Self {
        let n = topology.as_count();
        if threads <= 1 || n < 2 {
            return Self::compute(topology, links);
        }
        let threads = threads.min(n);
        let chunk = n.div_ceil(threads);
        let ases = topology.ases();
        let mut per_as = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = ases
                .chunks(chunk)
                .map(|slice| {
                    s.spawn(move || {
                        slice
                            .iter()
                            .map(|a| Arc::new(AsIgp::compute(topology, a.id, links)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                per_as.extend(h.join().expect("SPF worker panicked"));
            }
        });
        Igp { per_as }
    }

    /// The converged state of one AS.
    pub fn of(&self, as_id: AsId) -> &AsIgp {
        &self.per_as[as_id.index()]
    }

    /// True when the AS's tables are shared with another `Igp` clone, i.e.
    /// replacing them breaks copy-on-write sharing.
    pub fn is_shared(&self, as_id: AsId) -> bool {
        Arc::strong_count(&self.per_as[as_id.index()]) > 1
    }

    /// Forces every per-AS table to be uniquely owned (a full deep copy),
    /// detaching this `Igp` from any sharing. Used to benchmark the cost
    /// the CoW representation avoids.
    pub fn unshare_all(&mut self) {
        for a in &mut self.per_as {
            Arc::make_mut(a);
        }
    }

    /// Recomputes a single AS after its intra-domain link state changed.
    pub fn recompute_as(&mut self, topology: &Topology, as_id: AsId, links: &LinkState) {
        self.recompute_as_recorded(topology, as_id, links, &RecorderHandle::noop());
    }

    /// [`Igp::recompute_as`] reporting SPF counters to `recorder`.
    pub fn recompute_as_recorded(
        &mut self,
        topology: &Topology,
        as_id: AsId,
        links: &LinkState,
        recorder: &RecorderHandle,
    ) {
        self.per_as[as_id.index()] =
            Arc::new(AsIgp::compute_recorded(topology, as_id, links, recorder));
    }

    /// Incrementally updates one AS after the given links went down,
    /// recomputing only the cone of sources whose shortest-path DAG used
    /// a failed edge.
    ///
    /// Produces the exact same tables as [`Igp::recompute_as_recorded`]
    /// (same distances, same deterministic tie-breaks, same ECMP sets) —
    /// unaffected sources keep all their old shortest paths, so skipping
    /// them is lossless. When *no* source is affected the shared per-AS
    /// table is left untouched: no copy-on-write break, no allocation.
    ///
    /// Only valid for link *failures* (distances can only grow); repairs
    /// must go through a full recompute.
    pub fn delta_fail_links_recorded(
        &mut self,
        topology: &Topology,
        as_id: AsId,
        links: &LinkState,
        failed: &[LinkId],
        recorder: &RecorderHandle,
    ) -> SpfDelta {
        let affected = self.per_as[as_id.index()].affected_sources(topology, failed);
        if affected.is_empty() {
            return SpfDelta::default();
        }
        let a = Arc::make_mut(&mut self.per_as[as_id.index()]);
        let mut delta = SpfDelta {
            recomputed: affected.len(),
            ..SpfDelta::default()
        };
        let n = a.routers.len();
        let mut old_dist = vec![INF; n];
        let mut done = vec![false; n];
        let mut heap = BinaryHeap::new();
        let mut settled: u64 = 0;
        for &i in &affected {
            let src = a.routers[i];
            let row = i * n..(i + 1) * n;
            old_dist.copy_from_slice(&a.dist[row.clone()]);
            a.dist[row.clone()].fill(INF);
            a.next_hop[row.clone()].fill(NO_HOP);
            done.fill(false);
            settled += dijkstra(
                &a.intra_off,
                &a.intra,
                links,
                &a.routers,
                i,
                &mut a.dist[row.clone()],
                &mut a.next_hop[row.clone()],
                &mut done,
                &mut heap,
            );
            if a.dist[row.clone()] != old_dist[..] {
                delta.dirty_sources.push(src);
                for (j, (&new_d, &old_d)) in a.dist[row].iter().zip(old_dist.iter()).enumerate() {
                    if old_d != INF && new_d == INF && src < a.routers[j] {
                        delta.lost_pairs.push((src, a.routers[j]));
                    }
                }
            }
        }
        if recorder.enabled() {
            recorder.add(names::IGP_SPF_RUNS, affected.len() as u64);
            recorder.add(names::IGP_SETTLED_NODES, settled);
            recorder.add(names::IGP_SPF_DELTA_NODES, delta.recomputed as u64);
        }
        recorder.event(names::EV_IGP_SPF, || {
            netdiag_obs::EventPayload::new()
                .field("as", as_id.index())
                .field("routers", n)
                .field("settled", settled)
                .field("delta", delta.recomputed)
        });
        delta
    }

    /// Convenience: distance between two routers of the same AS.
    ///
    /// # Panics
    ///
    /// Panics if the routers are in different ASes.
    pub fn dist(&self, topology: &Topology, from: RouterId, to: RouterId) -> Option<u64> {
        let a = topology.as_of_router(from);
        assert_eq!(a, topology.as_of_router(to), "routers in different ASes");
        self.of(a).dist(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdiag_topology::{AsKind, LinkId, TopologyBuilder};

    /// A 4-router diamond: r0-r1 (1), r0-r2 (2), r1-r3 (1), r2-r3 (1).
    fn diamond() -> (Topology, [RouterId; 4]) {
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Core, "A");
        let r0 = b.add_router(a, "r0");
        let r1 = b.add_router(a, "r1");
        let r2 = b.add_router(a, "r2");
        let r3 = b.add_router(a, "r3");
        b.add_intra_link(r0, r1, 1);
        b.add_intra_link(r0, r2, 2);
        b.add_intra_link(r1, r3, 1);
        b.add_intra_link(r2, r3, 1);
        (b.build().unwrap(), [r0, r1, r2, r3])
    }

    #[test]
    fn shortest_path_distances() {
        let (t, [r0, r1, r2, r3]) = diamond();
        let links = LinkState::all_up(&t);
        let igp = Igp::compute(&t, &links);
        let a = igp.of(AsId(0));
        assert_eq!(a.dist(r0, r3), Some(2)); // via r1
        assert_eq!(a.dist(r0, r2), Some(2)); // direct
        assert_eq!(a.next_hop(r0, r3), Some(r1));
        assert_eq!(a.next_hop(r0, r0), None);
        assert_eq!(a.dist(r0, r0), Some(0));
        assert_eq!(a.dist(r3, r0), Some(2)); // symmetric weights
        assert_eq!(a.next_hop(r1, r2), Some(r3)); // 1+1=2 via r3 vs 1+2=3 via r0
    }

    #[test]
    fn next_hop_via_r3_for_r1_to_r2() {
        let (t, [_, r1, r2, r3]) = diamond();
        let links = LinkState::all_up(&t);
        let igp = Igp::compute(&t, &links);
        // r1->r2: via r3 costs 2, via r0 costs 3.
        assert_eq!(igp.of(AsId(0)).next_hop(r1, r2), Some(r3));
    }

    #[test]
    fn reroute_after_link_failure() {
        let (t, [r0, r1, _, r3]) = diamond();
        let mut links = LinkState::all_up(&t);
        // Fail r0-r1 (link 0): r0 must now reach r3 via r2.
        links.set_down(t.link_between(r0, r1).unwrap());
        let igp = Igp::compute(&t, &links);
        let a = igp.of(AsId(0));
        assert_eq!(a.dist(r0, r3), Some(3));
        assert_eq!(a.next_hop(r0, r3), a.next_hop(r0, r3));
        assert_eq!(a.dist(r0, r1), Some(4)); // r0-r2-r3-r1
    }

    #[test]
    fn partition_detected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Core, "A");
        let r0 = b.add_router(a, "r0");
        let r1 = b.add_router(a, "r1");
        let l = b.add_intra_link(r0, r1, 5);
        let t = b.build().unwrap();
        let mut links = LinkState::all_up(&t);
        links.set_down(l);
        let igp = Igp::compute(&t, &links);
        assert_eq!(igp.of(AsId(0)).dist(r0, r1), None);
        assert!(!igp.of(AsId(0)).reachable(r0, r1));
        assert_eq!(igp.of(AsId(0)).next_hop(r0, r1), None);
    }

    #[test]
    fn recompute_single_as() {
        let (t, [r0, r1, _, _]) = diamond();
        let mut links = LinkState::all_up(&t);
        let mut igp = Igp::compute(&t, &links);
        assert_eq!(igp.of(AsId(0)).dist(r0, r1), Some(1));
        links.set_down(LinkId(0));
        igp.recompute_as(&t, AsId(0), &links);
        assert_eq!(igp.of(AsId(0)).dist(r0, r1), Some(4));
    }

    #[test]
    fn delta_fail_matches_full_recompute() {
        let (t, routers) = diamond();
        for lid in 0..4u32 {
            let mut links = LinkState::all_up(&t);
            let mut inc = Igp::compute(&t, &links);
            links.set_down(LinkId(lid));
            let delta = inc.delta_fail_links_recorded(
                &t,
                AsId(0),
                &links,
                &[LinkId(lid)],
                &netdiag_obs::RecorderHandle::noop(),
            );
            let full = Igp::compute(&t, &links);
            for &a in &routers {
                for &b in &routers {
                    assert_eq!(inc.of(AsId(0)).dist(a, b), full.of(AsId(0)).dist(a, b));
                    assert_eq!(
                        inc.of(AsId(0)).next_hop(a, b),
                        full.of(AsId(0)).next_hop(a, b)
                    );
                    assert_eq!(
                        inc.of(AsId(0)).next_hops(&t, &links, a, b),
                        full.of(AsId(0)).next_hops(&t, &links, a, b)
                    );
                }
            }
            assert!(delta.recomputed > 0, "every diamond edge is on some tree");
            assert!(delta.lost_pairs.is_empty(), "diamond stays connected");
        }
    }

    #[test]
    fn delta_skips_unused_edge_without_cow_break() {
        // Triangle where the r0-r2 edge (weight 5) is on no shortest path.
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Core, "A");
        let r0 = b.add_router(a, "r0");
        let r1 = b.add_router(a, "r1");
        let r2 = b.add_router(a, "r2");
        b.add_intra_link(r0, r1, 1);
        b.add_intra_link(r1, r2, 1);
        let unused = b.add_intra_link(r0, r2, 5);
        let t = b.build().unwrap();
        let mut links = LinkState::all_up(&t);
        let mut inc = Igp::compute(&t, &links);
        let shared = inc.clone();
        links.set_down(unused);
        let delta = inc.delta_fail_links_recorded(
            &t,
            AsId(0),
            &links,
            &[unused],
            &netdiag_obs::RecorderHandle::noop(),
        );
        assert_eq!(delta.recomputed, 0);
        assert!(delta.dirty_sources.is_empty());
        assert!(inc.is_shared(AsId(0)), "no-op delta must not break CoW");
        assert_eq!(inc.of(AsId(0)).dist(r0, r2), Some(2));
        drop(shared);
    }

    #[test]
    fn delta_reports_lost_pairs_on_partition() {
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Core, "A");
        let r0 = b.add_router(a, "r0");
        let r1 = b.add_router(a, "r1");
        let l = b.add_intra_link(r0, r1, 5);
        let t = b.build().unwrap();
        let mut links = LinkState::all_up(&t);
        let mut inc = Igp::compute(&t, &links);
        links.set_down(l);
        let delta = inc.delta_fail_links_recorded(
            &t,
            AsId(0),
            &links,
            &[l],
            &netdiag_obs::RecorderHandle::noop(),
        );
        assert_eq!(delta.lost_pairs, vec![(r0, r1)]);
        assert_eq!(delta.dirty_sources, vec![r0, r1]);
        assert!(!inc.of(AsId(0)).reachable(r0, r1));
    }

    #[test]
    fn inter_links_ignored_by_spf() {
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Core, "A");
        let c = b.add_as(AsKind::Stub, "C");
        let r0 = b.add_router(a, "r0");
        let r1 = b.add_router(a, "r1");
        b.add_intra_link(r0, r1, 3);
        let c0 = b.add_router(c, "c0");
        b.add_inter_link(r1, c0, netdiag_topology::LinkRelationship::ProviderCustomer);
        let t = b.build().unwrap();
        let igp = Igp::compute(&t, &LinkState::all_up(&t));
        // The inter link exists but SPF state only covers AS members.
        assert_eq!(igp.of(a).dist(r0, r1), Some(3));
        assert_eq!(igp.of(c).dist(c0, c0), Some(0));
    }

    #[test]
    fn parallel_compute_matches_sequential() {
        let (t, routers) = diamond();
        let links = LinkState::all_up(&t);
        let seq = Igp::compute(&t, &links);
        let par = Igp::compute_parallel(&t, &links, 4);
        for &a in &routers {
            for &b in &routers {
                assert_eq!(seq.of(AsId(0)).dist(a, b), par.of(AsId(0)).dist(a, b));
                assert_eq!(
                    seq.of(AsId(0)).next_hop(a, b),
                    par.of(AsId(0)).next_hop(a, b)
                );
            }
        }
    }

    #[test]
    fn forwarding_along_next_hops_terminates() {
        // Walk next hops from every router to every other; must reach the
        // destination within n hops (loop-freedom).
        let (t, routers) = diamond();
        let igp = Igp::compute(&t, &LinkState::all_up(&t));
        let a = igp.of(AsId(0));
        for &s in &routers {
            for &d in &routers {
                let mut cur = s;
                let mut hops = 0;
                while cur != d {
                    cur = a.next_hop(cur, d).expect("reachable");
                    hops += 1;
                    assert!(hops <= routers.len(), "forwarding loop");
                }
            }
        }
    }
}

#[cfg(test)]
mod ecmp_tests {
    use super::*;
    use netdiag_topology::{AsKind, TopologyBuilder};

    /// Square with equal weights: two equal-cost paths r0->r3.
    fn square() -> (Topology, [RouterId; 4]) {
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Core, "A");
        let r0 = b.add_router(a, "r0");
        let r1 = b.add_router(a, "r1");
        let r2 = b.add_router(a, "r2");
        let r3 = b.add_router(a, "r3");
        b.add_intra_link(r0, r1, 1);
        b.add_intra_link(r0, r2, 1);
        b.add_intra_link(r1, r3, 1);
        b.add_intra_link(r2, r3, 1);
        (b.build().unwrap(), [r0, r1, r2, r3])
    }

    #[test]
    fn ecmp_set_contains_all_equal_cost_hops() {
        let (t, [r0, r1, r2, r3]) = square();
        let links = LinkState::all_up(&t);
        let igp = Igp::compute(&t, &links);
        let a = igp.of(AsId(0));
        assert_eq!(a.next_hops(&t, &links, r0, r3), vec![r1, r2]);
        // The deterministic next hop is an ECMP member.
        let nh = a.next_hop(r0, r3).unwrap();
        assert!(a.next_hops(&t, &links, r0, r3).contains(&nh));
        // Unequal costs collapse the set.
        assert_eq!(a.next_hops(&t, &links, r0, r1), vec![r1]);
        assert!(a.next_hops(&t, &links, r0, r0).is_empty());
    }

    #[test]
    fn ecmp_set_respects_link_failures() {
        let (t, [r0, r1, _, r3]) = square();
        let mut links = LinkState::all_up(&t);
        links.set_down(t.link_between(r0, r1).unwrap());
        let igp = Igp::compute(&t, &links);
        let a = igp.of(AsId(0));
        assert_eq!(a.next_hops(&t, &links, r0, r3), vec![RouterId(2)]);
    }
}
