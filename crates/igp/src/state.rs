//! Dynamic link up/down state, shared across the routing layers.

use netdiag_topology::{LinkId, Topology};

/// Up/down state for every link of a topology.
///
/// Indexed by [`LinkId`]; links start up. This is the single source of truth
/// for the data plane, the IGP and eBGP session liveness.
#[derive(Clone, Debug)]
pub struct LinkState {
    up: Vec<bool>,
}

impl LinkState {
    /// All links up.
    pub fn all_up(topology: &Topology) -> Self {
        LinkState {
            up: vec![true; topology.link_count()],
        }
    }

    /// Is `l` currently up?
    pub fn is_up(&self, l: LinkId) -> bool {
        self.up[l.index()]
    }

    /// Marks `l` down. Returns the previous state.
    pub fn set_down(&mut self, l: LinkId) -> bool {
        std::mem::replace(&mut self.up[l.index()], false)
    }

    /// Marks `l` up. Returns the previous state.
    pub fn set_up(&mut self, l: LinkId) -> bool {
        std::mem::replace(&mut self.up[l.index()], true)
    }

    /// Iterates over all currently-down links.
    pub fn down_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.up
            .iter()
            .enumerate()
            .filter(|(_, &u)| !u)
            .map(|(i, _)| LinkId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdiag_topology::{AsKind, TopologyBuilder};

    fn tiny() -> Topology {
        let mut b = TopologyBuilder::new();
        let a = b.add_as(AsKind::Core, "A");
        let r1 = b.add_router(a, "r1");
        let r2 = b.add_router(a, "r2");
        let r3 = b.add_router(a, "r3");
        b.add_intra_link(r1, r2, 1);
        b.add_intra_link(r2, r3, 1);
        b.build().unwrap()
    }

    #[test]
    fn starts_all_up() {
        let t = tiny();
        let s = LinkState::all_up(&t);
        assert!(s.is_up(LinkId(0)));
        assert!(s.is_up(LinkId(1)));
        assert_eq!(s.down_links().count(), 0);
    }

    #[test]
    fn set_down_and_up_roundtrip() {
        let t = tiny();
        let mut s = LinkState::all_up(&t);
        assert!(s.set_down(LinkId(1)));
        assert!(!s.is_up(LinkId(1)));
        assert_eq!(s.down_links().collect::<Vec<_>>(), vec![LinkId(1)]);
        assert!(
            !s.set_down(LinkId(1)),
            "second set_down reports prior state"
        );
        assert!(!s.set_up(LinkId(1)));
        assert!(s.is_up(LinkId(1)));
    }
}
