//! Property-based tests of the IGP: SPF distances checked against a
//! Floyd–Warshall reference, loop-freedom of hop-by-hop forwarding, and
//! monotonicity under link failures.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use proptest::prelude::*;

use netdiag_igp::{Igp, LinkState};
use netdiag_topology::{AsId, AsKind, LinkId, RouterId, Topology, TopologyBuilder};

/// Builds a random connected single-AS topology from a proptest-generated
/// edge list (indices into an `n`-node ring plus chords, guaranteeing
/// connectivity).
fn random_as(n: usize, chords: &[(usize, usize, u32)]) -> Topology {
    let mut b = TopologyBuilder::new();
    let a = b.add_as(AsKind::Core, "A");
    let routers: Vec<RouterId> = (0..n).map(|i| b.add_router(a, format!("r{i}"))).collect();
    // Ring for connectivity.
    for i in 0..n {
        b.add_intra_link(routers[i], routers[(i + 1) % n], 1 + (i as u32 % 5));
    }
    // Chords are generated against a fixed modulus; re-filter against the
    // actual ring size so no chord duplicates a ring edge.
    let mut used = std::collections::BTreeSet::new();
    for &(i, j, w) in chords {
        if i >= n || j >= n || i == j {
            continue;
        }
        let (lo, hi) = (i.min(j), i.max(j));
        let ring_edge = hi - lo == 1 || (lo == 0 && hi == n - 1);
        if ring_edge || !used.insert((lo, hi)) {
            continue;
        }
        b.add_intra_link(routers[lo], routers[hi], 1 + w % 9);
    }
    b.build().unwrap()
}

/// Floyd–Warshall all-pairs distances over the up intra links.
fn reference_distances(t: &Topology, links: &LinkState) -> Vec<Vec<Option<u64>>> {
    let n = t.router_count();
    let mut d = vec![vec![None; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = Some(0);
    }
    for l in t.links() {
        if links.is_up(l.id) {
            let (a, b) = (l.a.index(), l.b.index());
            let (w_ab, w_ba) = (u64::from(l.weight_ab), u64::from(l.weight_ba));
            if d[a][b].is_none_or(|cur| w_ab < cur) {
                d[a][b] = Some(w_ab);
            }
            if d[b][a].is_none_or(|cur| w_ba < cur) {
                d[b][a] = Some(w_ba);
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if let (Some(ik), Some(kj)) = (d[i][k], d[k][j]) {
                    if d[i][j].is_none_or(|cur| ik + kj < cur) {
                        d[i][j] = Some(ik + kj);
                    }
                }
            }
        }
    }
    d
}

/// Distinct chord set generator (avoids builder duplicate-link errors).
fn chords(n: usize) -> impl Strategy<Value = Vec<(usize, usize, u32)>> {
    proptest::collection::btree_set((0..n, 0..n), 0..6).prop_map(move |set| {
        let mut seen = std::collections::BTreeSet::new();
        set.into_iter()
            .filter_map(|(i, j)| {
                let (i, j) = (i.min(j), i.max(j));
                // Exclude self, ring edges, and duplicates.
                if i == j || (i + 1) % n == j || (j + 1) % n == i || j == n - 1 && i == 0 {
                    return None;
                }
                seen.insert((i, j))
                    .then_some((i, j, ((i * 7 + j * 13) % 9) as u32))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// SPF distances equal the Floyd–Warshall reference, with all links up
    /// and after failing one link.
    #[test]
    fn spf_matches_reference(n in 3usize..10, chords in chords(10), fail in 0usize..20) {
        let t = random_as(n, &chords);
        let mut links = LinkState::all_up(&t);
        // Optionally fail one link.
        if fail < t.link_count() {
            links.set_down(LinkId(fail as u32));
        }
        let igp = Igp::compute(&t, &links);
        let reference = reference_distances(&t, &links);
        let a = igp.of(AsId(0));
        for (i, row) in reference.iter().enumerate().take(n) {
            for (j, &expected) in row.iter().enumerate().take(n) {
                prop_assert_eq!(
                    a.dist(RouterId(i as u32), RouterId(j as u32)),
                    expected,
                    "dist({},{}) mismatch",
                    i,
                    j
                );
            }
        }
    }

    /// Hop-by-hop forwarding along next hops always reaches the target in
    /// at most n-1 hops when a path exists.
    #[test]
    fn forwarding_terminates(n in 3usize..10, chords in chords(10), fail in 0usize..20) {
        let t = random_as(n, &chords);
        let mut links = LinkState::all_up(&t);
        if fail < t.link_count() {
            links.set_down(LinkId(fail as u32));
        }
        let igp = Igp::compute(&t, &links);
        let a = igp.of(AsId(0));
        for i in 0..n {
            for j in 0..n {
                let (src, dst) = (RouterId(i as u32), RouterId(j as u32));
                if a.dist(src, dst).is_none() {
                    prop_assert!(a.next_hop(src, dst).is_none());
                    continue;
                }
                let mut cur = src;
                let mut hops = 0;
                while cur != dst {
                    let nh = a.next_hop(cur, dst).expect("reachable");
                    // Each hop strictly decreases the remaining distance.
                    prop_assert!(a.dist(nh, dst) < a.dist(cur, dst));
                    cur = nh;
                    hops += 1;
                    prop_assert!(hops < n, "loop detected");
                }
            }
        }
    }

    /// Failing a link never shortens any distance.
    #[test]
    fn failure_monotonicity(n in 3usize..10, chords in chords(10), fail_idx in 0usize..20) {
        let t = random_as(n, &chords);
        let links_before = LinkState::all_up(&t);
        let igp_before = Igp::compute(&t, &links_before);
        let mut links_after = LinkState::all_up(&t);
        links_after.set_down(LinkId((fail_idx % t.link_count()) as u32));
        let igp_after = Igp::compute(&t, &links_after);
        let (a0, a1) = (igp_before.of(AsId(0)), igp_after.of(AsId(0)));
        for i in 0..n {
            for j in 0..n {
                let (src, dst) = (RouterId(i as u32), RouterId(j as u32));
                match (a0.dist(src, dst), a1.dist(src, dst)) {
                    (Some(before), Some(after)) => prop_assert!(after >= before),
                    (None, Some(_)) => prop_assert!(false, "failure created a path"),
                    _ => {}
                }
            }
        }
    }
}
