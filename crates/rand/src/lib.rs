//! Minimal in-tree stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the exact slice of `rand` it uses: [`rngs::StdRng`] (ChaCha12, matching
//! upstream's choice for `StdRng` in rand 0.8), [`SeedableRng::seed_from_u64`]
//! (PCG32-based seed expansion, same constants as `rand_core` 0.6),
//! [`Rng::gen_range`] (Lemire widening-multiply rejection sampling),
//! [`Rng::gen_bool`] (64-bit Bernoulli), and [`seq::SliceRandom`]
//! (Fisher–Yates `shuffle` / `choose`).
//!
//! The algorithms mirror upstream so streams are stable and deterministic;
//! every consumer in this workspace only relies on *internal* determinism
//! (same seed → same results, forever), which this crate guarantees.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via PCG32 (same constants and
    /// output function as `rand_core` 0.6, so streams match upstream).
    fn seed_from_u64(state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut state = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from the full-width uniform distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Upstream: sign bit of a u32 draw.
        (rng.next_u32() as i32) < 0
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Upstream "Standard" float: 53 random bits scaled to [0, 1).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform sampling over a half-open or inclusive integer range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Samples uniformly from `[low, high]`. Panics if the range is empty.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($ty:ty, $uty:ty, $large:ty, $wide:ty) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let range = (high as $uty).wrapping_sub(low as $uty) as $large;
                // Lemire widening-multiply rejection, as in rand 0.8's
                // `UniformInt::sample_single`.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = <$large as Standard>::sample(rng);
                    let prod = (v as $wide) * (range as $wide);
                    let lo = prod as $large;
                    let hi = (prod >> <$large>::BITS) as $large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let range = ((high as $uty).wrapping_sub(low as $uty) as $large).wrapping_add(1);
                if range == 0 {
                    // Span covers the whole type: every draw is valid.
                    return <$large as Standard>::sample(rng) as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = <$large as Standard>::sample(rng);
                    let prod = (v as $wide) * (range as $wide);
                    let lo = prod as $large;
                    let hi = (prod >> <$large>::BITS) as $large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

impl_sample_uniform!(u8, u8, u32, u64);
impl_sample_uniform!(u16, u16, u32, u64);
impl_sample_uniform!(u32, u32, u32, u64);
impl_sample_uniform!(u64, u64, u64, u128);
impl_sample_uniform!(usize, usize, u64, u128);
impl_sample_uniform!(i32, u32, u32, u64);
impl_sample_uniform!(i64, u64, u64, u128);

impl SampleUniform for f64 {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "cannot sample empty range");
        let unit = <f64 as Standard>::sample(rng); // in [0, 1)
        let v = low + unit * (high - low);
        // Guard against rounding up to the excluded endpoint.
        if v < high {
            v
        } else {
            low
        }
    }

    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low <= high, "cannot sample empty range");
        let unit = <f64 as Standard>::sample(rng);
        (low + unit * (high - low)).min(high)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the full-width uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Mirrors rand 0.8's `Bernoulli`: `p` is converted to a 64-bit
    /// fixed-point threshold and compared against one `u64` draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside [0, 1]");
        if p >= 1.0 {
            // Consume nothing, as upstream's p == 1 special case.
            return true;
        }
        let p_int = (p * (2.0f64).powi(64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Number of 32-bit words ChaCha buffers per refill (4 blocks, the
    /// same wide buffer `rand_chacha` uses).
    const BUF_WORDS: usize = 64;

    /// The standard generator: ChaCha with 12 rounds, exactly as `StdRng`
    /// in rand 0.8 (via `rand_chacha::ChaCha12Rng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        /// Key schedule words (the seed).
        key: [u32; 8],
        /// 64-bit block counter of the *next* 4-block refill.
        counter: u64,
        /// Buffered keystream output.
        buf: [u32; BUF_WORDS],
        /// Next unread index into `buf`.
        index: usize,
    }

    impl StdRng {
        fn refill(&mut self) {
            for block in 0..4 {
                let out = chacha12_block(&self.key, self.counter.wrapping_add(block as u64));
                self.buf[block * 16..block * 16 + 16].copy_from_slice(&out);
            }
            self.counter = self.counter.wrapping_add(4);
            self.index = 0;
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (i, chunk) in seed.chunks_exact(4).enumerate() {
                key[i] = u32::from_le_bytes(
                    chunk
                        .try_into()
                        .expect("chunks_exact(4) yields 4-byte chunks"),
                );
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.refill();
            }
            let word = self.buf[self.index];
            self.index += 1;
            word
        }

        fn next_u64(&mut self) -> u64 {
            // BlockRng semantics: two consecutive u32s, low word first,
            // spanning a refill boundary if necessary.
            let lo = self.next_u32() as u64;
            let hi = self.next_u32() as u64;
            (hi << 32) | lo
        }
    }

    /// One 12-round ChaCha block: 16 output words for (key, counter).
    fn chacha12_block(key: &[u32; 8], counter: u64) -> [u32; 16] {
        const C: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&C);
        state[4..12].copy_from_slice(key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        // state[14], state[15]: stream nonce, zero for seeded StdRng.
        let mut x = state;
        for _ in 0..6 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for i in 0..16 {
            x[i] = x[i].wrapping_add(state[i]);
        }
        x
    }

    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }
}

pub mod seq {
    //! Sequence helpers: shuffling and choosing.

    use super::{Rng, RngCore};

    /// Draws an index uniformly from `[0, ubound)`, using a 32-bit draw
    /// when the bound fits (matching `rand::seq::index::sample` /
    /// `gen_index` in rand 0.8, which keeps streams identical across
    /// 32- and 64-bit platforms).
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates, upstream order).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u8..=24);
            assert!(w <= 24);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_edges_and_rates() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn u64_spans_refill_boundary_consistently() {
        // Drain an odd number of u32s so next_u64 straddles the 64-word
        // buffer, then check a fresh clone agrees word-for-word.
        let mut a = StdRng::seed_from_u64(5);
        for _ in 0..63 {
            a.next_u32();
        }
        let straddle = a.next_u64();
        let mut b = StdRng::seed_from_u64(5);
        let words: Vec<u32> = (0..66).map(|_| b.next_u32()).collect();
        assert_eq!(straddle, ((words[64] as u64) << 32) | words[63] as u64);
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([42u8].choose(&mut rng) == Some(&42));
    }
}
