//! Structured trace events: typed payloads and their JSON rendering.
//!
//! An [`Event`] is one causally meaningful step of a run — an SPF
//! recompute, a BGP message delivery, a greedy hitting-set pick — stamped
//! with the per-trial context `(placement, trial, phase)` and a logical
//! sequence number from [`crate::trace`]. Payloads are ordered lists of
//! typed `(key, value)` fields, so rendering is byte-stable: same run,
//! same bytes.

use crate::push_json_string;

/// The phase of a trial an event was emitted in.
///
/// Phases mirror the span vocabulary (`trial.setup` … `trial.diagnose`):
/// placement preparation and failure drawing happen in [`Phase::Setup`],
/// the remaining phases are installed by the experiment runner around the
/// corresponding trial steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Topology/control-plane setup, or failure-set sampling.
    Setup,
    /// Failure injection and reconvergence.
    Inject,
    /// Post-failure probe-mesh measurement.
    Measure,
    /// Diagnosis algorithm execution.
    Diagnose,
}

impl Phase {
    /// Stable lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::Inject => "inject",
            Phase::Measure => "measure",
            Phase::Diagnose => "diagnose",
        }
    }
}

/// One typed payload field value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Boolean.
    Bool(bool),
    /// String (rendered with JSON escapes).
    Str(String),
    /// Ordered list of values.
    List(Vec<Value>),
}

impl Value {
    fn render(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(v) => push_json_string(out, v),
            Value::List(vs) => {
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(u64::try_from(v).unwrap_or(u64::MAX))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

/// An ordered list of `(key, value)` payload fields.
///
/// Field order is the emission-site order, which keeps rendering
/// deterministic without sorting; builders chain [`EventPayload::field`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventPayload(pub Vec<(&'static str, Value)>);

impl EventPayload {
    /// An empty payload.
    pub fn new() -> Self {
        EventPayload(Vec::new())
    }

    /// Appends one field (builder-style).
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.0.push((key, value.into()));
        self
    }

    /// Looks up a field by key (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Renders as a compact JSON object in field order.
    pub fn render(&self, out: &mut String) {
        out.push('{');
        for (i, (key, value)) in self.0.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(out, key);
            out.push(':');
            value.render(out);
        }
        out.push('}');
    }
}

/// One structured trace event.
///
/// `placement`/`trial` use the sentinels [`crate::trace::NO_PLACEMENT`]
/// and [`crate::trace::SETUP_TRIAL`] when emitted outside the matching
/// scope; exporters render sentinels as JSON `null`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Registered `layer.event` name from [`crate::names`].
    pub name: &'static str,
    /// Placement (topology + sensor draw) index, or `NO_PLACEMENT`.
    pub placement: u32,
    /// Trial index within the placement, or `SETUP_TRIAL`.
    pub trial: u32,
    /// Trial phase the event belongs to.
    pub phase: Phase,
    /// Logical sequence number within the trial (resets per trial scope).
    pub seq: u64,
    /// Typed payload fields.
    pub payload: EventPayload,
}

impl Event {
    /// Deterministic export order: placements ascending, then trials with
    /// the setup sentinel first (`wrapping_add` maps `u32::MAX` to 0),
    /// then logical sequence.
    pub(crate) fn sort_key(&self) -> (u32, u32, u64) {
        (self.placement, self.trial.wrapping_add(1), self.seq)
    }

    /// Renders one JSONL line (no trailing newline). `wall_us`, when
    /// captured by the exporter, is the only nondeterministic field.
    pub fn render_jsonl(&self, out: &mut String, wall_us: Option<u64>) {
        out.push_str("{\"name\":");
        push_json_string(out, self.name);
        out.push_str(",\"placement\":");
        push_opt_id(out, self.placement);
        out.push_str(",\"trial\":");
        push_opt_id(out, self.trial);
        out.push_str(",\"phase\":\"");
        out.push_str(self.phase.as_str());
        out.push_str("\",\"seq\":");
        out.push_str(&self.seq.to_string());
        if let Some(us) = wall_us {
            out.push_str(",\"wall_us\":");
            out.push_str(&us.to_string());
        }
        out.push_str(",\"payload\":");
        self.payload.render(out);
        out.push('}');
    }
}

/// Renders a `u32` id, mapping the `u32::MAX` sentinel to `null`.
fn push_opt_id(out: &mut String, id: u32) {
    if id == u32::MAX {
        out.push_str("null");
    } else {
        out.push_str(&id.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_renders_in_field_order() {
        let p = EventPayload::new()
            .field("b", 2u64)
            .field("a", "x")
            .field("neg", -3i64)
            .field("ok", true)
            .field("list", vec![Value::U64(1), Value::Str("*".into())]);
        let mut s = String::new();
        p.render(&mut s);
        assert_eq!(
            s,
            "{\"b\":2,\"a\":\"x\",\"neg\":-3,\"ok\":true,\"list\":[1,\"*\"]}"
        );
    }

    #[test]
    fn jsonl_line_maps_sentinels_to_null() {
        let ev = Event {
            name: "hs.pick",
            placement: u32::MAX,
            trial: u32::MAX,
            phase: Phase::Diagnose,
            seq: 7,
            payload: EventPayload::new().field("edge", 3u64),
        };
        let mut s = String::new();
        ev.render_jsonl(&mut s, None);
        assert_eq!(
            s,
            "{\"name\":\"hs.pick\",\"placement\":null,\"trial\":null,\
             \"phase\":\"diagnose\",\"seq\":7,\"payload\":{\"edge\":3}}"
        );
    }

    #[test]
    fn setup_trial_sorts_before_trial_zero() {
        let mk = |trial, seq| Event {
            name: "x",
            placement: 0,
            trial,
            phase: Phase::Setup,
            seq,
            payload: EventPayload::new(),
        };
        assert!(mk(u32::MAX, 9).sort_key() < mk(0, 0).sort_key());
        assert!(mk(0, 1).sort_key() < mk(1, 0).sort_key());
    }
}
