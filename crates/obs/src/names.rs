//! The workspace's metric and trace-event vocabulary.
//!
//! Names follow a `layer.metric` scheme so reports group naturally when
//! sorted. Every instrumented crate pulls its constants from here — the
//! single place a future perf PR looks to see what is already measured.
//!
//! Structured trace events (the `EV_*` constants) share the registry so
//! the xtask `obs-unknown-name`/`obs-dead-name` lints keep the trace
//! vocabulary honest exactly like metric names.

// --- igp: link-state SPF ---------------------------------------------------

/// Counter: Dijkstra runs (one per router per AS recompute).
pub const IGP_SPF_RUNS: &str = "igp.spf_runs";
/// Counter: nodes settled across all SPF runs.
pub const IGP_SETTLED_NODES: &str = "igp.settled_nodes";
/// Counter: sources recomputed by delta-SPF (the affected cone — compare
/// against `igp.spf_runs` to see how much work the delta path skipped).
pub const IGP_SPF_DELTA_NODES: &str = "igp.spf.delta_nodes";

// --- bgp: message-driven convergence ---------------------------------------

/// Counter: BGP messages delivered (update + withdraw).
pub const BGP_MSGS: &str = "bgp.msgs";
/// Counter: decision-process invocations.
pub const BGP_DECISIONS: &str = "bgp.decisions";
/// Counter: `Bgp::run` convergence rounds.
pub const BGP_RUNS: &str = "bgp.runs";
/// Counter: prefixes inspected by scoped BGP replay after a failure (the
/// per-session adj-in index keeps this far below a full-table refresh).
pub const BGP_REPLAY_PREFIXES_SCOPED: &str = "bgp.replay.prefixes_scoped";

// --- sim: copy-on-write snapshots -------------------------------------------

/// Counter: full deep copies of simulator state (`Sim::deep_clone`).
pub const SIM_SNAPSHOT_DEEP_COPIES: &str = "sim.snapshot.deep_copies";
/// Counter: copy-on-write breaks — shared per-AS IGP tables or per-router
/// BGP state cloned because a mutation touched them.
pub const SIM_SNAPSHOT_COW_BREAKS: &str = "sim.snapshot.cow_breaks";

// --- probe: simulated measurements -----------------------------------------

/// Counter: traceroutes rendered.
pub const PROBE_TRACEROUTES: &str = "probe.traceroutes";
/// Counter: hops across all traceroutes.
pub const PROBE_HOPS: &str = "probe.hops";
/// Counter: hops that answered with a star (blocked AS).
pub const PROBE_BLOCKED_HOPS: &str = "probe.blocked_hops";

// --- hs: minimum hitting set ------------------------------------------------

/// Counter: greedy Algorithm-1 iterations (one per selected edge).
pub const HS_GREEDY_ITERS: &str = "hs.greedy_iters";
/// Histogram: candidate-edge count per solved instance.
pub const HS_CANDIDATES: &str = "hs.candidates";
/// Counter: bitset words touched by greedy scoring (popcount loops).
pub const HS_WORDS_SCANNED: &str = "hitting_set.words_scanned";

// --- feed: routing-data integration (ND-bgpigp) -----------------------------

/// Counter: edges forced into the hypothesis by IGP link-down messages.
pub const FEED_FORCED_EDGES: &str = "feed.forced_edges";
/// Counter: edges exonerated from failure sets by BGP withdrawals.
pub const FEED_EXONERATED_EDGES: &str = "feed.exonerated_edges";

// --- diag: whole-diagnosis results ------------------------------------------

/// Counter: diagnosis runs through the facade or algorithm entry points.
pub const DIAG_RUNS: &str = "diag.runs";
/// Histogram: hypothesis-set size per diagnosis.
pub const DIAG_HYPOTHESIS_SIZE: &str = "diag.hypothesis_size";

// --- report: structured diagnostic reports ----------------------------------

/// Counter: structured `DiagnosticReport`s built from diagnoses.
pub const REPORT_BUILDS: &str = "report.builds";
/// Histogram: issue count per built report.
pub const REPORT_ISSUES: &str = "report.issues";

// --- serve: the diagnosis daemon --------------------------------------------

/// Counter: client connections accepted by the daemon.
pub const SERVE_CONNECTIONS: &str = "serve.connections";
/// Counter: protocol requests handled (any op, success or error).
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Counter: requests answered with an error response.
pub const SERVE_ERRORS: &str = "serve.errors";
/// Span: one diagnose request, from dequeue to serialized response.
pub const SERVE_REQUEST: &str = "serve.request";
/// Gauge: pool queue depth — raised on submit, lowered when a worker
/// dequeues; current + high-water in stats (a level, not a histogram:
/// the counter/series API would monotone-aggregate a value that is
/// supposed to go back down).
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Histogram: client-observed request latency (nanoseconds) from the
/// load harness (`netdiag-serve bench`).
pub const SERVE_CLIENT_LATENCY: &str = "serve.client_latency";
/// Span: time a diagnose request waited in the pool queue (submit to
/// worker pickup).
pub const SERVE_PHASE_QUEUE: &str = "serve.phase.queue";
/// Span: restoring the converged baseline snapshot for one request.
pub const SERVE_PHASE_RESTORE: &str = "serve.phase.restore";
/// Span: running the diagnosis algorithm for one request.
pub const SERVE_PHASE_DIAGNOSE: &str = "serve.phase.diagnose";
/// Span: rendering the response (report build + serialization).
pub const SERVE_PHASE_RENDER: &str = "serve.phase.render";
/// Counter: flight-recorder dumps written (requests that breached the
/// latency SLO and had their trace tail-sampled to JSONL).
pub const SERVE_FLIGHT_DUMPS: &str = "serve.flight_dumps";

// --- trial: experiment-runner phases (span names) ---------------------------

/// Span: failure injection + reconvergence of one trial.
pub const TRIAL_INJECT: &str = "trial.inject";
/// Span: post-failure probe mesh measurement of one trial.
pub const TRIAL_MEASURE: &str = "trial.measure";
/// Span: diagnosis algorithm execution of one trial.
pub const TRIAL_DIAGNOSE: &str = "trial.diagnose";
/// Span: topology + control-plane setup of one placement.
pub const TRIAL_SETUP: &str = "trial.setup";
/// Counter: trial units a pool worker stole from another placement's
/// queue after draining its own.
pub const TRIAL_POOL_STEAL: &str = "trial.pool.steal";

// --- trace events: causal per-trial streams ----------------------------------
//
// Emitted through `RecorderHandle::event` with typed payloads; payload
// fields are documented at the emission site. `layer.event` naming keeps
// them sorted next to the layer's metrics.

/// Event: one AS-wide SPF recompute (payload: as id, routers, settled).
pub const EV_IGP_SPF: &str = "igp.spf_recompute";
/// Event: one BGP message delivered (payload: kind, from, to, prefix).
pub const EV_BGP_MESSAGE: &str = "bgp.message";
/// Event: a BGP session changed state (payload: state, endpoints).
pub const EV_BGP_SESSION: &str = "bgp.session_state";
/// Event: one traceroute rendered (payload: src, dst, reached, hops
/// with `*` for blocked answers).
pub const EV_PROBE_TRACEROUTE: &str = "probe.traceroute";
/// Event: one physical link failed in the simulator.
pub const EV_SIM_LINK_FAIL: &str = "sim.link_fail";
/// Event: one physical link repaired in the simulator.
pub const EV_SIM_LINK_REPAIR: &str = "sim.link_repair";
/// Event: a diagnosis algorithm started (payload: algorithm).
pub const EV_DIAG_START: &str = "diag.start";
/// Event: problem instance built (payload: candidate/failure/reroute
/// counts, pair names and edge labels for replay).
pub const EV_DIAG_PROBLEM: &str = "diag.problem_built";
/// Event: one reroute set constructed (payload: pair, excluded edges).
pub const EV_DIAG_REROUTE_SET: &str = "diag.reroute_set";
/// Event: diagnosis finished (payload: algorithm, hypothesis labels,
/// forced edges, unexplained failure pairs).
pub const EV_DIAG_DONE: &str = "diag.done";
/// Event: an IGP link-down message forced an edge into the hypothesis.
pub const EV_FEED_FORCED: &str = "feed.igp_forced";
/// Event: a BGP withdrawal exonerated an edge from failure sets.
pub const EV_FEED_EXONERATED: &str = "feed.bgp_exonerated";
/// Event: greedy hitting set started (payload: candidates, failures).
pub const EV_HS_BEGIN: &str = "hs.begin";
/// Event: greedy picked one edge (payload: iteration, edge, score,
/// newly covered failure/reroute observation indices, remaining).
pub const EV_HS_PICK: &str = "hs.pick";
/// Event: the runner drew (or redrew) a candidate failure for a trial.
pub const EV_TRIAL_ATTEMPT: &str = "trial.attempt";
