//! The workspace's metric vocabulary.
//!
//! Names follow a `layer.metric` scheme so reports group naturally when
//! sorted. Every instrumented crate pulls its constants from here — the
//! single place a future perf PR looks to see what is already measured.

// --- igp: link-state SPF ---------------------------------------------------

/// Counter: Dijkstra runs (one per router per AS recompute).
pub const IGP_SPF_RUNS: &str = "igp.spf_runs";
/// Counter: nodes settled across all SPF runs.
pub const IGP_SETTLED_NODES: &str = "igp.settled_nodes";

// --- bgp: message-driven convergence ---------------------------------------

/// Counter: BGP messages delivered (update + withdraw).
pub const BGP_MSGS: &str = "bgp.msgs";
/// Counter: decision-process invocations.
pub const BGP_DECISIONS: &str = "bgp.decisions";
/// Counter: `Bgp::run` convergence rounds.
pub const BGP_RUNS: &str = "bgp.runs";

// --- sim: copy-on-write snapshots -------------------------------------------

/// Counter: full deep copies of simulator state (`Sim::deep_clone`).
pub const SIM_SNAPSHOT_DEEP_COPIES: &str = "sim.snapshot.deep_copies";
/// Counter: copy-on-write breaks — shared per-AS IGP tables or per-router
/// BGP state cloned because a mutation touched them.
pub const SIM_SNAPSHOT_COW_BREAKS: &str = "sim.snapshot.cow_breaks";

// --- probe: simulated measurements -----------------------------------------

/// Counter: traceroutes rendered.
pub const PROBE_TRACEROUTES: &str = "probe.traceroutes";
/// Counter: hops across all traceroutes.
pub const PROBE_HOPS: &str = "probe.hops";
/// Counter: hops that answered with a star (blocked AS).
pub const PROBE_BLOCKED_HOPS: &str = "probe.blocked_hops";

// --- hs: minimum hitting set ------------------------------------------------

/// Counter: greedy Algorithm-1 iterations (one per selected edge).
pub const HS_GREEDY_ITERS: &str = "hs.greedy_iters";
/// Histogram: candidate-edge count per solved instance.
pub const HS_CANDIDATES: &str = "hs.candidates";
/// Counter: bitset words touched by greedy scoring (popcount loops).
pub const HS_WORDS_SCANNED: &str = "hitting_set.words_scanned";

// --- feed: routing-data integration (ND-bgpigp) -----------------------------

/// Counter: edges forced into the hypothesis by IGP link-down messages.
pub const FEED_FORCED_EDGES: &str = "feed.forced_edges";
/// Counter: edges exonerated from failure sets by BGP withdrawals.
pub const FEED_EXONERATED_EDGES: &str = "feed.exonerated_edges";

// --- diag: whole-diagnosis results ------------------------------------------

/// Counter: diagnosis runs through the facade or algorithm entry points.
pub const DIAG_RUNS: &str = "diag.runs";
/// Histogram: hypothesis-set size per diagnosis.
pub const DIAG_HYPOTHESIS_SIZE: &str = "diag.hypothesis_size";

// --- trial: experiment-runner phases (span names) ---------------------------

/// Span: failure injection + reconvergence of one trial.
pub const TRIAL_INJECT: &str = "trial.inject";
/// Span: post-failure probe mesh measurement of one trial.
pub const TRIAL_MEASURE: &str = "trial.measure";
/// Span: diagnosis algorithm execution of one trial.
pub const TRIAL_DIAGNOSE: &str = "trial.diagnose";
/// Span: topology + control-plane setup of one placement.
pub const TRIAL_SETUP: &str = "trial.setup";
