//! Per-trial context propagation, the logical clock, and the bounded
//! [`TraceRecorder`] ring with its JSONL and Chrome-trace exporters.
//!
//! # Determinism contract
//!
//! Deterministic crates never read a wall clock for tracing: every event
//! is stamped with a *logical* sequence number that resets at the start
//! of each trial scope, and with the `(placement, trial, phase)` context
//! installed by the experiment runner. Because one trial runs entirely on
//! one worker thread, the context lives in thread-local state guarded by
//! `!Send` RAII scopes — parallel and sequential execution therefore
//! produce the same per-trial streams, and exporters sort by
//! `(placement, trial, seq)` so the *bytes* are identical too (as long as
//! the ring never dropped; see [`TraceRecorder::dropped`]). Wall-clock
//! timestamps are out-of-band: an opt-in exporter-layer extra
//! ([`TraceRecorder::with_wall_clock`]) that deterministic code never
//! sees.

use std::cell::Cell;
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{Event, Phase};
use crate::{push_json_string, Recorder};

/// Sentinel placement id for events emitted outside any trial scope.
pub const NO_PLACEMENT: u32 = u32::MAX;

/// Sentinel trial id for placement-setup work (before any trial runs).
pub const SETUP_TRIAL: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct TlsState {
    placement: u32,
    trial: u32,
    phase: Phase,
    seq: u64,
}

const UNSCOPED: TlsState = TlsState {
    placement: NO_PLACEMENT,
    trial: SETUP_TRIAL,
    phase: Phase::Setup,
    seq: 0,
};

thread_local! {
    static CTX: Cell<TlsState> = const { Cell::new(UNSCOPED) };
}

/// RAII guard installing a `(placement, trial)` trial context.
///
/// Entering a scope resets the logical clock to zero and the phase to
/// [`Phase::Setup`]; dropping restores the previous context (scopes
/// nest). The guard is `!Send`: a trial's events must all come from the
/// thread that runs it, which is what makes the logical clock
/// deterministic.
#[must_use = "the trial context is uninstalled when the scope drops"]
#[derive(Debug)]
pub struct TrialScope {
    prev: Option<(u32, u32, Phase, u64)>,
    _single_thread: PhantomData<*const ()>,
}

/// Installs a `(placement, trial)` context on the current thread.
///
/// Use [`SETUP_TRIAL`] as `trial` for placement-preparation work.
pub fn trial_scope(placement: u32, trial: u32) -> TrialScope {
    let prev = CTX.with(|c| {
        c.replace(TlsState {
            placement,
            trial,
            phase: Phase::Setup,
            seq: 0,
        })
    });
    TrialScope {
        prev: Some((prev.placement, prev.trial, prev.phase, prev.seq)),
        _single_thread: PhantomData,
    }
}

impl Drop for TrialScope {
    fn drop(&mut self) {
        if let Some((placement, trial, phase, seq)) = self.prev.take() {
            CTX.with(|c| {
                c.set(TlsState {
                    placement,
                    trial,
                    phase,
                    seq,
                })
            });
        }
    }
}

/// RAII guard switching the current trial phase (sequence keeps running).
#[must_use = "the phase is restored when the scope drops"]
#[derive(Debug)]
pub struct PhaseScope {
    prev: Phase,
    _single_thread: PhantomData<*const ()>,
}

/// Switches the phase of the current trial context on this thread.
pub fn phase_scope(phase: Phase) -> PhaseScope {
    let prev = CTX.with(|c| {
        let mut s = c.get();
        let prev = s.phase;
        s.phase = phase;
        c.set(s);
        prev
    });
    PhaseScope {
        prev,
        _single_thread: PhantomData,
    }
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        CTX.with(|c| {
            let mut s = c.get();
            s.phase = self.prev;
            c.set(s);
        });
    }
}

/// Stamps one event: current context plus the next logical tick.
pub(crate) fn stamp() -> (u32, u32, Phase, u64) {
    CTX.with(|c| {
        let mut s = c.get();
        let seq = s.seq;
        s.seq += 1;
        c.set(s);
        (s.placement, s.trial, s.phase, seq)
    })
}

struct Ring {
    events: VecDeque<(Event, Option<u64>)>,
    dropped: u64,
}

/// A bounded-ring trace sink: keeps the most recent `capacity` events.
///
/// Collects no metrics ([`Recorder::enabled`] stays `false`) so a pure
/// tracing run skips all counter batching; compose with an
/// [`crate::InMemoryRecorder`] through [`crate::FanoutRecorder`] to get
/// both. When the ring wraps, the oldest events are dropped and counted —
/// exports from a run with `dropped() > 0` are incomplete and no longer
/// byte-comparable across executions.
pub struct TraceRecorder {
    inner: Mutex<Ring>,
    capacity: usize,
    epoch: Option<Instant>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// Default ring capacity (events), ample for full figure runs.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A recorder with [`Self::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A recorder keeping at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRecorder {
            inner: Mutex::new(Ring {
                events: VecDeque::new(),
                dropped: 0,
            }),
            capacity: capacity.max(1),
            epoch: None,
        }
    }

    /// Opts in to out-of-band wall-clock stamps (`wall_us` in JSONL).
    ///
    /// Exporter-layer only: deterministic crates never see these values,
    /// but two runs' JSONL exports will differ once they are captured.
    pub fn with_wall_clock(mut self) -> Self {
        self.epoch = Some(Instant::now());
        self
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace ring poisoned").events.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring wrapped (0 = complete trace).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace ring poisoned").dropped
    }

    /// Empties the ring and resets the dropped counter.
    ///
    /// For always-on flight-recorder use: a worker reuses one ring across
    /// requests, clearing between them so each request's trace stands
    /// alone (and a dump after an SLO breach contains only that request).
    pub fn clear(&self) {
        let mut ring = self.inner.lock().expect("trace ring poisoned");
        ring.events.clear();
        ring.dropped = 0;
    }

    /// Snapshots the buffered events in deterministic export order.
    pub fn events(&self) -> Vec<Event> {
        self.sorted().into_iter().map(|(ev, _)| ev).collect()
    }

    fn sorted(&self) -> Vec<(Event, Option<u64>)> {
        let ring = self.inner.lock().expect("trace ring poisoned");
        let mut events: Vec<(Event, Option<u64>)> = ring.events.iter().cloned().collect();
        drop(ring);
        events.sort_by_key(|(ev, _)| ev.sort_key());
        events
    }

    /// Exports one JSON object per line, sorted by
    /// `(placement, trial, seq)` with setup sentinels first.
    ///
    /// Byte-identical across runs and across sequential/parallel
    /// execution whenever [`Self::dropped`] is zero and wall-clock
    /// capture is off.
    pub fn to_jsonl(&self) -> String {
        let events = self.sorted();
        let mut out = String::with_capacity(events.len() * 96);
        for (ev, wall_us) in &events {
            ev.render_jsonl(&mut out, *wall_us);
            out.push('\n');
        }
        out
    }

    /// Exports Chrome-trace/Perfetto JSON (`chrome://tracing` loads it).
    ///
    /// Mapping: process = placement, thread = trial (`tid` 0 is placement
    /// setup), timestamp = logical sequence number in microseconds, every
    /// event an instant (`"ph":"i"`) with the payload under `args`.
    pub fn to_chrome_trace(&self) -> String {
        let events = self.sorted();
        let mut out = String::with_capacity(events.len() * 128 + 256);
        out.push_str("{\"traceEvents\":[");
        let mut lanes: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut first = true;
        for (ev, _) in &events {
            let pid = ev.placement.wrapping_add(1);
            let tid = ev.trial.wrapping_add(1);
            lanes.insert((pid, tid));
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n{\"name\":");
            push_json_string(&mut out, ev.name);
            out.push_str(",\"cat\":");
            let cat = ev.name.split('.').next().unwrap_or("event");
            push_json_string(&mut out, cat);
            out.push_str(&format!(
                ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":",
                ev.seq, pid, tid
            ));
            let mut args = String::new();
            ev.payload.render(&mut args);
            out.push_str(&args);
            out.push_str(&format!(",\"cname\":\"{}\"}}", chrome_color(ev.phase)));
        }
        for &(pid, tid) in &lanes {
            if !first {
                out.push(',');
            }
            first = false;
            let pname = if pid == 0 {
                "unscoped".to_owned()
            } else {
                format!("placement {}", pid - 1)
            };
            out.push_str(&format!(
                "\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{pname}\"}}}}"
            ));
            let tname = if tid == 0 {
                "setup".to_owned()
            } else {
                format!("trial {}", tid - 1)
            };
            out.push_str(&format!(
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{tname}\"}}}}"
            ));
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Stable Chrome-trace colour per phase (legacy `cname` palette).
fn chrome_color(phase: Phase) -> &'static str {
    match phase {
        Phase::Setup => "grey",
        Phase::Inject => "terrible",
        Phase::Measure => "thread_state_running",
        Phase::Diagnose => "good",
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn add(&self, _name: &'static str, _delta: u64) {}
    fn observe(&self, _name: &'static str, _value: u64) {}
    fn record_span(&self, _name: &'static str, _nanos: u64) {}

    fn trace_enabled(&self) -> bool {
        true
    }

    fn event(&self, event: Event) {
        let wall_us = self
            .epoch
            .map(|epoch| u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX));
        let mut ring = self.inner.lock().expect("trace ring poisoned");
        if ring.events.len() >= self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back((event, wall_us));
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventPayload;
    use crate::RecorderHandle;
    use std::sync::Arc;

    #[test]
    fn scopes_nest_and_reset_the_logical_clock() {
        let _outer = trial_scope(1, SETUP_TRIAL);
        assert_eq!(stamp(), (1, SETUP_TRIAL, Phase::Setup, 0));
        {
            let _inner = trial_scope(1, 4);
            let _phase = phase_scope(Phase::Measure);
            assert_eq!(stamp(), (1, 4, Phase::Measure, 0));
            assert_eq!(stamp(), (1, 4, Phase::Measure, 1));
        }
        // Back in the outer scope: clock resumes where it left off.
        assert_eq!(stamp(), (1, SETUP_TRIAL, Phase::Setup, 1));
    }

    #[test]
    fn jsonl_is_sorted_and_stable() {
        let rec = Arc::new(TraceRecorder::new());
        let handle = RecorderHandle::new(rec.clone());
        {
            let _scope = trial_scope(0, 1);
            handle.event("hs.begin", || EventPayload::new().field("n", 2u64));
        }
        {
            let _scope = trial_scope(0, SETUP_TRIAL);
            handle.event("igp.spf", || EventPayload::new().field("as", 7u64));
        }
        let jsonl = rec.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        // Setup sentinel sorts before trial 1 despite later emission.
        assert!(lines[0].contains("\"trial\":null"));
        assert!(lines[1].contains("\"trial\":1"));
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn dropped_counter_reports_ring_wrap() {
        let rec = Arc::new(TraceRecorder::with_capacity(3));
        let handle = RecorderHandle::new(rec.clone());
        let _scope = trial_scope(0, 0);
        for _ in 0..5 {
            handle.event("hs.pick", EventPayload::new);
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
    }

    #[test]
    fn chrome_trace_has_header_and_metadata() {
        let rec = Arc::new(TraceRecorder::new());
        let handle = RecorderHandle::new(rec.clone());
        {
            let _scope = trial_scope(2, 0);
            handle.event("bgp.message", || {
                EventPayload::new().field("kind", "update")
            });
        }
        let chrome = rec.to_chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("\"pid\":3"));
        assert!(chrome.contains("placement 2"));
        assert!(chrome.contains("thread_name"));
        assert!(chrome.ends_with("\"displayTimeUnit\":\"ms\"}\n"));
    }

    #[test]
    fn wall_clock_is_off_by_default_and_opt_in() {
        let rec = Arc::new(TraceRecorder::new());
        let handle = RecorderHandle::new(rec.clone());
        handle.event("hs.begin", EventPayload::new);
        assert!(!rec.to_jsonl().contains("wall_us"));

        let timed = Arc::new(TraceRecorder::new().with_wall_clock());
        let handle = RecorderHandle::new(timed.clone());
        handle.event("hs.begin", EventPayload::new);
        assert!(timed.to_jsonl().contains("\"wall_us\":"));
    }
}
