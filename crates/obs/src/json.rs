//! A minimal, dependency-free JSON reader for trace tooling.
//!
//! Parses the subset the workspace's hand-rolled serializers emit
//! (objects, arrays, strings, numbers, booleans, `null`) into a [`Json`]
//! tree. Used by `netdiag explain` to replay JSONL event streams and by
//! tests to check exporter well-formedness. Fully `Result`-based: a
//! malformed document is an `Err`, never a panic.

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; trace values fit exactly).
    Num(f64),
    /// String with escapes resolved.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as an ordered key/value list (duplicates preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match), `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self
            .peek()
            .ok_or_else(|| "unexpected end of input".to_owned())?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != b {
            return Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for &b in word.as_bytes() {
            self.eat(b)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Json::Obj(fields)),
                b => {
                    return Err(format!(
                        "expected ',' or '}}' in object, found '{}'",
                        b as char
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Json::Arr(items)),
                b => {
                    return Err(format!(
                        "expected ',' or ']' in array, found '{}'",
                        b as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            let digit = (d as char)
                                .to_digit(16)
                                .ok_or_else(|| format!("bad \\u digit '{}'", d as char))?;
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    b => return Err(format!("bad escape '\\{}'", b as char)),
                },
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Multi-byte UTF-8: copy the remaining continuation bytes.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump()?;
                    }
                    let chunk = self
                        .bytes
                        .get(start..self.pos)
                        .and_then(|raw| std::str::from_utf8(raw).ok())
                        .ok_or_else(|| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let raw = self
            .bytes
            .get(start..self.pos)
            .and_then(|raw| std::str::from_utf8(raw).ok())
            .ok_or_else(|| format!("invalid number at byte {start}"))?;
        raw.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("invalid number '{raw}': {e}"))
    }
}

/// Total byte length of a UTF-8 sequence given its leading byte.
fn utf8_len(lead: u8) -> usize {
    if lead >= 0xF0 {
        4
    } else if lead >= 0xE0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_trace_shaped_lines() {
        let line = r#"{"name":"hs.pick","placement":0,"trial":null,"seq":3,"payload":{"edge":12,"covered":[0,2],"label":"10.0.0.1->10.0.0.2"}}"#;
        let v = parse(line).expect("parses");
        assert_eq!(v.get("name").and_then(Json::as_str), Some("hs.pick"));
        assert!(v.get("trial").is_some_and(Json::is_null));
        assert_eq!(v.get("seq").and_then(Json::as_u64), Some(3));
        let payload = v.get("payload").expect("payload");
        assert_eq!(payload.get("edge").and_then(Json::as_u64), Some(12));
        assert_eq!(
            payload
                .get("covered")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s":"a\"b\\c\ndAé"}"#).expect("parses");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn parses_numbers_and_bools() {
        let v = parse(r#"[0, -3, 2.5, 1e3, true, false, null]"#).expect("parses");
        let items = v.as_array().expect("array");
        assert_eq!(items[0].as_u64(), Some(0));
        assert_eq!(items[1], Json::Num(-3.0));
        assert_eq!(items[1].as_u64(), None);
        assert_eq!(items[2], Json::Num(2.5));
        assert_eq!(items[3].as_u64(), Some(1000));
        assert_eq!(items[4], Json::Bool(true));
        assert_eq!(items[6], Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"open", "{} x", "01a"] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn run_report_round_trips_through_the_parser() {
        let (h, rec) = crate::RecorderHandle::in_memory();
        h.add("a.count", 3);
        h.observe("h.sizes", 7);
        let v = parse(&rec.report().to_json()).expect("report parses");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("a.count"))
                .and_then(Json::as_u64),
            Some(3)
        );
    }
}
