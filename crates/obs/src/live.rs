//! [`LiveRecorder`]: the always-on telemetry registry behind
//! `netdiag-serve`'s stats plane.
//!
//! [`InMemoryRecorder`](crate::InMemoryRecorder) serializes every
//! concurrent worker on one `Mutex<Aggregates>` and only yields a report
//! when someone asks at the end of a run. A daemon needs the opposite
//! trade: a record path cheap enough to leave on under production load,
//! and a registry that can be snapshotted *at any instant* while workers
//! keep recording. `LiveRecorder` delivers that with three ideas:
//!
//! * **Lock-free record path.** Metrics live in fixed open-addressed
//!   tables of slots claimed with [`OnceLock`]; recording is a handful
//!   of `Relaxed` atomic operations. The only mutex in the type guards
//!   the window ring, which snapshot readers touch — never recorders.
//! * **Interned name resolution, cached per call site.** Metric names
//!   are `&'static str` constants, so a slot lookup can key on the
//!   *pointer*: a thread-local direct-mapped cache maps
//!   `(recorder, kind, name ptr)` to a slot index, making the steady
//!   state a TLS load, one compare and the atomic bump itself.
//! * **Exclusive write lanes.** Each slot holds a small array of
//!   cache-line-padded lanes. The first few threads to record each own
//!   a lane outright and bump it with plain relaxed load-then-store —
//!   no atomic read-modify-write on the hot path at all, which is what
//!   keeps a live bump within 2x of a virtual-dispatch noop. Later
//!   threads share one overflow lane where `fetch_add` keeps totals
//!   exact; a snapshot sums the lanes.
//!
//! Gauges are a fourth metric kind the aggregate recorders never had: a
//! *level* (queue depth, live connections) with set/add/sub semantics
//! and a high-water mark, where counter semantics would monotonically
//! aggregate a quantity that is supposed to go back down.
//!
//! Beyond the cumulative [`RunReport`] snapshot, the recorder keeps a
//! ring of timestamped snapshots ([`LiveRecorder::roll`], driven by the
//! daemon's ticker) from which [`LiveRecorder::windowed`] derives rate
//! and percentile deltas over the last N seconds: because the log2
//! histogram buckets are monotone counters, subtracting two cumulative
//! snapshots yields the *exact* histogram of the window between them.

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::event::Event;
use crate::{log2_bucket, GaugeSnapshot, Recorder, RunReport, SeriesStats};

/// Slots per metric table; names beyond this are silently dropped
/// (counted in [`LiveRecorder::overflowed`]). The workspace vocabulary
/// is ~40 names, so 256 leaves the tables < 20% full.
const SLOTS: usize = 256;

/// Write lanes per slot. The first `SHARDS - 1` threads to record each
/// own a lane *exclusively* and update it with plain relaxed
/// load-then-store — no read-modify-write on the hot path at all; every
/// later thread shares the last lane, where `fetch_add` keeps the total
/// exact under concurrency. A snapshot sums the lanes.
const SHARDS: usize = 8;

/// Lane index of the shared overflow lane (the only lane updated with
/// atomic RMW operations).
const SHARED_LANE: usize = SHARDS - 1;

/// Entries in each thread's direct-mapped slot cache.
const CACHE_WAYS: usize = 64;

/// Snapshots retained by the window ring (at the daemon's 1 Hz ticker,
/// about a minute of history).
const RING_CAPACITY: usize = 64;

/// One cache-line-padded atomic cell.
#[repr(align(64))]
#[derive(Default)]
struct PadCell(AtomicU64);

/// A monotone counter: name plus per-lane cells.
struct CounterSlot {
    name: OnceLock<&'static str>,
    lanes: [PadCell; SHARDS],
}

/// One write lane of a series: the sum and the full log2 bucket array,
/// so a lane-owning thread records without any RMW. Padded so lanes
/// never false-share.
#[repr(align(64))]
struct SeriesLane {
    sum: AtomicU64,
    buckets: [AtomicU64; 65],
}

/// A histogram or span series.
///
/// `count` is derived from the buckets (they partition the
/// observations), so recording costs one bucket bump, one sum bump, and
/// two usually-skipped conditional updates for the slot-shared min/max.
struct SeriesSlot {
    name: OnceLock<&'static str>,
    lanes: [SeriesLane; SHARDS],
    /// Initialized to `u64::MAX`; meaningful once any bucket is nonzero.
    min: AtomicU64,
    max: AtomicU64,
}

/// A level with a high-water mark.
struct GaugeSlot {
    name: OnceLock<&'static str>,
    current: AtomicU64,
    high: AtomicU64,
}

/// The metric kind, used to key the per-thread slot cache (the same
/// name may legitimately exist in two tables).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter = 0,
    Histogram = 1,
    Span = 2,
    Gauge = 3,
}

/// One thread-local cache entry: `(recorder id, kind, name ptr)` → slot.
/// Recorder id and kind are packed into one word (`meta`) so a hit is
/// two compares, not three.
#[derive(Clone, Copy)]
struct CacheEntry {
    ptr: *const u8,
    meta: u64,
    slot: u16,
}

/// `meta` 0 never matches a live entry: recorder ids start at 1.
const EMPTY_ENTRY: CacheEntry = CacheEntry {
    ptr: std::ptr::null(),
    meta: 0,
    slot: 0,
};

/// Packs `(recorder id, kind)` into a cache `meta` word. Ids are
/// sequential (from [`NEXT_RECORDER_ID`]) so the shift cannot overflow
/// in any real process lifetime.
fn cache_meta(rid: u64, kind: Kind) -> u64 {
    rid << 2 | kind as u64
}

/// Everything the record path needs from thread-local state, resolved
/// in a single `with` call: the slot cache plus this thread's write
/// lane. `lane` is packed as `index << 1 | exclusive`, `u32::MAX` until
/// the thread first records.
struct RecorderTls {
    cache: [Cell<CacheEntry>; CACHE_WAYS],
    lane: Cell<u32>,
}

thread_local! {
    /// Direct-mapped `(recorder, kind, name ptr)` → slot cache. Keyed by
    /// pointer because metric names are `&'static str` constants: the
    /// same call site always presents the same pointer, so the steady
    /// state of every call site is one TLS hit.
    static TLS: RecorderTls = const {
        RecorderTls {
            cache: [const { Cell::new(EMPTY_ENTRY) }; CACHE_WAYS],
            lane: Cell::new(u32::MAX),
        }
    };
}

/// Global source of per-thread lane ids and recorder ids. Lane ids are
/// never reused, so an exclusive lane has exactly one writer thread for
/// the life of the process — that is what makes plain store updates
/// exact.
static NEXT_LANE: AtomicUsize = AtomicUsize::new(0);
static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

/// Assigns this thread's write lane on its first record: the first
/// [`SHARED_LANE`] threads own a lane outright (`index << 1 | 1`),
/// everyone later shares the RMW lane.
#[cold]
fn assign_lane(t: &RecorderTls) -> u32 {
    let id = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
    let packed = if id < SHARED_LANE {
        (id as u32) << 1 | 1
    } else {
        (SHARED_LANE as u32) << 1
    };
    t.lane.set(packed);
    packed
}

/// The one-writer fast path: lane owners bump with load-then-store (the
/// store cannot race another writer), the shared lane pays the RMW.
#[inline(always)]
fn bump(cell: &AtomicU64, delta: u64, exclusive: bool) {
    if exclusive {
        let v = cell.load(Ordering::Relaxed).wrapping_add(delta);
        cell.store(v, Ordering::Relaxed);
    } else {
        cell.fetch_add(delta, Ordering::Relaxed);
    }
}

/// FNV-1a over the name bytes: the probe sequence must be stable across
/// threads even when two crates carry duplicate `&'static str` data, so
/// it hashes content, not the pointer.
fn hash_name(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h as usize
}

/// Rate and percentile deltas over a trailing window (see
/// [`LiveRecorder::windowed`]).
#[derive(Clone, Debug, Default)]
pub struct WindowDelta {
    /// Actual width of the window in seconds (bounded by the history
    /// the ring holds).
    pub secs: f64,
    /// Counter increments per second over the window, by name.
    /// Counters that did not move are omitted.
    pub rates: BTreeMap<String, f64>,
    /// Exact per-window histogram series (bucket deltas between the two
    /// cumulative snapshots); min/max are bucket bounds, percentiles
    /// carry the usual log2 factor-of-two accuracy.
    pub histograms: BTreeMap<String, SeriesStats>,
    /// Per-window span series, nanoseconds.
    pub spans: BTreeMap<String, SeriesStats>,
}

struct WindowRing {
    entries: VecDeque<(Instant, RunReport)>,
}

/// A sharded, lock-free-on-the-record-path aggregating recorder that
/// can be snapshotted at any instant (see the module docs).
pub struct LiveRecorder {
    id: u64,
    started: Instant,
    // Fixed-size tables (not `Vec`s): indexed with masked slots, so the
    // record path compiles without bounds checks.
    counters: Box<[CounterSlot; SLOTS]>,
    histograms: Box<[SeriesSlot; SLOTS]>,
    spans: Box<[SeriesSlot; SLOTS]>,
    gauges: Box<[GaugeSlot; SLOTS]>,
    /// Records that found every table slot taken (vocabulary overflow).
    overflow: AtomicU64,
    /// Timestamped cumulative snapshots for window queries. Touched only
    /// by [`roll`](Self::roll)/[`windowed`](Self::windowed) — never by
    /// the record path.
    ring: Mutex<WindowRing>,
}

impl Default for LiveRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveRecorder {
    /// Creates an empty registry.
    pub fn new() -> Self {
        LiveRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            started: Instant::now(),
            counters: Self::table(|| CounterSlot {
                name: OnceLock::new(),
                lanes: std::array::from_fn(|_| PadCell::default()),
            }),
            histograms: Self::table(Self::series_slot),
            spans: Self::table(Self::series_slot),
            gauges: Self::table(|| GaugeSlot {
                name: OnceLock::new(),
                current: AtomicU64::new(0),
                high: AtomicU64::new(0),
            }),
            overflow: AtomicU64::new(0),
            ring: Mutex::new(WindowRing {
                entries: VecDeque::new(),
            }),
        }
    }

    /// Heap-builds one fixed-size slot table (too big for the stack to
    /// be comfortable: a series table is several hundred KiB).
    fn table<T>(make: impl Fn() -> T) -> Box<[T; SLOTS]> {
        let slots: Vec<T> = (0..SLOTS).map(|_| make()).collect();
        slots
            .into_boxed_slice()
            .try_into()
            // lint: allow(panic-macro): the vec above is built from
            // `0..SLOTS`, so the length conversion cannot fail.
            .unwrap_or_else(|_| unreachable!("table built with SLOTS entries"))
    }

    fn series_slot() -> SeriesSlot {
        SeriesSlot {
            name: OnceLock::new(),
            lanes: std::array::from_fn(|_| SeriesLane {
                sum: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Time since the recorder was created.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Records dropped because a table ran out of slots (0 in any
    /// healthy configuration — the tables hold [`SLOTS`] names each).
    pub fn overflowed(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Resolves `name` to `(slot, lane, exclusive)` in `kind`'s table in
    /// one thread-local access: the slot from the calling thread's cache
    /// (claiming a fresh table slot on first sight), the write lane from
    /// the same TLS struct. `None` when the table is full. The slot is
    /// masked so the compiler can prove table indexing in bounds.
    ///
    /// The TLS closure deliberately captures one integer and copies two
    /// small values out: a fat capture would bloat the `LocalKey::with`
    /// instantiation past the inliner's budget and leave the whole
    /// record path behind an out-of-line call (measurably ~3x slower).
    #[inline(always)]
    fn resolve(&self, kind: Kind, name: &'static str) -> Option<(usize, usize, bool)> {
        let ptr = name.as_ptr();
        let way = (ptr as usize >> 3).wrapping_add(kind as usize) & (CACHE_WAYS - 1);
        let meta = cache_meta(self.id, kind);
        let (packed, cached) = TLS.with(|t| (t.lane.get(), t.cache[way].get()));
        let packed = if packed == u32::MAX {
            TLS.with(assign_lane)
        } else {
            packed
        };
        let lane = (packed >> 1) as usize & (SHARDS - 1);
        let exclusive = packed & 1 == 1;
        if std::ptr::eq(cached.ptr, ptr) && cached.meta == meta {
            return Some((cached.slot as usize & (SLOTS - 1), lane, exclusive));
        }
        let slot = self.resolve_miss(kind, name, way, meta)?;
        Some((slot, lane, exclusive))
    }

    /// Cache-miss path: probe the table, then install the cache entry
    /// with a second (cold) TLS access.
    #[cold]
    fn resolve_miss(&self, kind: Kind, name: &'static str, way: usize, meta: u64) -> Option<usize> {
        let slot = self.resolve_slow(kind, name)?;
        TLS.with(|t| {
            t.cache[way].set(CacheEntry {
                ptr: name.as_ptr(),
                meta,
                slot: slot as u16,
            });
        });
        Some(slot & (SLOTS - 1))
    }

    /// Open-addressed probe over the table's `OnceLock` names.
    fn resolve_slow(&self, kind: Kind, name: &'static str) -> Option<usize> {
        let h = hash_name(name);
        for probe in 0..SLOTS {
            let idx = h.wrapping_add(probe) & (SLOTS - 1);
            let cell = match kind {
                Kind::Counter => &self.counters[idx].name,
                Kind::Histogram => &self.histograms[idx].name,
                Kind::Span => &self.spans[idx].name,
                Kind::Gauge => &self.gauges[idx].name,
            };
            match cell.get() {
                Some(&taken) if taken == name => return Some(idx),
                Some(_) => continue,
                None => {
                    if cell.set(name).is_ok() || cell.get().is_some_and(|&n| n == name) {
                        return Some(idx);
                    }
                    // A different name won the race for this slot.
                }
            }
        }
        self.overflow.fetch_add(1, Ordering::Relaxed);
        None
    }

    #[inline(always)]
    fn record_series(
        table: &[SeriesSlot; SLOTS],
        slot: usize,
        lane: usize,
        exclusive: bool,
        value: u64,
    ) {
        let s = &table[slot];
        let l = &s.lanes[lane];
        bump(&l.buckets[log2_bucket(value)], 1, exclusive);
        bump(&l.sum, value, exclusive);
        // min/max RMWs are skipped in the steady state (the plain loads
        // make the common "inside the seen range" case two reads).
        if value < s.min.load(Ordering::Relaxed) {
            s.min.fetch_min(value, Ordering::Relaxed);
        }
        if value > s.max.load(Ordering::Relaxed) {
            s.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    fn series_stats(slot: &SeriesSlot) -> Option<SeriesStats> {
        let mut buckets = [0u64; 65];
        let mut count = 0u64;
        let mut sum = 0u64;
        for lane in &slot.lanes {
            for (b, cell) in lane.buckets.iter().enumerate() {
                let n = cell.load(Ordering::Relaxed);
                buckets[b] += n;
                count += n;
            }
            sum = sum.saturating_add(lane.sum.load(Ordering::Relaxed));
        }
        if count == 0 {
            return None;
        }
        Some(SeriesStats::from_parts(
            count,
            sum,
            slot.min.load(Ordering::Relaxed),
            slot.max.load(Ordering::Relaxed),
            buckets,
        ))
    }

    /// Snapshots the registry into the standard [`RunReport`] shape.
    ///
    /// Safe at any instant: recorders keep going while the snapshot
    /// reads, so totals are a consistent-enough point-in-time view (each
    /// metric is read atomically; cross-metric skew is bounded by the
    /// walk time).
    pub fn snapshot(&self) -> RunReport {
        let mut report = RunReport::default();
        for slot in self.counters.iter() {
            let Some(&name) = slot.name.get() else {
                continue;
            };
            let total = slot
                .lanes
                .iter()
                .map(|c| c.0.load(Ordering::Relaxed))
                .sum::<u64>();
            report.counters.insert(name.to_owned(), total);
        }
        for (table, out) in [
            (&self.histograms, &mut report.histograms),
            (&self.spans, &mut report.spans),
        ] {
            for slot in table.iter() {
                let Some(&name) = slot.name.get() else {
                    continue;
                };
                if let Some(stats) = Self::series_stats(slot) {
                    out.insert(name.to_owned(), stats);
                }
            }
        }
        for slot in self.gauges.iter() {
            let Some(&name) = slot.name.get() else {
                continue;
            };
            report.gauges.insert(
                name.to_owned(),
                GaugeSnapshot {
                    current: slot.current.load(Ordering::Relaxed),
                    high_water: slot.high.load(Ordering::Relaxed),
                },
            );
        }
        report
    }

    /// Pushes the current cumulative snapshot into the window ring.
    ///
    /// The daemon's telemetry ticker calls this on a fixed cadence
    /// (1 Hz); with [`RING_CAPACITY`] entries that keeps about a minute
    /// of history for [`windowed`](Self::windowed) queries.
    pub fn roll(&self) {
        let snap = self.snapshot();
        let mut ring = self.ring.lock().expect("window ring poisoned");
        ring.entries.push_back((Instant::now(), snap));
        while ring.entries.len() > RING_CAPACITY {
            ring.entries.pop_front();
        }
    }

    /// Rates and percentile series over (approximately) the last
    /// `window`, by subtracting the newest ring snapshot at least that
    /// old from the current state.
    ///
    /// Returns `None` when the ring holds no usable baseline (no
    /// [`roll`](Self::roll) yet, or all entries are too fresh for a
    /// meaningful rate).
    pub fn windowed(&self, window: Duration) -> Option<WindowDelta> {
        let now = Instant::now();
        let base = {
            let ring = self.ring.lock().expect("window ring poisoned");
            let target = now.checked_sub(window).unwrap_or(now);
            // Newest entry at or before the window start; else the
            // oldest we have (a narrower window beats no answer).
            ring.entries
                .iter()
                .rev()
                .find(|(t, _)| *t <= target)
                .or_else(|| ring.entries.front())
                .map(|(t, snap)| (*t, snap.clone()))
        };
        let (base_at, base) = base?;
        let secs = now.duration_since(base_at).as_secs_f64();
        if secs < 0.05 {
            return None;
        }
        let current = self.snapshot();
        let mut delta = WindowDelta {
            secs,
            ..WindowDelta::default()
        };
        for (name, &cur) in &current.counters {
            let inc = cur.saturating_sub(base.counter(name));
            if inc > 0 {
                delta.rates.insert(name.clone(), inc as f64 / secs);
            }
        }
        for (cur_series, base_series, out) in [
            (&current.histograms, &base.histograms, &mut delta.histograms),
            (&current.spans, &base.spans, &mut delta.spans),
        ] {
            for (name, cur) in cur_series {
                let diffed = match base_series.get(name) {
                    Some(old) => cur.bucket_delta(old),
                    None => Some(*cur),
                };
                if let Some(stats) = diffed {
                    out.insert(name.clone(), stats);
                }
            }
        }
        Some(delta)
    }
}

impl Recorder for LiveRecorder {
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn add(&self, name: &'static str, delta: u64) {
        if let Some((slot, lane, exclusive)) = self.resolve(Kind::Counter, name) {
            bump(&self.counters[slot].lanes[lane].0, delta, exclusive);
        }
    }

    #[inline]
    fn observe(&self, name: &'static str, value: u64) {
        if let Some((slot, lane, exclusive)) = self.resolve(Kind::Histogram, name) {
            Self::record_series(&self.histograms, slot, lane, exclusive, value);
        }
    }

    #[inline]
    fn record_span(&self, name: &'static str, nanos: u64) {
        if let Some((slot, lane, exclusive)) = self.resolve(Kind::Span, name) {
            Self::record_series(&self.spans, slot, lane, exclusive, nanos);
        }
    }

    fn gauge_set(&self, name: &'static str, value: u64) {
        if let Some((slot, _, _)) = self.resolve(Kind::Gauge, name) {
            let g = &self.gauges[slot];
            g.current.store(value, Ordering::Relaxed);
            g.high.fetch_max(value, Ordering::Relaxed);
        }
    }

    fn gauge_add(&self, name: &'static str, delta: u64) {
        if let Some((slot, _, _)) = self.resolve(Kind::Gauge, name) {
            let g = &self.gauges[slot];
            let new = g
                .current
                .fetch_add(delta, Ordering::Relaxed)
                .saturating_add(delta);
            g.high.fetch_max(new, Ordering::Relaxed);
        }
    }

    fn gauge_sub(&self, name: &'static str, delta: u64) {
        if let Some((slot, _, _)) = self.resolve(Kind::Gauge, name) {
            // Saturating at zero: a stray extra decrement must not wrap
            // the level to u64::MAX (and poison the high-water mark).
            let _ = self.gauges[slot].current.fetch_update(
                Ordering::Relaxed,
                Ordering::Relaxed,
                |cur| Some(cur.saturating_sub(delta)),
            );
        }
    }

    fn trace_enabled(&self) -> bool {
        false
    }

    fn event(&self, _event: Event) {}
}

impl std::fmt::Debug for LiveRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveRecorder")
            .field("id", &self.id)
            .field("overflowed", &self.overflowed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecorderHandle;
    use std::sync::Arc;

    #[test]
    fn counters_shard_and_sum() {
        let live = LiveRecorder::new();
        live.add("c.one", 2);
        live.add("c.one", 3);
        live.add("c.two", 1);
        let report = live.snapshot();
        assert_eq!(report.counter("c.one"), 5);
        assert_eq!(report.counter("c.two"), 1);
        assert_eq!(live.overflowed(), 0);
    }

    #[test]
    fn series_match_their_inmemory_shape() {
        let live = LiveRecorder::new();
        for v in [7, 3, 12] {
            live.observe("h.v", v);
        }
        live.record_span("s.v", 1000);
        let report = live.snapshot();
        let h = report.histogram("h.v").expect("histogram recorded");
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 22, 3, 12));
        assert_eq!(report.span("s.v").map(|s| s.count), Some(1));
    }

    #[test]
    fn gauges_track_level_and_high_water() {
        let live = LiveRecorder::new();
        live.gauge_add("g.depth", 3);
        live.gauge_add("g.depth", 2);
        live.gauge_sub("g.depth", 4);
        let g = live.snapshot().gauges["g.depth"];
        assert_eq!((g.current, g.high_water), (1, 5));
        // Saturating: an unmatched sub cannot wrap.
        live.gauge_sub("g.depth", 100);
        let g = live.snapshot().gauges["g.depth"];
        assert_eq!((g.current, g.high_water), (0, 5));
        live.gauge_set("g.depth", 2);
        let g = live.snapshot().gauges["g.depth"];
        assert_eq!((g.current, g.high_water), (2, 5));
    }

    #[test]
    fn same_name_lives_independently_per_kind() {
        let live = LiveRecorder::new();
        live.add("dual", 4);
        live.observe("dual", 9);
        let report = live.snapshot();
        assert_eq!(report.counter("dual"), 4);
        assert_eq!(report.histogram("dual").map(|s| s.sum), Some(9));
    }

    #[test]
    fn two_recorders_do_not_share_cache_entries() {
        // Same &'static str pointer, two registries: the thread-local
        // cache must key on the recorder id too.
        let a = LiveRecorder::new();
        let b = LiveRecorder::new();
        let name: &'static str = "shared.name";
        a.add(name, 1);
        b.add(name, 10);
        a.add(name, 1);
        assert_eq!(a.snapshot().counter(name), 2);
        assert_eq!(b.snapshot().counter(name), 10);
    }

    #[test]
    fn windowed_deltas_report_only_window_activity() {
        let live = LiveRecorder::new();
        live.add("w.count", 100);
        live.observe("w.lat", 1);
        live.roll();
        std::thread::sleep(Duration::from_millis(80));
        live.add("w.count", 10);
        live.observe("w.lat", 1024);
        let delta = live
            .windowed(Duration::from_millis(10))
            .expect("ring has a baseline");
        assert!(delta.secs > 0.0);
        let rate = delta.rates["w.count"];
        assert!((rate * delta.secs).round() as u64 == 10, "rate {rate}");
        let lat = delta.histograms["w.lat"];
        assert_eq!(lat.count, 1);
        assert_eq!(lat.sum, 1024);
        // The pre-window observation of 1 is subtracted out.
        assert!(lat.min > 1);
    }

    #[test]
    fn windowed_without_roll_is_none() {
        let live = LiveRecorder::new();
        live.add("x", 1);
        assert!(live.windowed(Duration::from_secs(1)).is_none());
    }

    #[test]
    fn handle_constructor_wires_the_recorder() {
        let (h, live) = RecorderHandle::live();
        assert!(h.enabled());
        assert!(!h.trace_enabled());
        h.add("via.handle", 2);
        h.gauge_add("via.gauge", 1);
        {
            let _g = h.span("via.span");
        }
        let report = live.snapshot();
        assert_eq!(report.counter("via.handle"), 2);
        assert_eq!(report.gauges["via.gauge"].current, 1);
        assert_eq!(report.span("via.span").map(|s| s.count), Some(1));
    }

    #[test]
    fn overflow_drops_are_counted_not_panics() {
        let live = LiveRecorder::new();
        // Exhaust the counter table with leaked unique names.
        for i in 0..(SLOTS + 8) {
            let name: &'static str = Box::leak(format!("overflow.{i}").into_boxed_str());
            live.add(name, 1);
        }
        assert!(live.overflowed() >= 8);
        assert_eq!(live.snapshot().counters.len(), SLOTS);
    }

    #[test]
    fn fanout_composes_live_with_other_sinks() {
        let live = Arc::new(LiveRecorder::new());
        let (mem_handle, mem) = RecorderHandle::in_memory();
        let h = RecorderHandle::fanout(vec![live.clone(), mem_handle.sink()]);
        h.add("both", 3);
        h.gauge_add("lvl", 2);
        assert_eq!(live.snapshot().counter("both"), 3);
        assert_eq!(mem.report().counter("both"), 3);
        assert_eq!(live.snapshot().gauges["lvl"].current, 2);
        assert_eq!(mem.report().gauges["lvl"].current, 2);
    }
}
