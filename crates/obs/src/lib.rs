//! `netdiag-obs`: the workspace's instrumentation substrate.
//!
//! Every layer of the simulator and diagnoser reports what it did —
//! SPF runs, BGP messages, probe hops, greedy iterations — through one
//! tiny, dependency-free [`Recorder`] trait. Three kinds of metrics:
//!
//! * **Counters** — monotonically increasing event counts
//!   ([`Recorder::add`]), e.g. `igp.spf_runs`.
//! * **Histograms** — per-observation value distributions
//!   ([`Recorder::observe`]), e.g. `hs.candidates` per problem build.
//! * **Spans** — wall-clock phase timings ([`RecorderHandle::span`]),
//!   e.g. `trial.diagnose`.
//!
//! Metric names are `&'static str` in a `layer.metric` scheme
//! (`igp.spf_runs`, `bgp.msgs`, `probe.hops`, `hs.greedy_iters`, …); the
//! full vocabulary lives in [`names`].
//!
//! Two recorders ship with the crate: [`NoopRecorder`] (the default —
//! every call is a no-op behind an `enabled()` fast-gate, so
//! uninstrumented runs pay nothing) and [`InMemoryRecorder`]
//! (thread-safe aggregation plus a stable, hand-rolled JSON
//! [`RunReport`] — no serde). Instrumented code holds a cheap
//! [`RecorderHandle`] (a clonable `Arc<dyn Recorder>`); hot loops batch
//! locally and flush one `add` per operation.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod names;

/// Sink for instrumentation events.
///
/// Implementations must be cheap and thread-safe: `add`/`observe` are
/// called from hot paths (post-batching) and from concurrent trial
/// threads.
pub trait Recorder: Send + Sync {
    /// Is this recorder collecting anything at all?
    ///
    /// Instrumented code may skip metric computation (and clock reads)
    /// entirely when this returns `false`; the no-op recorder does.
    fn enabled(&self) -> bool;

    /// Increments the monotonic counter `name` by `delta`.
    fn add(&self, name: &'static str, delta: u64);

    /// Records one observation of `value` under histogram `name`.
    fn observe(&self, name: &'static str, value: u64);

    /// Records one completed span of `nanos` wall-clock under `name`.
    fn record_span(&self, name: &'static str, nanos: u64);
}

/// The default recorder: drops everything, costs nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn add(&self, _name: &'static str, _delta: u64) {}
    fn observe(&self, _name: &'static str, _value: u64) {}
    fn record_span(&self, _name: &'static str, _nanos: u64) {}
}

/// Aggregated statistics of one histogram or span series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesStats {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (nanoseconds for spans).
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl SeriesStats {
    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn new(value: u64) -> Self {
        SeriesStats {
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }
}

#[derive(Debug, Default)]
struct Aggregates {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, SeriesStats>,
    spans: BTreeMap<&'static str, SeriesStats>,
}

/// A thread-safe aggregating recorder whose contents serialize to a
/// stable JSON [`RunReport`].
#[derive(Debug, Default)]
pub struct InMemoryRecorder {
    inner: Mutex<Aggregates>,
}

impl InMemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots the aggregates collected so far.
    pub fn report(&self) -> RunReport {
        let inner = self.inner.lock().expect("recorder poisoned");
        RunReport {
            counters: inner
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_owned(), v))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&k, &v)| (k.to_owned(), v))
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|(&k, &v)| (k.to_owned(), v))
                .collect(),
        }
    }
}

impl Recorder for InMemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    fn observe(&self, name: &'static str, value: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        match inner.histograms.entry(name) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().record(value),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(SeriesStats::new(value));
            }
        }
    }

    fn record_span(&self, name: &'static str, nanos: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        match inner.spans.entry(name) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().record(nanos),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(SeriesStats::new(nanos));
            }
        }
    }
}

/// A cheap, clonable handle to a shared recorder.
///
/// This is what instrumented types store: cloning shares the underlying
/// recorder, `Default` is the no-op recorder, and `Debug` never dumps
/// recorder contents (so `#[derive(Debug)]` on simulator types stays
/// readable).
#[derive(Clone)]
pub struct RecorderHandle(Arc<dyn Recorder>);

impl RecorderHandle {
    /// Wraps a recorder.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        RecorderHandle(recorder)
    }

    /// The no-op handle (same as `Default`).
    pub fn noop() -> Self {
        RecorderHandle(Arc::new(NoopRecorder))
    }

    /// Creates an in-memory recorder and a handle feeding it.
    pub fn in_memory() -> (Self, Arc<InMemoryRecorder>) {
        let recorder = Arc::new(InMemoryRecorder::new());
        (RecorderHandle(recorder.clone()), recorder)
    }

    /// Is the underlying recorder collecting?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.enabled()
    }

    /// Increments counter `name` by `delta` (skipped when disabled).
    #[inline]
    pub fn add(&self, name: &'static str, delta: u64) {
        if self.0.enabled() {
            self.0.add(name, delta);
        }
    }

    /// Records one histogram observation (skipped when disabled).
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if self.0.enabled() {
            self.0.observe(name, value);
        }
    }

    /// Starts a scoped wall-clock span; the guard records on drop.
    ///
    /// When the recorder is disabled the guard never reads the clock.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            handle: self,
            name,
            start: self.0.enabled().then(Instant::now),
        }
    }
}

impl Default for RecorderHandle {
    fn default() -> Self {
        RecorderHandle::noop()
    }
}

impl fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecorderHandle")
            .field("enabled", &self.0.enabled())
            .finish()
    }
}

/// Live span: times the enclosing scope, reporting on drop.
#[must_use = "a span measures nothing unless it is held to end of scope"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    handle: &'a RecorderHandle,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.handle.0.record_span(self.name, nanos);
        }
    }
}

/// A point-in-time snapshot of everything a recorder collected,
/// serializable to stable JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram series by name.
    pub histograms: BTreeMap<String, SeriesStats>,
    /// Span series by name (values in nanoseconds).
    pub spans: BTreeMap<String, SeriesStats>,
}

/// Version tag written into every report, bumped on shape changes.
pub const REPORT_VERSION: u32 = 1;

impl RunReport {
    /// The value of counter `name`, zero when never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The stats of span `name`, if any completed.
    pub fn span(&self, name: &str) -> Option<&SeriesStats> {
        self.spans.get(name)
    }

    /// The stats of histogram `name`, if anything was observed.
    pub fn histogram(&self, name: &str) -> Option<&SeriesStats> {
        self.histograms.get(name)
    }

    /// Serializes to pretty-printed JSON with a stable key order
    /// (lexicographic within each section).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {REPORT_VERSION},\n"));

        out.push_str("  \"counters\": {");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(&format!(": {value}"));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        for (section, series, unit_suffix) in [
            ("histograms", &self.histograms, ""),
            ("spans", &self.spans, "_ns"),
        ] {
            out.push_str(&format!("  \"{section}\": {{"));
            let mut first = true;
            for (name, s) in series {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("\n    ");
                push_json_string(&mut out, name);
                out.push_str(&format!(
                    ": {{\"count\": {}, \"sum{u}\": {}, \"min{u}\": {}, \"max{u}\": {}}}",
                    s.count,
                    s.sum,
                    s.min,
                    s.max,
                    u = unit_suffix,
                ));
            }
            let closing = if section == "spans" { "" } else { "," };
            out.push_str(if first { "}" } else { "\n  }" });
            out.push_str(closing);
            out.push('\n');
        }

        out.push_str("}\n");
        out
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        let h = RecorderHandle::default();
        assert!(!h.enabled());
        h.add(names::IGP_SPF_RUNS, 5);
        h.observe("x", 1);
        drop(h.span("y"));
        // Nothing to assert against — the point is that nothing panics
        // and `enabled()` lets callers skip work.
    }

    #[test]
    fn counters_accumulate() {
        let (h, rec) = RecorderHandle::in_memory();
        assert!(h.enabled());
        h.add("a.x", 2);
        h.add("a.x", 3);
        h.add("b.y", 1);
        let report = rec.report();
        assert_eq!(report.counter("a.x"), 5);
        assert_eq!(report.counter("b.y"), 1);
        assert_eq!(report.counter("missing"), 0);
    }

    #[test]
    fn histograms_track_min_max_sum() {
        let (h, rec) = RecorderHandle::in_memory();
        for v in [7, 3, 12] {
            h.observe("h.v", v);
        }
        let s = *rec.report().histogram("h.v").unwrap();
        assert_eq!(
            s,
            SeriesStats {
                count: 3,
                sum: 22,
                min: 3,
                max: 12
            }
        );
    }

    #[test]
    fn spans_record_positive_durations() {
        let (h, rec) = RecorderHandle::in_memory();
        {
            let _g = h.span("phase.work");
            std::hint::black_box((0..1000).sum::<u64>());
        }
        {
            let _g = h.span("phase.work");
        }
        let s = *rec.report().span("phase.work").unwrap();
        assert_eq!(s.count, 2);
        assert!(s.sum >= s.min + s.min);
        assert!(s.max >= s.min);
    }

    #[test]
    fn handle_clones_share_the_recorder() {
        let (h, rec) = RecorderHandle::in_memory();
        let h2 = h.clone();
        h.add("c", 1);
        h2.add("c", 1);
        assert_eq!(rec.report().counter("c"), 2);
    }

    #[test]
    fn report_json_shape_is_stable() {
        let (h, rec) = RecorderHandle::in_memory();
        h.add("b.second", 2);
        h.add("a.first", 1);
        h.observe("sizes", 4);
        {
            let _g = h.span("phase");
        }
        let json = rec.report().to_json();
        assert!(json.starts_with("{\n  \"version\": 1,\n"));
        // Counters are in lexicographic order regardless of insertion.
        let a = json.find("\"a.first\": 1").unwrap();
        let b = json.find("\"b.second\": 2").unwrap();
        assert!(a < b);
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"sizes\": {\"count\": 1, \"sum\": 4, \"min\": 4, \"max\": 4}"));
        assert!(json.contains("\"spans\""));
        assert!(json.contains("\"count\": 1, \"sum_ns\": "));
        assert!(json.ends_with("}\n"));
        // Balanced braces (cheap well-formedness check without a parser).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn empty_report_json_is_well_formed() {
        let (_h, rec) = RecorderHandle::in_memory();
        let json = rec.report().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
        assert!(json.contains("\"spans\": {}"));
    }

    #[test]
    fn json_strings_escape_specials() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let (h, rec) = RecorderHandle::in_memory();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        h.add("t", 1);
                    }
                });
            }
        });
        assert_eq!(rec.report().counter("t"), 4000);
    }
}
