//! `netdiag-obs`: the workspace's instrumentation substrate.
//!
//! Every layer of the simulator and diagnoser reports what it did —
//! SPF runs, BGP messages, probe hops, greedy iterations — through one
//! tiny, dependency-free [`Recorder`] trait. Three kinds of metrics:
//!
//! * **Counters** — monotonically increasing event counts
//!   ([`Recorder::add`]), e.g. `igp.spf_runs`.
//! * **Histograms** — per-observation value distributions
//!   ([`Recorder::observe`]), e.g. `hs.candidates` per problem build.
//! * **Spans** — wall-clock phase timings ([`RecorderHandle::span`]),
//!   e.g. `trial.diagnose`.
//!
//! Metric names are `&'static str` in a `layer.metric` scheme
//! (`igp.spf_runs`, `bgp.msgs`, `probe.hops`, `hs.greedy_iters`, …); the
//! full vocabulary lives in [`names`].
//!
//! Two recorders ship with the crate: [`NoopRecorder`] (the default —
//! every call is a no-op behind an `enabled()` fast-gate, so
//! uninstrumented runs pay nothing) and [`InMemoryRecorder`]
//! (thread-safe aggregation plus a stable, hand-rolled JSON
//! [`RunReport`] — no serde). Instrumented code holds a cheap
//! [`RecorderHandle`] (a clonable `Arc<dyn Recorder>`); hot loops batch
//! locally and flush one `add` per operation.
//!
//! Beyond aggregates, the crate is also a tracing substrate: structured
//! [`Event`]s ([`Recorder::event`]) carry per-trial context and logical
//! sequence numbers (see [`trace`]) into the bounded-ring
//! [`TraceRecorder`], which exports deterministic JSONL and
//! Chrome-trace/Perfetto JSON. [`FanoutRecorder`] composes metrics and
//! tracing sinks behind one handle.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod event;
pub mod json;
pub mod live;
pub mod names;
pub mod trace;

pub use event::{Event, EventPayload, Phase, Value};
pub use live::{LiveRecorder, WindowDelta};
pub use trace::{phase_scope, trial_scope, TraceRecorder, NO_PLACEMENT, SETUP_TRIAL};

/// Sink for instrumentation events.
///
/// Implementations must be cheap and thread-safe: `add`/`observe` are
/// called from hot paths (post-batching) and from concurrent trial
/// threads.
pub trait Recorder: Send + Sync {
    /// Is this recorder collecting anything at all?
    ///
    /// Instrumented code may skip metric computation (and clock reads)
    /// entirely when this returns `false`; the no-op recorder does.
    fn enabled(&self) -> bool;

    /// Increments the monotonic counter `name` by `delta`.
    fn add(&self, name: &'static str, delta: u64);

    /// Records one observation of `value` under histogram `name`.
    fn observe(&self, name: &'static str, value: u64);

    /// Records one completed span of `nanos` wall-clock under `name`.
    fn record_span(&self, name: &'static str, nanos: u64);

    /// Sets gauge `name` to `value` (default: dropped).
    ///
    /// Gauges are *levels* — queue depth, live connections — with
    /// set/add/sub semantics and a high-water mark, unlike counters
    /// (monotone) and histograms (per-observation distributions).
    /// Defaulted so aggregate-only recorders need not care.
    fn gauge_set(&self, _name: &'static str, _value: u64) {}

    /// Raises gauge `name` by `delta` (default: dropped).
    fn gauge_add(&self, _name: &'static str, _delta: u64) {}

    /// Lowers gauge `name` by `delta`, saturating at zero
    /// (default: dropped).
    fn gauge_sub(&self, _name: &'static str, _delta: u64) {}

    /// Is this recorder collecting structured trace events?
    ///
    /// Separate from [`Recorder::enabled`] so a pure metrics run pays
    /// nothing for tracing and vice versa; instrumented code goes
    /// through [`RecorderHandle::event`], which builds payloads only
    /// when this returns `true`.
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Records one structured trace [`Event`] (default: dropped).
    fn event(&self, _event: Event) {}
}

/// The default recorder: drops everything, costs nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn add(&self, _name: &'static str, _delta: u64) {}
    fn observe(&self, _name: &'static str, _value: u64) {}
    fn record_span(&self, _name: &'static str, _nanos: u64) {}
}

/// Aggregated statistics of one histogram or span series.
///
/// Alongside count/sum/min/max, every series keeps a fixed 65-slot
/// log2-bucketed histogram (slot 0 = zeros, slot `b` = values in
/// `[2^(b-1), 2^b)`), from which [`SeriesStats::percentile`] derives
/// p50/p90/p99 without storing observations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesStats {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (nanoseconds for spans).
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    buckets: [u64; 65],
}

/// Log2 bucket index: 0 for value 0, else `64 - leading_zeros`.
fn log2_bucket(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

impl SeriesStats {
    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[log2_bucket(value)] += 1;
    }

    fn new(value: u64) -> Self {
        let mut buckets = [0u64; 65];
        buckets[log2_bucket(value)] = 1;
        SeriesStats {
            count: 1,
            sum: value,
            min: value,
            max: value,
            buckets,
        }
    }

    /// Assembles stats from already-aggregated parts (the
    /// [`LiveRecorder`] snapshot path, which accumulates in atomics
    /// rather than through [`record`](Self::record)).
    pub(crate) fn from_parts(count: u64, sum: u64, min: u64, max: u64, buckets: [u64; 65]) -> Self {
        SeriesStats {
            count,
            sum,
            min,
            max,
            buckets,
        }
    }

    /// The series of observations recorded between `older` and `self`,
    /// assuming both are cumulative snapshots of the same series
    /// (`older` taken earlier). `None` when nothing was recorded in
    /// between.
    ///
    /// Buckets are monotone counters, so their difference is the *exact*
    /// per-window histogram; window min/max are reconstructed from the
    /// outermost non-empty delta buckets (tight to a factor of two,
    /// clamped into the cumulative range so they remain plausible
    /// values).
    pub(crate) fn bucket_delta(&self, older: &SeriesStats) -> Option<SeriesStats> {
        let mut buckets = [0u64; 65];
        let mut count = 0u64;
        let (mut lo, mut hi) = (None, None);
        for (b, out) in buckets.iter_mut().enumerate() {
            let n = self.buckets[b].saturating_sub(older.buckets[b]);
            *out = n;
            count += n;
            if n > 0 {
                lo.get_or_insert(b);
                hi = Some(b);
            }
        }
        let (lo, hi) = (lo?, hi?);
        let bucket_floor = |b: usize| if b == 0 { 0 } else { 1u64 << (b - 1) };
        let bucket_ceil = |b: usize| match b {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << b) - 1,
        };
        Some(SeriesStats {
            count,
            sum: self.sum.saturating_sub(older.sum),
            min: bucket_floor(lo).clamp(self.min, self.max),
            max: bucket_ceil(hi).clamp(self.min, self.max),
            buckets,
        })
    }

    /// Approximate `pct`-th percentile (`0 < pct <= 100`).
    ///
    /// Returns the upper bound of the log2 bucket holding the
    /// rank-`ceil(count * pct / 100)` observation, clamped into
    /// `[min, max]` — exact for repeated values, within a factor of two
    /// otherwise, and always a value the series could have contained.
    pub fn percentile(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = self.count.saturating_mul(pct).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = match b {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << b) - 1,
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Point-in-time state of one gauge: the level now and the highest
/// level ever seen.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// The level at snapshot time.
    pub current: u64,
    /// The highest level the gauge ever reached.
    pub high_water: u64,
}

#[derive(Debug, Default)]
struct Aggregates {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, SeriesStats>,
    spans: BTreeMap<&'static str, SeriesStats>,
    gauges: BTreeMap<&'static str, GaugeSnapshot>,
}

/// A thread-safe aggregating recorder whose contents serialize to a
/// stable JSON [`RunReport`].
#[derive(Debug, Default)]
pub struct InMemoryRecorder {
    inner: Mutex<Aggregates>,
}

impl InMemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots the aggregates collected so far.
    pub fn report(&self) -> RunReport {
        let inner = self.inner.lock().expect("recorder poisoned");
        RunReport {
            counters: inner
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_owned(), v))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&k, &v)| (k.to_owned(), v))
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|(&k, &v)| (k.to_owned(), v))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(&k, &v)| (k.to_owned(), v))
                .collect(),
        }
    }
}

impl Recorder for InMemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    fn observe(&self, name: &'static str, value: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        match inner.histograms.entry(name) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().record(value),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(SeriesStats::new(value));
            }
        }
    }

    fn record_span(&self, name: &'static str, nanos: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        match inner.spans.entry(name) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().record(nanos),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(SeriesStats::new(nanos));
            }
        }
    }

    fn gauge_set(&self, name: &'static str, value: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        let g = inner.gauges.entry(name).or_default();
        g.current = value;
        g.high_water = g.high_water.max(value);
    }

    fn gauge_add(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        let g = inner.gauges.entry(name).or_default();
        g.current = g.current.saturating_add(delta);
        g.high_water = g.high_water.max(g.current);
    }

    fn gauge_sub(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        let g = inner.gauges.entry(name).or_default();
        g.current = g.current.saturating_sub(delta);
    }
}

/// A cheap, clonable handle to a shared recorder.
///
/// This is what instrumented types store: cloning shares the underlying
/// recorder, `Default` is the no-op recorder, and `Debug` never dumps
/// recorder contents (so `#[derive(Debug)]` on simulator types stays
/// readable).
#[derive(Clone)]
pub struct RecorderHandle(Arc<dyn Recorder>);

impl RecorderHandle {
    /// Wraps a recorder.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        RecorderHandle(recorder)
    }

    /// The no-op handle (same as `Default`).
    pub fn noop() -> Self {
        RecorderHandle(Arc::new(NoopRecorder))
    }

    /// Creates an in-memory recorder and a handle feeding it.
    pub fn in_memory() -> (Self, Arc<InMemoryRecorder>) {
        let recorder = Arc::new(InMemoryRecorder::new());
        (RecorderHandle(recorder.clone()), recorder)
    }

    /// Creates a default-capacity trace recorder and a handle feeding it.
    pub fn tracing() -> (Self, Arc<TraceRecorder>) {
        let recorder = Arc::new(TraceRecorder::new());
        (RecorderHandle(recorder.clone()), recorder)
    }

    /// Creates a [`LiveRecorder`] (lock-free record path, snapshottable
    /// at any instant) and a handle feeding it.
    pub fn live() -> (Self, Arc<LiveRecorder>) {
        let recorder = Arc::new(LiveRecorder::new());
        (RecorderHandle(recorder.clone()), recorder)
    }

    /// Fans one handle out to several sinks (e.g. metrics + trace).
    pub fn fanout(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        RecorderHandle(Arc::new(FanoutRecorder::new(sinks)))
    }

    /// The underlying recorder as a shareable sink — for composing this
    /// handle into a [`fanout`](Self::fanout) alongside extra sinks (e.g.
    /// a per-request trace recorder on top of the daemon's metrics).
    pub fn sink(&self) -> Arc<dyn Recorder> {
        Arc::clone(&self.0)
    }

    /// Is the underlying recorder collecting?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.enabled()
    }

    /// Increments counter `name` by `delta` (skipped when disabled).
    #[inline]
    pub fn add(&self, name: &'static str, delta: u64) {
        if self.0.enabled() {
            self.0.add(name, delta);
        }
    }

    /// Records one histogram observation (skipped when disabled).
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if self.0.enabled() {
            self.0.observe(name, value);
        }
    }

    /// Sets gauge `name` to `value` (skipped when disabled).
    #[inline]
    pub fn gauge_set(&self, name: &'static str, value: u64) {
        if self.0.enabled() {
            self.0.gauge_set(name, value);
        }
    }

    /// Raises gauge `name` by `delta` (skipped when disabled).
    #[inline]
    pub fn gauge_add(&self, name: &'static str, delta: u64) {
        if self.0.enabled() {
            self.0.gauge_add(name, delta);
        }
    }

    /// Lowers gauge `name` by `delta`, saturating at zero (skipped when
    /// disabled).
    #[inline]
    pub fn gauge_sub(&self, name: &'static str, delta: u64) {
        if self.0.enabled() {
            self.0.gauge_sub(name, delta);
        }
    }

    /// Records one completed span of `nanos` under `name` (skipped when
    /// disabled) — for durations measured out-of-scope, e.g. a queue
    /// wait timed across threads where no [`span`](Self::span) guard can
    /// live.
    #[inline]
    pub fn record_span(&self, name: &'static str, nanos: u64) {
        if self.0.enabled() {
            self.0.record_span(name, nanos);
        }
    }

    /// Starts a scoped wall-clock span; the guard records on drop.
    ///
    /// When the recorder is disabled the guard never reads the clock.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            handle: self,
            name,
            start: self.0.enabled().then(Instant::now),
        }
    }

    /// Is the underlying recorder collecting trace events?
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.0.trace_enabled()
    }

    /// Emits a structured trace event under the current trial context.
    ///
    /// The payload closure runs only when a tracing sink is attached, so
    /// untraced hot paths pay one virtual `trace_enabled()` call and
    /// never build the payload. The event is stamped with the
    /// thread-local `(placement, trial, phase)` context and the next
    /// logical sequence number (see [`trace`]).
    #[inline]
    pub fn event<F>(&self, name: &'static str, payload: F)
    where
        F: FnOnce() -> EventPayload,
    {
        if self.0.trace_enabled() {
            let (placement, trial, phase, seq) = trace::stamp();
            self.0.event(Event {
                name,
                placement,
                trial,
                phase,
                seq,
                payload: payload(),
            });
        }
    }
}

/// Broadcasts to several recorders so one run can aggregate metrics and
/// collect a trace at the same time.
///
/// Each call is routed only to the sinks that want it: metrics to
/// `enabled()` sinks, events to `trace_enabled()` sinks (cloning the
/// event for all but the last taker).
pub struct FanoutRecorder {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl FanoutRecorder {
    /// Wraps a set of sinks.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        FanoutRecorder { sinks }
    }
}

impl fmt::Debug for FanoutRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FanoutRecorder")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Recorder for FanoutRecorder {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn add(&self, name: &'static str, delta: u64) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.add(name, delta);
            }
        }
    }

    fn observe(&self, name: &'static str, value: u64) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.observe(name, value);
            }
        }
    }

    fn record_span(&self, name: &'static str, nanos: u64) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.record_span(name, nanos);
            }
        }
    }

    fn gauge_set(&self, name: &'static str, value: u64) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.gauge_set(name, value);
            }
        }
    }

    fn gauge_add(&self, name: &'static str, delta: u64) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.gauge_add(name, delta);
            }
        }
    }

    fn gauge_sub(&self, name: &'static str, delta: u64) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.gauge_sub(name, delta);
            }
        }
    }

    fn trace_enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.trace_enabled())
    }

    fn event(&self, event: Event) {
        let mut pending = Some(event);
        let last = self.sinks.iter().rposition(|s| s.trace_enabled());
        for (i, sink) in self.sinks.iter().enumerate() {
            if !sink.trace_enabled() {
                continue;
            }
            if Some(i) == last {
                if let Some(event) = pending.take() {
                    sink.event(event);
                }
            } else if let Some(event) = pending.as_ref() {
                sink.event(event.clone());
            }
        }
    }
}

impl Default for RecorderHandle {
    fn default() -> Self {
        RecorderHandle::noop()
    }
}

impl fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecorderHandle")
            .field("enabled", &self.0.enabled())
            .finish()
    }
}

/// Live span: times the enclosing scope, reporting on drop.
#[must_use = "a span measures nothing unless it is held to end of scope"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    handle: &'a RecorderHandle,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.handle.0.record_span(self.name, nanos);
        }
    }
}

/// A point-in-time snapshot of everything a recorder collected,
/// serializable to stable JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram series by name.
    pub histograms: BTreeMap<String, SeriesStats>,
    /// Span series by name (values in nanoseconds).
    pub spans: BTreeMap<String, SeriesStats>,
    /// Gauge levels by name (current + high-water).
    pub gauges: BTreeMap<String, GaugeSnapshot>,
}

/// Version tag written into every report, bumped on shape changes.
///
/// Version 2 added p50/p90/p99 percentiles to every series; version 3
/// added the `gauges` section (current + high-water levels).
pub const REPORT_VERSION: u32 = 3;

impl RunReport {
    /// The value of counter `name`, zero when never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The stats of span `name`, if any completed.
    pub fn span(&self, name: &str) -> Option<&SeriesStats> {
        self.spans.get(name)
    }

    /// The stats of histogram `name`, if anything was observed.
    pub fn histogram(&self, name: &str) -> Option<&SeriesStats> {
        self.histograms.get(name)
    }

    /// The state of gauge `name`, if it was ever touched.
    pub fn gauge(&self, name: &str) -> Option<GaugeSnapshot> {
        self.gauges.get(name).copied()
    }

    /// Serializes to pretty-printed JSON with a stable key order
    /// (lexicographic within each section).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {REPORT_VERSION},\n"));

        out.push_str("  \"counters\": {");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(&format!(": {value}"));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"gauges\": {");
        let mut first = true;
        for (name, g) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(&format!(
                ": {{\"current\": {}, \"high_water\": {}}}",
                g.current, g.high_water
            ));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        for (section, series, unit_suffix) in [
            ("histograms", &self.histograms, ""),
            ("spans", &self.spans, "_ns"),
        ] {
            out.push_str(&format!("  \"{section}\": {{"));
            let mut first = true;
            for (name, s) in series {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("\n    ");
                push_json_string(&mut out, name);
                out.push_str(&format!(
                    ": {{\"count\": {}, \"sum{u}\": {}, \"min{u}\": {}, \"max{u}\": {}, \
                     \"p50{u}\": {}, \"p90{u}\": {}, \"p99{u}\": {}}}",
                    s.count,
                    s.sum,
                    s.min,
                    s.max,
                    s.percentile(50),
                    s.percentile(90),
                    s.percentile(99),
                    u = unit_suffix,
                ));
            }
            let closing = if section == "spans" { "" } else { "," };
            out.push_str(if first { "}" } else { "\n  }" });
            out.push_str(closing);
            out.push('\n');
        }

        out.push_str("}\n");
        out
    }

    /// Serializes to Prometheus-style text exposition.
    ///
    /// Names are prefixed `netdiag_` with dots flattened to underscores;
    /// counters gain `_total`, gauges emit both the level and a
    /// `_high_water` companion, and series render as summaries
    /// (quantile-labelled samples plus `_sum`/`_count`, spans suffixed
    /// `_ns` since values are nanoseconds).
    pub fn to_prometheus(&self) -> String {
        fn flat(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::with_capacity(1024);
        for (name, value) in &self.counters {
            let n = flat(name);
            out.push_str(&format!(
                "# TYPE netdiag_{n}_total counter\nnetdiag_{n}_total {value}\n"
            ));
        }
        for (name, g) in &self.gauges {
            let n = flat(name);
            out.push_str(&format!(
                "# TYPE netdiag_{n} gauge\nnetdiag_{n} {}\n\
                 # TYPE netdiag_{n}_high_water gauge\nnetdiag_{n}_high_water {}\n",
                g.current, g.high_water
            ));
        }
        for (series, suffix) in [(&self.histograms, ""), (&self.spans, "_ns")] {
            for (name, s) in series {
                let n = format!("{}{suffix}", flat(name));
                out.push_str(&format!("# TYPE netdiag_{n} summary\n"));
                for (q, pct) in [("0.5", 50), ("0.9", 90), ("0.99", 99)] {
                    out.push_str(&format!(
                        "netdiag_{n}{{quantile=\"{q}\"}} {}\n",
                        s.percentile(pct)
                    ));
                }
                out.push_str(&format!(
                    "netdiag_{n}_sum {}\nnetdiag_{n}_count {}\n",
                    s.sum, s.count
                ));
            }
        }
        out
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes).
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        let h = RecorderHandle::default();
        assert!(!h.enabled());
        h.add(names::IGP_SPF_RUNS, 5);
        h.observe("x", 1);
        drop(h.span("y"));
        // Nothing to assert against — the point is that nothing panics
        // and `enabled()` lets callers skip work.
    }

    #[test]
    fn counters_accumulate() {
        let (h, rec) = RecorderHandle::in_memory();
        assert!(h.enabled());
        h.add("a.x", 2);
        h.add("a.x", 3);
        h.add("b.y", 1);
        let report = rec.report();
        assert_eq!(report.counter("a.x"), 5);
        assert_eq!(report.counter("b.y"), 1);
        assert_eq!(report.counter("missing"), 0);
    }

    #[test]
    fn histograms_track_min_max_sum() {
        let (h, rec) = RecorderHandle::in_memory();
        for v in [7, 3, 12] {
            h.observe("h.v", v);
        }
        let s = *rec.report().histogram("h.v").unwrap();
        assert_eq!((s.count, s.sum, s.min, s.max), (3, 22, 3, 12));
    }

    #[test]
    fn percentiles_are_exact_for_repeated_values_and_bounded_otherwise() {
        let (h, rec) = RecorderHandle::in_memory();
        for _ in 0..100 {
            h.observe("flat", 4);
        }
        let s = *rec.report().histogram("flat").unwrap();
        assert_eq!((s.percentile(50), s.percentile(99)), (4, 4));

        let (h, rec) = RecorderHandle::in_memory();
        for v in 1..=100u64 {
            h.observe("ramp", v);
        }
        let s = *rec.report().histogram("ramp").unwrap();
        // Log2 buckets: each percentile lands within a factor of two of
        // the exact answer and inside [min, max].
        for (pct, exact) in [(50u64, 50u64), (90, 90), (99, 99)] {
            let p = s.percentile(pct);
            assert!(p >= s.min && p <= s.max);
            assert!(p >= exact / 2 && p <= exact * 2, "p{pct}={p} vs {exact}");
        }
        assert!(s.percentile(50) <= s.percentile(90));
        assert!(s.percentile(90) <= s.percentile(99));
    }

    #[test]
    fn percentile_of_empty_series_is_zero() {
        let (h, rec) = RecorderHandle::in_memory();
        h.observe("one", 0);
        let s = *rec.report().histogram("one").unwrap();
        assert_eq!(s.percentile(50), 0);
    }

    #[test]
    fn spans_record_positive_durations() {
        let (h, rec) = RecorderHandle::in_memory();
        {
            let _g = h.span("phase.work");
            std::hint::black_box((0..1000).sum::<u64>());
        }
        {
            let _g = h.span("phase.work");
        }
        let s = *rec.report().span("phase.work").unwrap();
        assert_eq!(s.count, 2);
        assert!(s.sum >= s.min + s.min);
        assert!(s.max >= s.min);
    }

    #[test]
    fn handle_clones_share_the_recorder() {
        let (h, rec) = RecorderHandle::in_memory();
        let h2 = h.clone();
        h.add("c", 1);
        h2.add("c", 1);
        assert_eq!(rec.report().counter("c"), 2);
    }

    #[test]
    fn report_json_shape_is_stable() {
        let (h, rec) = RecorderHandle::in_memory();
        h.add("b.second", 2);
        h.add("a.first", 1);
        h.observe("sizes", 4);
        h.gauge_add("depth", 3);
        h.gauge_sub("depth", 1);
        {
            let _g = h.span("phase");
        }
        let json = rec.report().to_json();
        assert!(json.starts_with("{\n  \"version\": 3,\n"));
        // Counters are in lexicographic order regardless of insertion.
        let a = json.find("\"a.first\": 1").unwrap();
        let b = json.find("\"b.second\": 2").unwrap();
        assert!(a < b);
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"depth\": {\"current\": 2, \"high_water\": 3}"));
        assert!(json.contains("\"histograms\""));
        assert!(json.contains(
            "\"sizes\": {\"count\": 1, \"sum\": 4, \"min\": 4, \"max\": 4, \
             \"p50\": 4, \"p90\": 4, \"p99\": 4}"
        ));
        assert!(json.contains("\"spans\""));
        assert!(json.contains("\"count\": 1, \"sum_ns\": "));
        assert!(json.contains("\"p99_ns\": "));
        assert!(json.ends_with("}\n"));
        // Balanced braces (cheap well-formedness check without a parser).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn empty_report_json_is_well_formed() {
        let (_h, rec) = RecorderHandle::in_memory();
        let json = rec.report().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"gauges\": {}"));
        assert!(json.contains("\"histograms\": {}"));
        assert!(json.contains("\"spans\": {}"));
    }

    #[test]
    fn in_memory_gauges_track_level_and_high_water() {
        let (h, rec) = RecorderHandle::in_memory();
        h.gauge_add("q", 2);
        h.gauge_add("q", 3);
        h.gauge_sub("q", 4);
        let g = rec.report().gauge("q").unwrap();
        assert_eq!((g.current, g.high_water), (1, 5));
        h.gauge_sub("q", 10);
        assert_eq!(rec.report().gauge("q").unwrap().current, 0);
        h.gauge_set("q", 3);
        let g = rec.report().gauge("q").unwrap();
        assert_eq!((g.current, g.high_water), (3, 5));
        assert!(rec.report().gauge("missing").is_none());
    }

    #[test]
    fn prometheus_exposition_covers_all_kinds() {
        let (h, rec) = RecorderHandle::in_memory();
        h.add("serve.requests", 7);
        h.gauge_add("serve.queue_depth", 2);
        h.observe("serve.latency_us", 100);
        {
            let _g = h.span("serve.phase.diagnose");
        }
        let prom = rec.report().to_prometheus();
        assert!(prom.contains("# TYPE netdiag_serve_requests_total counter\n"));
        assert!(prom.contains("netdiag_serve_requests_total 7\n"));
        assert!(prom.contains("netdiag_serve_queue_depth 2\n"));
        assert!(prom.contains("netdiag_serve_queue_depth_high_water 2\n"));
        assert!(prom.contains("netdiag_serve_latency_us{quantile=\"0.99\"} 100\n"));
        assert!(prom.contains("netdiag_serve_latency_us_count 1\n"));
        assert!(prom.contains("netdiag_serve_phase_diagnose_ns_count 1\n"));
    }

    #[test]
    fn bucket_delta_isolates_the_window() {
        let mut cumulative = SeriesStats::new(1);
        let older = cumulative;
        cumulative.record(1024);
        let delta = cumulative.bucket_delta(&older).unwrap();
        assert_eq!((delta.count, delta.sum), (1, 1024));
        // Window bounds come from the delta buckets, not the cumulative
        // min of 1.
        assert!(delta.min >= 512 && delta.max >= 1024);
        assert!(older.bucket_delta(&older).is_none());
    }

    #[test]
    fn json_strings_escape_specials() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn event_payload_closure_never_runs_without_a_tracing_sink() {
        // Noop and in-memory recorders have trace_enabled() == false, so
        // the payload builder must not even run.
        for h in [RecorderHandle::noop(), RecorderHandle::in_memory().0] {
            assert!(!h.trace_enabled());
            h.event(names::EV_HS_PICK, || unreachable!("payload built"));
        }
    }

    #[test]
    fn fanout_routes_metrics_and_events_to_interested_sinks() {
        let metrics = Arc::new(InMemoryRecorder::new());
        let trace_a = Arc::new(TraceRecorder::new());
        let trace_b = Arc::new(TraceRecorder::new());
        let h = RecorderHandle::fanout(vec![metrics.clone(), trace_a.clone(), trace_b.clone()]);
        assert!(h.enabled() && h.trace_enabled());
        h.add("c", 2);
        h.event(names::EV_HS_PICK, || {
            EventPayload::new().field("edge", 1u64)
        });
        assert_eq!(metrics.report().counter("c"), 2);
        assert_eq!(trace_a.len(), 1);
        // Both tracing sinks got the (cloned) event.
        assert_eq!(trace_a.events(), trace_b.events());
    }

    #[test]
    fn fanout_of_noops_stays_fully_disabled() {
        let h = RecorderHandle::fanout(vec![Arc::new(NoopRecorder), Arc::new(NoopRecorder)]);
        assert!(!h.enabled());
        assert!(!h.trace_enabled());
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let (h, rec) = RecorderHandle::in_memory();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        h.add("t", 1);
                    }
                });
            }
        });
        assert_eq!(rec.report().counter("t"), 4000);
    }
}
