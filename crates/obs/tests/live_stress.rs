//! Concurrency stress and parity tests for [`LiveRecorder`].
//!
//! The recorder's record path is lock-free (sharded atomics, a
//! thread-local slot cache), so plain-thread hammering is the honest
//! check we can run without a model checker: every contribution must
//! land exactly once, from any interleaving, whether recorded straight
//! into the registry or through a [`FanoutRecorder`] composed via
//! [`RecorderHandle::sink`]. The parity test pins the other half of the
//! contract: on a sequential workload the lock-free registry reports
//! byte-for-byte what the mutexed [`InMemoryRecorder`] reports.

use std::sync::Arc;

use netdiag_obs::{InMemoryRecorder, LiveRecorder, Recorder, RecorderHandle};

const THREADS: u64 = 8;
const OPS: u64 = 10_000;

const COUNTER: &str = "stress.counter";
const HIST: &str = "stress.hist";
const SPAN: &str = "stress.span";
const GAUGE: &str = "stress.gauge";

/// Runs `THREADS` workers, each recording `OPS` of every metric kind
/// through its own clone of `handle`.
fn hammer(handle: &RecorderHandle) {
    let mut workers = Vec::new();
    for t in 0..THREADS {
        let recorder = handle.clone();
        workers.push(std::thread::spawn(move || {
            for i in 0..OPS {
                recorder.add(COUNTER, 1);
                recorder.observe(HIST, (t * OPS + i) % 1024);
                recorder.record_span(SPAN, i % 64);
                recorder.gauge_add(GAUGE, 1);
                recorder.gauge_sub(GAUGE, 1);
            }
        }));
    }
    for worker in workers {
        worker.join().expect("stress worker panicked");
    }
}

/// Asserts a report holds exactly the `THREADS * OPS` contributions.
fn assert_totals(report: &netdiag_obs::RunReport, label: &str) {
    let total = THREADS * OPS;
    assert_eq!(report.counter(COUNTER), total, "{label}: counter");
    let hist = report.histogram(HIST).expect("histogram recorded");
    assert_eq!(hist.count, total, "{label}: histogram count");
    // Per-thread sums of (t*OPS + i) % 1024 are deterministic, so the
    // shard-summed total must match a sequential computation exactly.
    let expected_sum: u64 = (0..THREADS)
        .flat_map(|t| (0..OPS).map(move |i| (t * OPS + i) % 1024))
        .sum();
    assert_eq!(hist.sum, expected_sum, "{label}: histogram sum");
    assert_eq!(hist.min, 0, "{label}: histogram min");
    assert_eq!(hist.max, 1023, "{label}: histogram max");
    let span = report.span(SPAN).expect("span recorded");
    assert_eq!(span.count, total, "{label}: span count");
    let gauge = report.gauge(GAUGE).expect("gauge recorded");
    assert_eq!(gauge.current, 0, "{label}: gauge settles to zero");
    assert!(
        gauge.high_water >= 1 && gauge.high_water <= THREADS,
        "{label}: gauge high water {} outside [1, {THREADS}]",
        gauge.high_water
    );
}

#[test]
fn concurrent_hammering_loses_nothing() {
    let (handle, live) = RecorderHandle::live();
    hammer(&handle);
    assert_eq!(live.overflowed(), 0, "slot tables must not overflow");
    assert_totals(&live.snapshot(), "direct");
}

#[test]
fn fanout_composition_keeps_every_sink_exact() {
    // The daemon's shape: a live registry fanned out with another sink,
    // reached through RecorderHandle::sink() composition.
    let live = Arc::new(LiveRecorder::new());
    let mirror = Arc::new(InMemoryRecorder::new());
    let handle = RecorderHandle::fanout(vec![
        Arc::clone(&live) as Arc<dyn Recorder>,
        Arc::clone(&mirror) as Arc<dyn Recorder>,
    ]);
    // Re-wrap through sink() as server code does when re-fanning.
    let rewrapped = RecorderHandle::fanout(vec![handle.sink()]);
    hammer(&rewrapped);
    assert_totals(&live.snapshot(), "live sink");
    assert_totals(&mirror.report(), "mirrored sink");
}

#[test]
fn sequential_workload_matches_in_memory_recorder_exactly() {
    let (live_handle, live) = RecorderHandle::live();
    let (mem_handle, mem) = RecorderHandle::in_memory();
    for recorder in [&live_handle, &mem_handle] {
        for i in 0..5_000u64 {
            recorder.add(COUNTER, 1 + i % 3);
            recorder.observe(HIST, i * i % 4096);
            recorder.record_span(SPAN, i % 100);
            recorder.gauge_add(GAUGE, 2);
            recorder.gauge_sub(GAUGE, 1);
            if i % 500 == 0 {
                recorder.gauge_set(GAUGE, 5);
            }
        }
    }
    // Whole-report equality: counters, per-bucket histograms, spans,
    // gauges — the lock-free path may not drift from the reference
    // aggregation in any field.
    assert_eq!(live.snapshot(), mem.report());
}
