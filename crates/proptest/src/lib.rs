//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate vendors the
//! slice of proptest the workspace's property tests use: the [`proptest!`]
//! macro (with `#![proptest_config(...)]`, `name in strategy` and
//! `name: type` parameters), `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!`, [`Strategy`] with `prop_map`, [`prop_oneof!`],
//! [`Just`], [`any`], integer-range strategies, tuple strategies, and
//! `collection::{vec, btree_set}`.
//!
//! Differences from upstream: cases are generated from a fixed per-test
//! seed (FNV-1a of the test name) so runs are fully deterministic, and
//! there is **no shrinking** — a failing case reports its inputs' assertion
//! message and case index only.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng as _, SampleUniform};

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-block configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each test in the block `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed `prop_assert*` inside a proptest body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps an assertion-failure message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a of the test name: the per-test seed (stable across runs).
pub fn test_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A value generator. Unlike upstream there is no shrinking, so a strategy
/// is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one value from the type's canonical distribution.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty),+) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$ty>()
            }
        })+
    };
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, bool);

/// The canonical strategy for `T` (full-range uniform for integers).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Output of [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Object-safe strategy, used by [`prop_oneof!`] to erase branch types.
pub trait DynStrategy<T> {
    /// Generates one value.
    fn gen_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// Boxes a strategy for [`Union`]; used by the [`prop_oneof!`] expansion.
pub fn boxed<S: Strategy + 'static>(s: S) -> Rc<dyn DynStrategy<S::Value>> {
    Rc::new(s)
}

/// Uniform choice among type-erased strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Rc<dyn DynStrategy<T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<Rc<dyn DynStrategy<T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].gen_dyn(rng)
    }
}

/// Collection size specification: converted from `usize` and ranges.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use super::*;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` aiming for a size drawn from
    /// `size`; duplicate draws are retried a bounded number of times, so
    /// the result may come up short when the element space is small
    /// (upstream behaves the same way).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            let budget = target * 20 + 50;
            while set.len() < target && attempts < budget {
                set.insert(self.element.gen_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Defines deterministic property tests over generated inputs.
///
/// Supports the upstream forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Docs.
///     #[test]
///     fn my_law(x in 0u32..10, y: u32, v in collection::vec(0u8..4, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands each `fn` in a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                $crate::test_seed(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__config.cases {
                $crate::__proptest_bind! { __rng; $($params)* }
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Internal: binds one generated value per parameter.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::gen_value(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::gen_value(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = $crate::Strategy::gen_value(&$crate::any::<$ty>(), &mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::Strategy::gen_value(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fails the current case if the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?} == {:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?} == {:?}`: {}",
            __a,
            __b,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?} != {:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?} != {:?}`: {}",
            __a,
            __b,
            format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn strategies_are_deterministic() {
        let strat = crate::collection::vec((0u32..50, any::<bool>()), 1..6);
        let mut a = rand::rngs::StdRng::seed_from_u64(1);
        let mut b = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(strat.gen_value(&mut a), strat.gen_value(&mut b));
        }
    }

    #[test]
    fn btree_set_respects_target_when_space_allows() {
        let strat = crate::collection::btree_set(0u32..1000, 5..6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..50 {
            assert_eq!(strat.gen_value(&mut rng).len(), 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro body sees all binding forms.
        #[test]
        fn macro_binds_all_forms(x in 0u32..10, y: u8, pair in (0usize..4, 1usize..=3)) {
            prop_assert!(x < 10);
            let _ = y;
            prop_assert!(pair.0 < 4 && (1..=3).contains(&pair.1));
            prop_assert_eq!(x, x);
            prop_assert_ne!(pair.1, 0);
        }

        #[test]
        fn oneof_and_just_cover_branches(v in prop_oneof![Just(1u8), 2u8..4]) {
            prop_assert!((1..4).contains(&v));
        }
    }
}
